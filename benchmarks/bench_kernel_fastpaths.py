"""Kernel fast paths — incremental sampling & fused single-flip local energies.

Head-to-head of the naive reference implementations against the
``repro.perf`` kernel layer, at the paper's default architecture
``h = 5(log n)²`` on disordered TIM instances (the worst case: every site
carries a transverse field, so each local energy touches ``n`` neighbours).

- sampling: ``MADE.sample(method='naive')`` (n full forward passes) vs the
  incremental O(n·h) kernel — identical output bits, same RNG stream;
- measurement: dense ``local_energies`` (materialised ``(B, K, n)``
  neighbours + from-scratch forward) vs the fused delta-evaluation kernel.

Emits ``BENCH_kernel_fastpaths.json`` with per-``n`` wall times and
speedups so the perf trajectory is tracked machine-readably; the combined
sampling+measurement speedup is the number the tentpole claim (≥3× at
n ≥ 256) is checked against.
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import emit_json, format_table, parse_args  # noqa: E402

from repro.core.energy import local_energies  # noqa: E402
from repro.hamiltonians import TransverseFieldIsing  # noqa: E402
from repro.models import MADE  # noqa: E402
from repro.perf import incremental_sample  # noqa: E402
from repro.utils.timer import Timer  # noqa: E402


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        with Timer() as t:
            fn()
        best = min(best, t.elapsed)
    return best


def bench_incremental_sampling(benchmark):
    model = MADE(64, rng=np.random.default_rng(0))
    rng = np.random.default_rng(1)
    benchmark(lambda: incremental_sample(model, 128, rng))


def bench_naive_sampling(benchmark):
    model = MADE(64, rng=np.random.default_rng(0))
    rng = np.random.default_rng(1)
    benchmark(lambda: model.sample(128, rng, method="naive"))


def bench_fused_local_energies(benchmark):
    model = MADE(64, rng=np.random.default_rng(0))
    ham = TransverseFieldIsing.random(64, seed=2)
    x = model.sample(128, np.random.default_rng(3))
    benchmark(lambda: local_energies(model, ham, x, fast=True))


def bench_dense_local_energies(benchmark):
    model = MADE(64, rng=np.random.default_rng(0))
    ham = TransverseFieldIsing.random(64, seed=2)
    x = model.sample(128, np.random.default_rng(3))
    benchmark(lambda: local_energies(model, ham, x, fast=False))


def run(dims, batch: int, repeats: int) -> list[dict]:
    results = []
    for n in dims:
        model = MADE(n, rng=np.random.default_rng(0))
        ham = TransverseFieldIsing.random(n, seed=1)

        t_naive_s = _time(
            lambda: model.sample(batch, np.random.default_rng(2), method="naive"),
            repeats,
        )
        result = incremental_sample(model, batch, np.random.default_rng(2))
        t_inc_s = _time(
            lambda: incremental_sample(model, batch, np.random.default_rng(2)),
            repeats,
        )
        x = result.samples
        t_dense_e = _time(lambda: local_energies(model, ham, x, fast=False), repeats)
        t_fused_e = _time(lambda: local_energies(model, ham, x, fast=True), repeats)

        results.append({
            "n": n,
            "hidden": model.hidden,
            "batch_size": batch,
            "sample_naive_s": t_naive_s,
            "sample_incremental_s": t_inc_s,
            "sample_speedup": t_naive_s / t_inc_s,
            "sample_pass_equivalents": result.forward_pass_equivalents,
            "local_energy_dense_s": t_dense_e,
            "local_energy_fused_s": t_fused_e,
            "local_energy_speedup": t_dense_e / t_fused_e,
            "combined_speedup": (t_naive_s + t_dense_e) / (t_inc_s + t_fused_e),
        })
    return results


def main() -> None:
    args = parse_args(__doc__.splitlines()[0])
    dims = (64, 128, 256, 512) if args.paper else (32, 64, 128, 256)
    batch = 1024 if args.paper else 256
    repeats = 1 if args.paper else 2

    results = run(dims, batch, repeats)
    rows = [
        [
            r["n"], r["hidden"],
            r["sample_naive_s"], r["sample_incremental_s"],
            f"{r['sample_speedup']:.1f}x",
            r["local_energy_dense_s"], r["local_energy_fused_s"],
            f"{r['local_energy_speedup']:.1f}x",
            f"{r['combined_speedup']:.1f}x",
        ]
        for r in results
    ]
    print(format_table(
        ["n", "h", "naive smp (s)", "incr smp (s)", "smp ×",
         "dense LE (s)", "fused LE (s)", "LE ×", "combined ×"],
        rows,
        title=f"Kernel fast paths (bs={batch}, TIM, h=5(log n)^2)",
    ))
    emit_json("kernel_fastpaths", {
        "preset": "paper" if args.paper else "reduced",
        "hamiltonian": "tim",
        "results": results,
    })
    print(
        "\nThe incremental sampler replaces n full forward passes with "
        "O(n·h) column\nupdates (pass-equivalents column ≈ 1, vs n for the "
        "naive path); the fused\nlocal-energy kernel skips the input matmul "
        "and the (B,K,n) neighbour\nmaterialisation entirely."
    )


if __name__ == "__main__":
    main()
