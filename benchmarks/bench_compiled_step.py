"""Compiled step hot path — ``repro.jit`` replay vs the interpreter.

Head-to-head of the gradient hot path ``VQMC.step`` actually runs each
iteration, at the paper's default architecture ``h = 5(log n)²``:

- **scalar adjoint** (``gradient_mode='autograd'``): interpreter
  ``log_psi(x)`` + graph backward + ``flat_grad()`` vs compiled
  ``plan.forward(x)`` + ``plan.gradient(weights)`` — the weights-seeded
  sweep is the surrogate ``(log ψ · w).sum()`` by the chain rule;
- **per-sample O matrix** (``gradient_mode='per_sample'``): the model's
  hand-vectorised ``log_psi_and_grads`` vs the compiled batched-adjoint
  einsum family.

Headline claim (checked machine-readably via ``floor_met``): the compiled
per-sample path is ≥2× the current fast path — the models' hand-vectorised
``log_psi_and_grads`` — at n = 256. Both paths compute the same numbers
(the suite pins agreement at 1e-10), so the speedup is pure overhead
removal: O-matrix blocks written in place by one einsum family instead of
broadcast temporaries plus a concatenate copy. The scalar-adjoint columns
compare against the graph interpreter; that ratio is reported but not
floored — it measures Python graph-construction overhead, which is
machine-state sensitive, and shrinks as batches grow GEMM-bound.

Competing timings are interleaved (A, B, A, B, ...) so both paths see the
same allocator/frequency state; each reported time is the best repeat.

Emits ``BENCH_compiled_step.json`` with per-``n`` wall times and speedups.
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import emit_json, format_table, parse_args  # noqa: E402

from repro.jit import StepCompiler  # noqa: E402
from repro.models import MADE  # noqa: E402
from repro.utils.timer import Timer  # noqa: E402

#: the headline acceptance floor at n=256 (compiled per-sample O vs the
#: hand-vectorised ``log_psi_and_grads`` fast path)
SPEEDUP_FLOOR = 2.0
HEADLINE_N = 256


def _time_pair(fn_a, fn_b, repeats: int) -> tuple[float, float]:
    """Best-of timing with A/B interleaving: both paths sample the same
    machine state, so their *ratio* is stable even when absolute wall
    times drift between runs."""
    best_a = best_b = float("inf")
    for _ in range(repeats):
        with Timer() as t:
            fn_a()
        best_a = min(best_a, t.elapsed)
        with Timer() as t:
            fn_b()
        best_b = min(best_b, t.elapsed)
    return best_a, best_b


def _setup(n: int, batch: int):
    model = MADE(n, rng=np.random.default_rng(0))
    rng = np.random.default_rng(1)
    x = rng.integers(0, 2, size=(batch, n)).astype(np.float64)
    weights = rng.standard_normal(batch)
    return model, x, weights


def bench_interpreted_gradient(benchmark):
    model, x, weights = _setup(64, 128)

    def step():
        model.zero_grad()
        lp = model.log_psi(x)
        (lp * weights).sum().backward(free_graph=True)
        return model.flat_grad()

    benchmark(step)


def bench_compiled_gradient(benchmark):
    model, x, weights = _setup(64, 128)
    plan = StepCompiler(model).plan_for(x)

    def step():
        plan.forward(x)
        return plan.gradient(weights)

    benchmark(step)


def bench_compiled_per_sample(benchmark):
    model, x, _ = _setup(64, 128)
    plan = StepCompiler(model).per_sample_plan(x)
    benchmark(lambda: plan.per_sample(x))


def run(dims, batch: int, repeats: int) -> list[dict]:
    results = []
    for n in dims:
        model, x, weights = _setup(n, batch)
        compiler = StepCompiler(model)
        plan = compiler.plan_for(x)

        def interp_grad():
            model.zero_grad()
            lp = model.log_psi(x)
            (lp * weights).sum().backward(free_graph=True)
            return model.flat_grad()

        def compiled_grad():
            plan.forward(x)
            return plan.gradient(weights)

        # Equivalence first — a speedup over wrong numbers is meaningless.
        assert np.allclose(interp_grad(), compiled_grad(), rtol=1e-9, atol=1e-10)

        t_interp, t_compiled = _time_pair(interp_grad, compiled_grad, repeats)

        ps_plan = compiler.per_sample_plan(x)
        lp_m, o_m = model.log_psi_and_grads(x)
        lp_c, o_c = ps_plan.per_sample(x)
        assert np.allclose(o_m, o_c, rtol=1e-9, atol=1e-10)
        t_manual_ps, t_compiled_ps = _time_pair(
            lambda: model.log_psi_and_grads(x),
            lambda: ps_plan.per_sample(x),
            repeats,
        )

        results.append({
            "n": n,
            "hidden": model.hidden,
            "batch_size": batch,
            "n_params": o_m.shape[1],
            "arena_bytes": plan.arena_bytes,
            "grad_interpreted_s": t_interp,
            "grad_compiled_s": t_compiled,
            "grad_speedup": t_interp / t_compiled,
            "per_sample_manual_s": t_manual_ps,
            "per_sample_compiled_s": t_compiled_ps,
            "per_sample_speedup": t_manual_ps / t_compiled_ps,
        })
    return results


def main() -> None:
    args = parse_args(__doc__.splitlines()[0])
    dims = (64, 128, 256, 512) if args.paper else (64, 128, 256)
    batch = 64
    repeats = 20 if args.paper else 15

    results = run(dims, batch, repeats)
    rows = [
        [
            r["n"], r["hidden"], r["n_params"],
            f"{r['grad_interpreted_s'] * 1e3:.2f}",
            f"{r['grad_compiled_s'] * 1e3:.2f}",
            f"{r['grad_speedup']:.2f}x",
            f"{r['per_sample_manual_s'] * 1e3:.2f}",
            f"{r['per_sample_compiled_s'] * 1e3:.2f}",
            f"{r['per_sample_speedup']:.2f}x",
        ]
        for r in results
    ]
    print(format_table(
        ["n", "h", "params", "interp ∇ (ms)", "jit ∇ (ms)", "∇ ×",
         "manual O (ms)", "jit O (ms)", "O ×"],
        rows,
        title=f"Compiled step vs interpreter (bs={batch}, MADE h=5(log n)^2)",
    ))

    headline = [r for r in results if r["n"] == HEADLINE_N]
    floor_met = bool(headline) and headline[0]["per_sample_speedup"] >= SPEEDUP_FLOOR
    if headline:
        verdict = "MET" if floor_met else "NOT MET"
        print(f"\nheadline: per-sample O {headline[0]['per_sample_speedup']:.2f}x "
              f"(scalar adjoint {headline[0]['grad_speedup']:.2f}x) at "
              f"n={HEADLINE_N} (floor {SPEEDUP_FLOOR:.1f}x {verdict})")

    emit_json("compiled_step", {
        "headline_n": HEADLINE_N,
        "speedup_floor": SPEEDUP_FLOOR,
        "floor_met": floor_met,
        "results": results,
    })


if __name__ == "__main__":
    main()
