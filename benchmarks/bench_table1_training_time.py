"""Table 1 — training time, RBM+MCMC vs MADE+AUTO on TIM (300 iters, 1 GPU).

Paper's claim: MADE+AUTO's wall time is ~linear in n (n sequential sampling
passes) and 10–50× below RBM+MCMC, whose chain length k + bs/c grows with n.

pytest-benchmark part: times *one* training iteration of each method at a
small size — the quantity Table 1 sums 300× over.

Script part: regenerates the table at a reduced preset (measured on this
CPU) and, for the paper's exact dimensions, prints the calibrated
cost-model prediction next to the published numbers.
"""

from __future__ import annotations

import sys

import numpy as np

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from _harness import emit_json, format_table, parse_args, train_once  # noqa: E402

from repro.core import VQMC  # noqa: E402
from repro.hamiltonians import TransverseFieldIsing  # noqa: E402
from repro.models import MADE, RBM  # noqa: E402
from repro.optim import Adam  # noqa: E402
from repro.samplers import AutoregressiveSampler, MetropolisSampler  # noqa: E402


def _make_vqmc(arch: str, n: int = 20):
    rng = np.random.default_rng(0)
    ham = TransverseFieldIsing.random(n, seed=1)
    if arch == "made":
        model = MADE(n, rng=rng)
        sampler = AutoregressiveSampler()
    else:
        model = RBM(n, rng=rng)
        sampler = MetropolisSampler(n_chains=2)
    return VQMC(model, ham, sampler, Adam(model.parameters()), seed=2)


def bench_made_auto_iteration(benchmark):
    vqmc = _make_vqmc("made")
    benchmark(lambda: vqmc.step(batch_size=256))


def bench_rbm_mcmc_iteration(benchmark):
    vqmc = _make_vqmc("rbm")
    benchmark(lambda: vqmc.step(batch_size=256))


def main() -> None:
    args = parse_args(__doc__.splitlines()[0])
    iterations = args.iters or (300 if args.paper else 30)
    dims = (20, 50, 100, 200, 500) if args.paper else (20, 50, 100)
    batch = 1024 if args.paper else 256

    rows = []
    records = []
    for n in dims:
        ham = TransverseFieldIsing.random(n, seed=1)
        made = train_once(ham, "made", "auto", "adam", iterations, batch, seed=0)
        rbm = train_once(ham, "rbm", "mcmc", "adam", iterations, batch, seed=0)
        # Fig. 1's hardware-independent cost: forward passes per iteration
        # (n for the naive AUTO sampler; the incremental kernel the driver
        # actually runs measures ~1 pass-equivalent — see
        # BENCH_kernel_fastpaths.json for the kernel-level comparison).
        auto_passes = n
        mcmc_passes = (3 * n + 100) + batch // 2 + 1
        rows.append([
            n,
            rbm.train_seconds, made.train_seconds,
            mcmc_passes, auto_passes, mcmc_passes / auto_passes,
        ])
        records.append({
            "n": n,
            "iterations": iterations,
            "batch_size": batch,
            "rbm_mcmc_seconds": rbm.train_seconds,
            "made_auto_seconds": made.train_seconds,
            "mcmc_passes_per_iter": mcmc_passes,
            "auto_naive_passes_per_iter": auto_passes,
        })
    print(format_table(
        ["n", "RBM&MCMC (s)", "MADE&AUTO (s)",
         "MCMC passes/iter", "AUTO passes/iter", "pass ratio"],
        rows,
        title=f"Table 1 (measured, {iterations} iters, bs={batch}, CPU)",
    ))
    emit_json("table1_training_time", {
        "preset": "paper" if args.paper else "reduced",
        "results": records,
    })
    print(
        "\nNote: on a GPU every forward pass costs a near-constant kernel\n"
        "launch, so wall time tracks the pass count and MADE+AUTO wins by the\n"
        "pass ratio (the paper's Table 1). This CPU substrate is flop-bound,\n"
        "so measured seconds instead track total flops; the calibrated V100\n"
        "model below reproduces the paper's wall-clock ordering."
    )

    # Calibrated V100 model vs the published numbers at full scale.
    from repro.cluster import calibrate_to_table1
    from repro.cluster.perfmodel import TABLE1_MADE_SECONDS, TABLE1_RBM_SECONDS

    made_model, rbm_model = calibrate_to_table1()
    rows = []
    for n in (20, 50, 100, 200, 500):
        rows.append([
            n,
            TABLE1_RBM_SECONDS[n], rbm_model.training_time(n, 1024),
            TABLE1_MADE_SECONDS[n], made_model.training_time(n, 1024),
        ])
    print()
    print(format_table(
        ["n", "RBM paper", "RBM model", "MADE paper", "MADE model"],
        rows,
        title="Table 1 (paper vs calibrated V100 cost model, 300 iters)",
    ))


if __name__ == "__main__":
    main()
