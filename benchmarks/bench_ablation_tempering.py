"""Ablation — how much of the MCMC gap can smarter chains close?

The paper replaces plain random-walk MH with exact autoregressive sampling.
A natural question: does a stronger MCMC (parallel tempering) close the
sample-quality gap instead? This bench measures, on an enumerable RBM
target, the total-variation distance of equal-budget sample batches from

- plain MH (paper's baseline),
- parallel tempering (our extension),
- AUTO via enumeration (exact reference — TV limited only by batch noise),

plus the wall-clock cost of each. Expected shape: PT < plain-MH in TV at
higher cost per sample; exact sampling dominates both at fixed budget —
supporting the paper's choice of removing MCMC rather than upgrading it.
"""

from __future__ import annotations

import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import format_table, parse_args  # noqa: E402

from repro.models import RBM  # noqa: E402
from repro.samplers import (  # noqa: E402
    EnumerationSampler,
    MetropolisSampler,
    ParallelTemperingSampler,
)
from repro.samplers.diagnostics import total_variation_distance  # noqa: E402


def _bimodal_rbm(n: int, coupling: float, seed: int) -> RBM:
    """A double-well |ψ|² (modes near 0…0 and 1…1) — hard for local MH."""
    model = RBM(n, hidden=max(2, n // 2), rng=np.random.default_rng(seed))
    w = np.full((model.hidden, n), coupling)
    model.fc.weight.data = w
    model.fc.bias.data = -0.5 * w.sum(axis=1)
    model.visible.weight.data = np.zeros_like(model.visible.weight.data)
    model.visible.bias.data = np.zeros_like(model.visible.bias.data)
    return model


def bench_tempering_sample(benchmark):
    model = _bimodal_rbm(10, 0.5, seed=0)
    sampler = ParallelTemperingSampler(n_replicas=4, burn_in=100)
    rng = np.random.default_rng(1)
    benchmark(lambda: sampler.sample(model, 128, rng))


def main() -> None:
    args = parse_args(__doc__.splitlines()[0])
    n = 10
    batch = 4000
    rows = []
    for coupling in (0.3, 0.5, 0.8):
        model = _bimodal_rbm(n, coupling, seed=0)
        target = model.exact_distribution()
        weights = 2 ** np.arange(n - 1, -1, -1)

        samplers = {
            "plain MH (2 chains)": MetropolisSampler(n_chains=2),
            "plain MH (8 chains)": MetropolisSampler(n_chains=8),
            "tempering (4 rungs)": ParallelTemperingSampler(
                n_replicas=4, beta_min=0.2, swap_every=2, chains_per_replica=2
            ),
            "exact (reference)": EnumerationSampler(),
        }
        seeds = range(args.seeds or 5)
        for label, sampler in samplers.items():
            tvs, walls = [], []
            for seed in seeds:
                rng = np.random.default_rng(100 + seed)
                t0 = time.perf_counter()
                x = sampler.sample(model, batch, rng)
                walls.append(time.perf_counter() - t0)
                codes = (x @ weights).astype(int)
                tvs.append(total_variation_distance(codes, target, n_states=2**n))
            rows.append([
                f"J={coupling}", label,
                (float(np.mean(tvs)), float(np.std(tvs))),
                float(np.mean(walls)) * 1e3,
            ])
    print(format_table(
        ["target", "sampler", "TV distance", "time (ms)"],
        rows,
        title=f"Sampler-quality ablation (n={n}, batch={batch}, "
        "double-well RBM target)",
        precision=3,
    ))
    print(
        "\nExpected shape: tempering beats plain MH on the harder (larger J)\n"
        "targets; exact sampling is both the most accurate and — on GPU-like\n"
        "cost models — the cheapest, which is the paper's argument."
    )


if __name__ == "__main__":
    main()
