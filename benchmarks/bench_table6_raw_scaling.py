"""Table 6 — raw data: converged energy and time per GPU configuration.

Paper's layout: nine GPU configurations (1×1 … 6×4), mbs = 4 per GPU, TIM
problems n ∈ {20, …, 10000}; per cell the converged energy and run time.

Reproduction:
- energies: real data-parallel runs (thread backend) at reduced n, with
  effective batch 4·L — the energy column of Table 6;
- times: the calibrated V100 cost model at the paper's dimensions —
  flat across configurations (time depends on n and mbs only).
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import format_table, parse_args  # noqa: E402

from repro.cluster import calibrate_to_table1  # noqa: E402
from repro.distributed.data_parallel import run_data_parallel  # noqa: E402
from repro.hamiltonians import TransverseFieldIsing  # noqa: E402
from repro.models import MADE  # noqa: E402
from repro.optim import Adam  # noqa: E402
from repro.samplers import AutoregressiveSampler  # noqa: E402

CONFIGS = [(1, 1), (1, 2), (1, 4), (2, 2), (2, 4), (4, 2), (4, 4), (8, 2), (6, 4)]


def bench_vqmc_mbs4_step(benchmark):
    """The Table 6 unit of work: one step at mbs=4."""
    from repro.core import VQMC

    model = MADE(50, rng=np.random.default_rng(0))
    ham = TransverseFieldIsing.random(50, seed=1)
    vqmc = VQMC(model, ham, AutoregressiveSampler(), Adam(model.parameters()), seed=2)
    benchmark(lambda: vqmc.step(batch_size=4))


def main() -> None:
    args = parse_args(__doc__.splitlines()[0])
    dims_measured = (12, 24) if not args.paper else (20, 50, 100)
    iterations = args.iters or (300 if args.paper else 100)

    # -- measured energy block -------------------------------------------------
    rows = []
    for n_nodes, gpn in CONFIGS:
        L = n_nodes * gpn
        row = [f"{n_nodes}x{gpn}"]
        for n in dims_measured:
            def build(rank, n=n):
                model = MADE(n, rng=np.random.default_rng(0))
                ham = TransverseFieldIsing.random(n, seed=n)
                return model, ham, AutoregressiveSampler(), Adam(model.parameters())

            res = run_data_parallel(build, L, iterations=iterations,
                                    mini_batch_size=4, seed=3)
            tail = max(5, iterations // 4)
            row.append(float(np.mean(res.energy[-tail:])))
        rows.append(row)
    print(format_table(
        ["config"] + [f"n={n}" for n in dims_measured],
        rows,
        title=f"Table 6 (measured energies, mbs=4/rank, {iterations} iters)",
    ))

    # -- model time block at paper scale ---------------------------------------
    made_model, _ = calibrate_to_table1()
    dims = (20, 50, 100, 200, 500, 1000, 2000, 5000, 10000)
    rows = []
    for n_nodes, gpn in CONFIGS:
        row = [f"{n_nodes}x{gpn}"] + [
            made_model.training_time(n, 4, 300, n_nodes=n_nodes, gpus_per_node=gpn)
            for n in dims
        ]
        rows.append(row)
    print()
    print(format_table(
        ["config"] + [f"n={n}" for n in dims],
        rows,
        title="Table 6 (model, time in s for 300 iters, mbs=4/GPU)",
    ))
    print(
        "\nExpected shape (paper): times constant down each column (weak\n"
        "scaling); energies improve down each column (bigger effective batch)."
    )


if __name__ == "__main__":
    main()
