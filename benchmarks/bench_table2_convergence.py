"""Table 2 — converged objective on Max-Cut and TIM across optimisers.

Paper's claims:
- MADE+AUTO with SGD+SR is competitive with the SDP solvers
  (Goemans–Williamson, Burer–Monteiro) on Max-Cut;
- RBM+MCMC fails to converge at n = 500 within the iteration budget while
  MADE+AUTO remains stable;
- SR consistently improves both architectures.

The reduced preset runs Max-Cut and TIM at n ∈ {16, 30} with 2 seeds;
``--paper`` uses n ∈ {20, …, 500}, bs = 1024, 300 iters, 5 seeds.
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import format_table, mean_std, parse_args, train_once  # noqa: E402

from repro.baselines import BurerMonteiro, GoemansWilliamson, random_cut  # noqa: E402
from repro.hamiltonians import MaxCut, TransverseFieldIsing  # noqa: E402


def bench_gw_solve(benchmark):
    from repro.hamiltonians import bernoulli_adjacency

    w = bernoulli_adjacency(30, seed=1)
    benchmark(lambda: GoemansWilliamson(rounds=20).solve(w, seed=0))


def bench_bm_solve(benchmark):
    from repro.hamiltonians import bernoulli_adjacency

    w = bernoulli_adjacency(30, seed=1)
    benchmark(lambda: BurerMonteiro(rounds=20).solve(w, seed=0))


def bench_vqmc_sr_step(benchmark):
    from repro.core import VQMC
    from repro.models import MADE
    from repro.optim import SGD, StochasticReconfiguration

    ham = MaxCut.random(30, seed=1)
    model = MADE(30, rng=np.random.default_rng(0))
    vqmc = VQMC(
        model, ham,
        __import__("repro.samplers", fromlist=["AutoregressiveSampler"]).AutoregressiveSampler(),
        SGD(model.parameters(), lr=0.1),
        sr=StochasticReconfiguration(), seed=2,
    )
    benchmark(lambda: vqmc.step(batch_size=128))


def main() -> None:
    args = parse_args(__doc__.splitlines()[0])
    iterations = args.iters or (300 if args.paper else 80)
    dims = (20, 50, 100, 200, 500) if args.paper else (16, 30)
    batch = 1024 if args.paper else 256
    seeds = range(args.seeds or (5 if args.paper else 2))

    # ---------------- Max-Cut section --------------------------------------
    print("=" * 72)
    print("Table 2 — Max-Cut (cut number; higher is better)")
    print("=" * 72)
    rows = []
    instances = {n: MaxCut.random(n, seed=n) for n in dims}

    for label, solver in (
        ("Random", lambda w, s: random_cut(w, seed=s).value),
        ("Goemans-Williamson", lambda w, s: GoemansWilliamson(rounds=50).solve(w, seed=s).value),
        ("Burer-Monteiro", lambda w, s: BurerMonteiro(rounds=50, restarts=2).solve(w, seed=s).value),
    ):
        row = [f"Classical: {label}"]
        for n in dims:
            vals = [solver(instances[n].adjacency, s) for s in seeds]
            row.append(mean_std(vals))
        rows.append(row)

    for arch, sampler in (("rbm", "mcmc"), ("made", "auto")):
        for opt in ("sgd", "adam", "sgd+sr"):
            row = [f"{arch.upper()}&{sampler.upper()} {opt.upper()}"]
            for n in dims:
                vals = []
                for s in seeds:
                    out = train_once(
                        instances[n], arch, sampler, opt, iterations, batch, seed=s
                    )
                    vals.append(out.best_cut)
                row.append(mean_std(vals))
            rows.append(row)

    print(format_table(["method"] + [f"n={n}" for n in dims], rows, precision=1))

    # ---------------- TIM section -------------------------------------------
    print()
    print("=" * 72)
    print("Table 2 — TIM (ground-state energy; lower is better)")
    print("=" * 72)
    rows = []
    tims = {n: TransverseFieldIsing.random(n, seed=n) for n in dims}
    for arch, sampler in (("rbm", "mcmc"), ("made", "auto")):
        for opt in ("sgd", "adam", "sgd+sr"):
            row = [f"{arch.upper()}&{sampler.upper()} {opt.upper()}"]
            for n in dims:
                vals = []
                for s in seeds:
                    out = train_once(
                        tims[n], arch, sampler, opt, iterations, batch, seed=s
                    )
                    vals.append(out.final_energy)
                row.append(mean_std(vals))
            rows.append(row)
    print(format_table(["method"] + [f"n={n}" for n in dims], rows, precision=2))

    if not args.paper and max(dims) <= 20:
        from repro.exact import ground_state

        exact = {n: ground_state(tims[n]).energy for n in dims if n <= 20}
        print("\nExact ground energies:", exact)


if __name__ == "__main__":
    main()
