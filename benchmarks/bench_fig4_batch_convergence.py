"""Figure 4 / Table 6 companion — converged energy vs number of GPUs.

Paper's claim: with a fixed tiny mini-batch (mbs = 4) per GPU, adding GPUs
grows the effective batch L·mbs and the converged energy improves, with the
improvement saturating for small problems but persisting for large ones.

Reproduction: real data-parallel training (thread backend) with mbs fixed,
L ∈ {1, 2, 4, 8, 16}; we report the converged energy normalised by the
largest-magnitude value per problem size (the paper's Fig. 4 normalisation).
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import format_table, parse_args  # noqa: E402

from repro.distributed.data_parallel import run_data_parallel  # noqa: E402
from repro.hamiltonians import TransverseFieldIsing  # noqa: E402
from repro.models import MADE  # noqa: E402
from repro.optim import Adam  # noqa: E402
from repro.samplers import AutoregressiveSampler  # noqa: E402

RANKS = (1, 2, 4, 8, 16)
MBS = 4  # the paper's per-GPU batch in Fig. 4 / Table 6


def _builder(n: int):
    def build(rank):
        model = MADE(n, rng=np.random.default_rng(0))
        ham = TransverseFieldIsing.random(n, seed=n)
        return model, ham, AutoregressiveSampler(), Adam(model.parameters())

    return build


def bench_data_parallel_step(benchmark):
    """Micro-benchmark: one 4-rank data-parallel training iteration."""
    benchmark(
        lambda: run_data_parallel(
            _builder(20), 4, iterations=1, mini_batch_size=MBS, seed=0
        )
    )


def main() -> None:
    args = parse_args(__doc__.splitlines()[0])
    dims = (20, 50, 100, 200) if args.paper else (12, 24)
    iterations = args.iters or (300 if args.paper else 120)

    rows = []
    raw_rows = []
    for n in dims:
        energies = []
        for L in RANKS:
            res = run_data_parallel(
                _builder(n), L, iterations=iterations,
                mini_batch_size=MBS, seed=3,
            )
            # Mean over the trailing quarter of training — the "converged"
            # energy, robust to tiny-batch noise at mbs=4.
            tail = max(5, iterations // 4)
            energies.append(float(np.mean(res.energy[-tail:])))
        scale = max(abs(e) for e in energies)
        rows.append([n] + [e / scale for e in energies])
        raw_rows.append([n] + energies)

    print(format_table(
        ["n \\ L"] + [str(L) for L in RANKS],
        rows,
        title=f"Figure 4: normalised converged energy (mbs={MBS}/rank, "
        f"{iterations} iters); closer to 1.0 = better",
        precision=4,
    ))
    print()
    print(format_table(
        ["n \\ L"] + [str(L) for L in RANKS],
        raw_rows,
        title="Raw converged energies (Table 6 energy rows, reduced scale)",
        precision=3,
    ))
    print(
        "\nExpected shape (paper): each row improves left→right (larger\n"
        "effective batch), saturating earlier for smaller n."
    )


if __name__ == "__main__":
    main()
