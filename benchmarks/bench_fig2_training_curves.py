"""Figure 2 — training curves (energy & local-energy std) on TIM.

Paper's claim: MADE+AUTO training is stable across problem sizes, with the
std of the stochastic objective (the zero-variance witness of Eq. 4)
decaying towards 0; RBM+MCMC struggles increasingly as n grows because its
sample quality degrades.

Script output: per-method/per-size curve summaries (energy and std at
checkpoints) plus CSV dumps under ``benchmarks/out/`` for plotting.
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import format_table, parse_args, train_once  # noqa: E402

from repro.hamiltonians import TransverseFieldIsing  # noqa: E402

OUT_DIR = pathlib.Path(__file__).parent / "out"


def bench_fig2_history_recording(benchmark):
    """Micro-benchmark: one MADE training step with history (curve point)."""
    from repro.core import History, VQMC
    from repro.models import MADE
    from repro.optim import Adam
    from repro.samplers import AutoregressiveSampler

    ham = TransverseFieldIsing.random(20, seed=1)
    model = MADE(20, rng=np.random.default_rng(0))
    vqmc = VQMC(model, ham, AutoregressiveSampler(), Adam(model.parameters()), seed=2)
    hist = History()
    benchmark(lambda: (hist.on_step(0, vqmc.step(batch_size=128))))


def main() -> None:
    args = parse_args(__doc__.splitlines()[0])
    iterations = args.iters or (300 if args.paper else 60)
    dims = (20, 50, 100, 200, 500) if args.paper else (10, 20, 50)
    batch = 1024 if args.paper else 256
    OUT_DIR.mkdir(exist_ok=True)

    checkpoints = [iterations // 4, iterations // 2, iterations - 1]
    rows = []
    for n in dims:
        ham = TransverseFieldIsing.random(n, seed=1)
        for arch, sampler in (("made", "auto"), ("rbm", "mcmc")):
            out = train_once(ham, arch, sampler, "adam", iterations, batch, seed=0)
            energy = np.asarray(out.history.energy)
            std = np.asarray(out.history.std)
            np.savetxt(
                OUT_DIR / f"fig2_{arch}_n{n}.csv",
                np.column_stack([np.arange(len(energy)), energy, std]),
                delimiter=",",
                header="iteration,energy,std",
                comments="",
            )
            row = [f"{arch}&{sampler}", n]
            for c in checkpoints:
                row.append(f"E={energy[c]:.1f}/σ={std[c]:.2f}")
            # Stability witness: did the std decrease over training?
            row.append("yes" if std[-5:].mean() < std[:5].mean() else "no")
            rows.append(row)
    print(format_table(
        ["method", "n"]
        + [f"iter {c}" for c in checkpoints]
        + ["std decayed"],
        rows,
        title=f"Figure 2 (training curves, {iterations} iters, bs={batch})",
    ))
    print(f"\nFull curves written to {OUT_DIR}/fig2_*.csv")


if __name__ == "__main__":
    main()
