"""Table 7 — run time at memory-saturating mini-batch per dimension.

Two pieces:
1. the mini-batch ladder itself — the largest power-of-two mbs a 32 GB V100
   holds for each n (the header row of Table 7), from our memory model;
2. the per-configuration run times from the calibrated cost model —
   constant across GPU configurations (weak scaling), growing with n.
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import format_table, parse_args  # noqa: E402

from repro.cluster import MemoryModel, calibrate_to_table1  # noqa: E402
from repro.cluster.memory import PAPER_MBS_LADDER  # noqa: E402

CONFIGS = [(1, 1), (1, 2), (1, 4), (2, 2), (2, 4), (4, 2), (4, 4), (8, 2), (6, 4)]


def bench_memory_model_ladder(benchmark):
    mm = MemoryModel()
    benchmark(lambda: mm.ladder())


def bench_local_energy_batch(benchmark):
    """The allocation that drives the memory ladder: the (mbs, n+1, n)
    neighbour expansion of the local-energy measurement."""
    from repro.core.energy import local_energies
    from repro.hamiltonians import TransverseFieldIsing
    from repro.models import MADE

    n = 100
    ham = TransverseFieldIsing.random(n, seed=1)
    model = MADE(n, rng=np.random.default_rng(0))
    x = model.sample(32, np.random.default_rng(1))
    benchmark(lambda: local_energies(model, ham, x))


def main() -> None:
    parse_args(__doc__.splitlines()[0])

    mm = MemoryModel()
    dims = tuple(PAPER_MBS_LADDER)
    pred = mm.ladder(dims)
    rows = [
        ["paper"] + [f"2^{int(np.log2(PAPER_MBS_LADDER[n]))}" for n in dims],
        ["model"] + [f"2^{int(np.log2(pred[n]))}" for n in dims],
    ]
    print(format_table(
        ["mbs source"] + [f"n={n}" for n in dims],
        rows,
        title="Table 7 header — memory-saturating mini-batch per V100",
    ))

    made_model, _ = calibrate_to_table1()
    rows = []
    for n_nodes, gpn in CONFIGS:
        rows.append(
            [f"{n_nodes}x{gpn}"]
            + [
                made_model.training_time(
                    n, pred[n], 300, n_nodes=n_nodes, gpus_per_node=gpn
                )
                for n in dims
            ]
        )
    print()
    print(format_table(
        ["config"] + [f"n={n}" for n in dims],
        rows,
        title="Table 7 body (model): time (s), 300 iters at saturating mbs",
    ))
    print(
        "\nExpected shape (paper): each column constant (weak scaling); the\n"
        "U-shape across columns (compute-bound at small n via huge mbs,\n"
        "pass-count-bound at large n) matches the paper's 77s → 62s → 1058s."
    )


if __name__ == "__main__":
    main()
