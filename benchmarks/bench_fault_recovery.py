"""Fault tolerance — resilience overhead and recovery cost.

Two questions decide whether the fault-tolerant stack is usable in anger:

1. **What does resilience cost when nothing fails?** The
   :class:`ResilientCommunicator` checksums and frames every message — two
   extra memory passes per hop, irreducible for full corruption coverage.
   We measure allreduce latency raw vs wrapped with a *paired* protocol:
   each trial times both paths back-to-back inside the same worker (same
   process, same cache/frequency state), and the overhead is the median of
   per-trial ratios — robust to the scheduling noise of oversubscribed CI
   boxes, where an independent min-of-k estimator swings by tens of
   percent. Headline: the process backend (the repo's honest analogue of
   the paper's one-rank-per-GPU setup) at a paper-scale gradient
   (2M float64 ≈ 16 MB), target <= 10 %. Small payloads are latency-bound
   and show a higher ratio on a single-core host, where every per-message
   pass serializes; the table reports the full sweep.
2. **What does a failure cost?** A world-3 resilient training run has one
   rank crash mid-run (deterministic :class:`FaultPlan`); survivors detect
   the death, shrink to world 2, restore the agreed checkpoint and finish.
   We report detection+restore wall time (``recovery_seconds``) and the
   end-to-end slowdown vs a fault-free run of the same length.

Emits ``BENCH_fault_recovery.json`` (via ``_harness.emit_json``) so the
overhead trajectory is tracked commit over commit.
"""

from __future__ import annotations

import pathlib
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import emit_json, format_table, parse_args  # noqa: E402

from repro.core.vqmc import VQMC  # noqa: E402
from repro.distributed import (  # noqa: E402
    ElasticConfig,
    FaultEvent,
    FaultInjectionCallback,
    FaultPlan,
    ResilientCommunicator,
    RetryPolicy,
    run_processes,
    run_threaded,
    train_resilient,
)
from repro.hamiltonians import TransverseFieldIsing  # noqa: E402
from repro.models import MADE  # noqa: E402
from repro.optim import SGD  # noqa: E402
from repro.samplers import AutoregressiveSampler  # noqa: E402

WORLD = 4
#: payload sweep per backend (floats); the last mp entry is the headline
#: (2M float64 = 16 MB, a paper-scale gradient)
THREAD_PAYLOADS = (1_024, 16_384, 131_072)
MP_PAYLOADS = (16_384, 131_072, 2_097_152)


def _paired_worker(comm, rank, payload, repeats, trials):
    """Time raw and resilient allreduce back-to-back, per trial."""
    res = ResilientCommunicator(comm, RetryPolicy())
    arr = np.ones(payload)
    comm.allreduce(arr)
    res.allreduce(arr)  # warm-up both paths: allocators, first-touch
    out = []
    for _ in range(trials):
        comm.barrier()
        t0 = time.perf_counter()
        for _ in range(repeats):
            comm.allreduce(arr)
        raw_t = (time.perf_counter() - t0) / repeats
        comm.barrier()
        t0 = time.perf_counter()
        for _ in range(repeats):
            res.allreduce(arr)
        res_t = (time.perf_counter() - t0) / repeats
        out.append((raw_t, res_t))
    return out


def _measure_overhead(backend: str, payload: int, repeats: int = 3,
                      trials: int = 11) -> dict:
    runner = run_threaded if backend == "threads" else run_processes
    per_rank = runner(_paired_worker, WORLD, args=(payload, repeats, trials),
                      timeout=300.0)
    pairs = np.array(per_rank)  # (ranks, trials, 2)
    raw = pairs[:, :, 0].max(axis=0)  # slowest rank, per trial
    res = pairs[:, :, 1].max(axis=0)
    # Overhead from the per-trial *sum over ranks*: both arms of a trial run
    # on the same ranks back-to-back, so scheduling noise largely cancels in
    # the paired ratio — the max-over-ranks latency, by contrast, is an
    # extreme statistic that amplifies single-core scheduler noise by tens
    # of percent from run to run.
    raw_sum = pairs[:, :, 0].sum(axis=0)
    res_sum = pairs[:, :, 1].sum(axis=0)
    return {
        "backend": backend,
        "payload_floats": payload,
        "raw_ms": float(np.median(raw)) * 1e3,
        "resilient_ms": float(np.median(res)) * 1e3,
        "overhead_pct": float(np.median(res_sum / raw_sum - 1.0) * 100.0),
    }


# -- recovery cost -------------------------------------------------------------


def _train_worker(comm, rank, ckpt_dir, iterations, crash_step):
    """One rank of a resilient run; the last rank crashes after crash_step."""
    policy = RetryPolicy(max_attempts=2, backoff_base=0.01, attempt_timeout=0.25)
    rcomm = ResilientCommunicator(comm, policy)
    model = MADE(6, hidden=8, rng=np.random.default_rng(3))
    ham = TransverseFieldIsing.random(6, seed=1)
    vqmc = VQMC(
        model, ham, AutoregressiveSampler(),
        SGD(model.parameters(), lr=0.05),
        comm=rcomm, seed=100 + rank,
    )
    callbacks = []
    if crash_step is not None:
        plan = FaultPlan(
            [FaultEvent(kind="crash", rank=comm.size - 1, step=crash_step)]
        )
        callbacks.append(FaultInjectionCallback(plan, rank))
    report = train_resilient(
        vqmc, iterations,
        batch_size=16,
        checkpoint_dir=ckpt_dir,
        checkpoint_every=2,
        callbacks=callbacks,
        elastic=ElasticConfig(),
    )
    return report


def _measure_recovery(tmp_root: pathlib.Path, iterations: int = 8) -> dict:
    t0 = time.perf_counter()
    run_threaded(
        _train_worker, 3, args=(str(tmp_root / "clean"), iterations, None),
        timeout=120.0,
    )
    clean_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    faulty = run_threaded(
        _train_worker, 3, args=(str(tmp_root / "faulty"), iterations, 4),
        timeout=120.0,
    )
    faulty_s = time.perf_counter() - t0

    survivors = [r for r in faulty if not r.crashed]
    assert all(r.completed_steps == iterations for r in survivors)
    assert all(r.restores for r in survivors), "no shrink/restore happened"
    return {
        "world_size": 3,
        "iterations": iterations,
        "crash_step": 4,
        "clean_run_s": clean_s,
        "faulty_run_s": faulty_s,
        "recovery_seconds_max": max(r.recovery_seconds for r in survivors),
        "restored_step": survivors[0].restores[0]["restored_step"],
        "final_world": len(survivors[0].final_group),
        "slowdown_pct": (faulty_s - clean_s) / clean_s * 100.0,
    }


# -- pytest-benchmark entry points ---------------------------------------------


def bench_allreduce_raw_vs_resilient_threads(benchmark):
    benchmark(lambda: _measure_overhead("threads", 16_384, repeats=1, trials=1))


def main() -> None:
    parse_args(__doc__.splitlines()[0])
    rows = []
    for payload in THREAD_PAYLOADS:
        rows.append(_measure_overhead("threads", payload))
    for payload in MP_PAYLOADS:
        rows.append(_measure_overhead("mp", payload))
    print(format_table(
        ["backend", "payload (floats)", "raw (ms)", "resilient (ms)",
         "overhead (%)"],
        [[r["backend"], r["payload_floats"], r["raw_ms"], r["resilient_ms"],
          r["overhead_pct"]] for r in rows],
        title=f"Resilience overhead on allreduce (paired trials, L={WORLD})",
    ))
    headline = rows[-1]["overhead_pct"]
    print(f"\nHeadline fault-free overhead (mp backend, "
          f"{MP_PAYLOADS[-1]} floats): {headline:.1f}% (target: <= 10%)")

    with tempfile.TemporaryDirectory() as tmp:
        recovery = _measure_recovery(pathlib.Path(tmp))
    print()
    print(format_table(
        ["clean run (s)", "faulty run (s)", "recovery (s)",
         "restored step", "final world"],
        [[recovery["clean_run_s"], recovery["faulty_run_s"],
          recovery["recovery_seconds_max"], recovery["restored_step"],
          recovery["final_world"]]],
        title="Recovery cost: rank crash at step 4 of 8 (world 3 -> 2)",
    ))

    emit_json("fault_recovery", {
        "overhead": rows,
        "overhead_pct": headline,
        "recovery": recovery,
    })


if __name__ == "__main__":
    main()
