"""Ablation — stochastic-reconfiguration solver: dense vs matrix-free CG.

DESIGN.md calls out the solver crossover as a design choice: the dense
path builds the d×d Fisher matrix (O(Bd² + d³)); the CG path only does
O(Bd)-cost matvecs. This bench locates the crossover empirically and
verifies the two solvers agree on the natural-gradient direction.

The distributed arm measures the claim that motivated the
communicator-aware engine (`repro.optim.sr`): with `solver='cg'` each SR
step allreduces only d-vectors — one (d+1)-vector for global-mean centring
plus one d-vector per CG iteration, O(d·iters) bytes total — while the
dense path must move the d×d moment matrix, O(d²). Both are measured from
`CommStats.collective_bytes` (ground truth, not a model), and both solvers
are checked against the serial big-batch dense solve, including at d
beyond `dense_threshold`. Emits `BENCH_sr_distributed.json`.
"""

from __future__ import annotations

import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import emit_json, format_table, parse_args  # noqa: E402

from repro.distributed import run_threaded  # noqa: E402
from repro.optim import StochasticReconfiguration  # noqa: E402


def _one_solve(d: int, solver: str, batch: int = 256, seed: int = 0) -> float:
    rng = np.random.default_rng(seed)
    o = rng.normal(size=(batch, d))
    g = rng.normal(size=d)
    sr = StochasticReconfiguration(diag_shift=1e-3, solver=solver)
    t0 = time.perf_counter()
    sr.natural_gradient(o, g)
    return time.perf_counter() - t0


def bench_sr_dense_small(benchmark):
    rng = np.random.default_rng(0)
    o = rng.normal(size=(256, 200))
    g = rng.normal(size=200)
    sr = StochasticReconfiguration(solver="dense")
    benchmark(lambda: sr.natural_gradient(o, g))


def bench_sr_cg_small(benchmark):
    rng = np.random.default_rng(0)
    o = rng.normal(size=(256, 200))
    g = rng.normal(size=200)
    sr = StochasticReconfiguration(solver="cg")
    benchmark(lambda: sr.natural_gradient(o, g))


def bench_sr_cg_large(benchmark):
    rng = np.random.default_rng(0)
    o = rng.normal(size=(256, 4000))
    g = rng.normal(size=4000)
    sr = StochasticReconfiguration(solver="cg")
    benchmark(lambda: sr.natural_gradient(o, g))


# -- distributed arm ----------------------------------------------------------


def _distributed_solve(o: np.ndarray, g: np.ndarray, world: int, solver: str):
    """One distributed SR solve over `world` thread ranks sharding `o`.

    Returns (solution, per-rank collective bytes, CG iterations, seconds).
    Every rank computes the identical solution; rank 0's view is returned.
    """
    shards = np.array_split(o, world)

    def worker(comm, rank):
        sr = StochasticReconfiguration(
            diag_shift=1e-3, solver=solver, cg_maxiter=500
        )
        t0 = time.perf_counter()
        sol = sr.natural_gradient(shards[rank], g, comm=comm)
        elapsed = time.perf_counter() - t0
        info = sr.last_solve
        return sol, info.comm_bytes, info.iterations, elapsed

    return run_threaded(worker, world)[0]


def run_distributed_arm(dims, world: int, batch: int) -> list[dict]:
    """Comm-volume + parity table: distributed dense vs distributed CG,
    both against the serial big-batch dense solve."""
    results = []
    for d in dims:
        rng = np.random.default_rng(d)
        o = rng.normal(size=(batch, d))
        g = rng.normal(size=d)
        ref = StochasticReconfiguration(
            diag_shift=1e-3, solver="dense"
        ).natural_gradient(o, g)
        ref_norm = np.linalg.norm(ref)

        sol_c, bytes_c, iters, t_c = _distributed_solve(o, g, world, "cg")
        err_c = float(np.linalg.norm(sol_c - ref) / ref_norm)
        row = {
            "d": d,
            "world": world,
            "batch": batch,
            "cg_iterations": iters,
            "cg_bytes_per_rank": bytes_c,
            "cg_seconds": t_c,
            "cg_rel_err": err_c,
            "dxd_bytes": d * d * 8,
        }
        if d <= 1500:  # the dense d×d allreduce gets slow fast — cap it
            sol_d, bytes_d, _, t_d = _distributed_solve(o, g, world, "dense")
            row["dense_bytes_per_rank"] = bytes_d
            row["dense_seconds"] = t_d
            row["dense_rel_err"] = float(np.linalg.norm(sol_d - ref) / ref_norm)
            row["bytes_ratio"] = bytes_d / bytes_c
        results.append(row)
    return results


def main() -> None:
    args = parse_args(__doc__.splitlines()[0])
    dims = (100, 300, 1000, 3000)
    rows = []
    for d in dims:
        t_dense = min(_one_solve(d, "dense", seed=s) for s in range(3))
        t_cg = min(_one_solve(d, "cg", seed=s) for s in range(3))
        # agreement
        rng = np.random.default_rng(9)
        o = rng.normal(size=(256, d))
        g = rng.normal(size=d)
        sd = StochasticReconfiguration(diag_shift=1e-3, solver="dense")
        sc = StochasticReconfiguration(diag_shift=1e-3, solver="cg")
        err = np.max(np.abs(sd.natural_gradient(o, g) - sc.natural_gradient(o, g)))
        rows.append([d, t_dense * 1e3, t_cg * 1e3, t_dense / t_cg, f"{err:.1e}"])
    print(format_table(
        ["d", "dense (ms)", "CG (ms)", "dense/CG", "max |Δdirection|"],
        rows,
        title="SR solver ablation (B = 256 samples)",
    ))
    print("\nThe 'auto' mode switches to CG above d = 2000 — consistent with "
          "the crossover above.")

    # -- distributed arm: comm volume is the story, not flops ------------------
    world = 4
    dist_dims = (100, 300, 1000, 3000) if args.paper else (100, 300, 1000, 2500)
    dist = run_distributed_arm(dist_dims, world=world, batch=256)
    table = []
    for r in dist:
        table.append([
            r["d"],
            r["cg_iterations"],
            f"{r['cg_bytes_per_rank'] / 1e3:.1f}",
            f"{r.get('dense_bytes_per_rank', r['dxd_bytes']) / 1e3:.1f}",
            f"{r.get('dense_bytes_per_rank', r['dxd_bytes']) / r['cg_bytes_per_rank']:.1f}×",
            f"{r['cg_rel_err']:.1e}",
        ])
    print()
    print(format_table(
        ["d", "CG iters", "CG kB/rank", "dense kB/rank", "dense/CG", "rel err vs serial dense"],
        table,
        title=f"Distributed SR comm volume per solve (L = {world} thread ranks)",
    ))
    print(
        "\nCG allreduces one (d+1)-vector (centring) + one d-vector per "
        "iteration +\none for the residual — O(d·iters); dense must move "
        "the d×d moment matrix —\nO(d²). Both match the serial big-batch "
        "dense solve, including beyond the\ndense_threshold crossover."
    )
    # Acceptance floor: at the largest d, CG comm volume must undercut the
    # d×d matrix by a wide margin and still match the dense direction.
    big = dist[-1]
    assert big["cg_bytes_per_rank"] < big["dxd_bytes"] / 10, (
        f"CG comm volume {big['cg_bytes_per_rank']} B is not ≪ d×d "
        f"{big['dxd_bytes']} B"
    )
    assert big["cg_rel_err"] < 1e-6, (
        f"distributed CG diverged from serial dense: {big['cg_rel_err']:.2e}"
    )
    emit_json("sr_distributed", {
        "preset": "paper" if args.paper else "reduced",
        "world": world,
        "headline": {
            "d": big["d"],
            "cg_bytes_per_rank": big["cg_bytes_per_rank"],
            "dxd_bytes": big["dxd_bytes"],
            "volume_reduction": big["dxd_bytes"] / big["cg_bytes_per_rank"],
            "cg_rel_err_vs_serial_dense": big["cg_rel_err"],
        },
        "results": dist,
    })


if __name__ == "__main__":
    main()
