"""Ablation — stochastic-reconfiguration solver: dense vs matrix-free CG.

DESIGN.md calls out the solver crossover as a design choice: the dense
path builds the d×d Fisher matrix (O(Bd² + d³)); the CG path only does
O(Bd)-cost matvecs. This bench locates the crossover empirically and
verifies the two solvers agree on the natural-gradient direction.
"""

from __future__ import annotations

import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import format_table, parse_args  # noqa: E402

from repro.optim import StochasticReconfiguration  # noqa: E402


def _one_solve(d: int, solver: str, batch: int = 256, seed: int = 0) -> float:
    rng = np.random.default_rng(seed)
    o = rng.normal(size=(batch, d))
    g = rng.normal(size=d)
    sr = StochasticReconfiguration(diag_shift=1e-3, solver=solver)
    t0 = time.perf_counter()
    sr.natural_gradient(o, g)
    return time.perf_counter() - t0


def bench_sr_dense_small(benchmark):
    rng = np.random.default_rng(0)
    o = rng.normal(size=(256, 200))
    g = rng.normal(size=200)
    sr = StochasticReconfiguration(solver="dense")
    benchmark(lambda: sr.natural_gradient(o, g))


def bench_sr_cg_small(benchmark):
    rng = np.random.default_rng(0)
    o = rng.normal(size=(256, 200))
    g = rng.normal(size=200)
    sr = StochasticReconfiguration(solver="cg")
    benchmark(lambda: sr.natural_gradient(o, g))


def bench_sr_cg_large(benchmark):
    rng = np.random.default_rng(0)
    o = rng.normal(size=(256, 4000))
    g = rng.normal(size=4000)
    sr = StochasticReconfiguration(solver="cg")
    benchmark(lambda: sr.natural_gradient(o, g))


def main() -> None:
    parse_args(__doc__.splitlines()[0])
    dims = (100, 300, 1000, 3000)
    rows = []
    for d in dims:
        t_dense = min(_one_solve(d, "dense", seed=s) for s in range(3))
        t_cg = min(_one_solve(d, "cg", seed=s) for s in range(3))
        # agreement
        rng = np.random.default_rng(9)
        o = rng.normal(size=(256, d))
        g = rng.normal(size=d)
        sd = StochasticReconfiguration(diag_shift=1e-3, solver="dense")
        sc = StochasticReconfiguration(diag_shift=1e-3, solver="cg")
        err = np.max(np.abs(sd.natural_gradient(o, g) - sc.natural_gradient(o, g)))
        rows.append([d, t_dense * 1e3, t_cg * 1e3, t_dense / t_cg, f"{err:.1e}"])
    print(format_table(
        ["d", "dense (ms)", "CG (ms)", "dense/CG", "max |Δdirection|"],
        rows,
        title="SR solver ablation (B = 256 samples)",
    ))
    print("\nThe 'auto' mode switches to CG above d = 2000 — consistent with "
          "the crossover above.")


if __name__ == "__main__":
    main()
