"""Server query throughput — what does request coalescing buy?

The serve-layer acceptance criterion: ``B`` concurrent energy queries
against one warm model must execute in exactly ``ceil(B / window)``
coalesced forward passes — asserted via the ``RequestBatcher.forwards``
counter, never inferred from timing — and coalescing must deliver at
least **3x** the serial throughput at ``B = 16``.

Protocol: one warm :class:`~repro.serve.cache.CacheEntry` (a trained-ish
tiny MADE model), two batcher arms per trial:

- *serial*: ``window=1`` — every query is its own forward, the cost a
  naive per-request server would pay;
- *coalesced*: ``window=w`` with the batcher's executor held until all
  ``B`` requests are staged (``autostart=False`` + :meth:`start`), so the
  forward count is deterministic, then all waited to completion.

Per-query batches are small (tens of samples — the realistic query size
the batcher exists for), so per-call overhead dominates and coalescing
amortises it across the window. The reported ratio is the median of
paired per-trial ratios, robust to scheduler noise.

Emits ``BENCH_server_throughput.json``; the ``headline.throughput_ratio``
metric is tracked by ``tools/bench_track.py``.
"""

from __future__ import annotations

import math
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import emit_json, format_table, parse_args  # noqa: E402

from repro.serve.batcher import RequestBatcher  # noqa: E402
from repro.serve.cache import CacheEntry  # noqa: E402
from repro.serve.protocol import JobSpec, QuerySpec  # noqa: E402
from repro.serve.server import build_trainer  # noqa: E402

N_SITES = 10
HIDDEN = 24
QUERY_BATCH = 16  # samples per query: the small-query regime batching targets
B = 16  # concurrent queries (the acceptance-criterion load)

#: acceptance target: coalesced throughput >= 3x serial at B=16
TARGET_RATIO = 3.0


def _warm_entry() -> CacheEntry:
    spec = JobSpec.from_json(
        {
            "problem": "tim",
            "n": N_SITES,
            "arch": "made",
            "hidden": HIDDEN,
            "seed": 3,
            "iterations": 3,
            "batch_size": 64,
        }
    )
    vqmc = build_trainer("tim", N_SITES, 0, "made", HIDDEN, seed=3)
    vqmc.run(iterations=3, batch_size=64)  # nudge off the init point
    return CacheEntry(spec.model_key(), vqmc)


def _query(entry: CacheEntry) -> QuerySpec:
    return QuerySpec.from_json(
        {
            "problem": "tim",
            "n": N_SITES,
            "arch": "made",
            "hidden": HIDDEN,
            "seed": 3,
            "batch_size": QUERY_BATCH,
        },
        kind="energy",
    )


def _run_arm(entry: CacheEntry, window: int, b: int) -> tuple[float, int]:
    """Serve ``b`` staged queries through one batcher arm.

    Returns (seconds, forwards). The executor starts only after all
    requests are pending, so ``forwards == ceil(b / window)`` exactly.
    """
    batcher = RequestBatcher(window=window, linger_s=0.0, autostart=False)
    pending = [batcher.submit(_query(entry), entry) for _ in range(b)]
    t0 = time.perf_counter()
    batcher.start()
    for p in pending:
        p.wait(timeout=60.0)
    elapsed = time.perf_counter() - t0
    batcher.close()
    return elapsed, batcher.forwards


def measure(windows=(1, 4, 8, 16), b: int = B, trials: int = 9) -> dict:
    entry = _warm_entry()
    for window in windows:  # warm-up: allocators, sampler fast paths
        _run_arm(entry, window, b)
    times: dict[int, list[float]] = {w: [] for w in windows}
    forwards: dict[int, int] = {}
    for trial in range(trials):
        order = list(windows)[trial % len(windows):] + list(windows)[: trial % len(windows)]
        for window in order:
            elapsed, n_forwards = _run_arm(entry, window, b)
            expected = math.ceil(b / window)
            if n_forwards != expected:
                raise AssertionError(
                    f"window={window}, B={b}: {n_forwards} forwards, "
                    f"expected ceil(B/window)={expected}"
                )
            times[window].append(elapsed)
            forwards[window] = n_forwards
    serial = np.array(times[windows[0]])
    results = []
    for window in windows:
        arm = np.array(times[window])
        results.append(
            {
                "window": window,
                "forwards": forwards[window],
                "expected_forwards": math.ceil(b / window),
                "median_seconds": float(np.median(arm)),
                "queries_per_second": b / float(np.median(arm)),
                "throughput_ratio": float(np.median(serial / arm)),
            }
        )
    return {
        "b": b,
        "query_batch": QUERY_BATCH,
        "n_sites": N_SITES,
        "trials": trials,
        "results": results,
    }


# -- pytest-benchmark entry point ------------------------------------------------


def bench_coalesced_window(benchmark):
    entry = _warm_entry()
    benchmark(lambda: _run_arm(entry, 8, 8))


def main() -> None:
    args = parse_args(__doc__.splitlines()[0])
    trials = args.iters if args.iters is not None else 9
    doc = measure(trials=trials)

    rows = [
        [
            r["window"],
            f"{r['forwards']} (= ceil({doc['b']}/{r['window']}))",
            r["median_seconds"] * 1e3,
            r["queries_per_second"],
            r["throughput_ratio"],
        ]
        for r in doc["results"]
    ]
    print(format_table(
        ["window", "forwards", "ms / B queries", "queries / s", "vs serial"],
        rows,
        title=(
            f"request coalescing: B={doc['b']} energy queries x "
            f"{QUERY_BATCH} samples, MADE({N_SITES}, hidden={HIDDEN})"
        ),
    ))

    full = next(r for r in doc["results"] if r["window"] == doc["b"])
    ok = full["throughput_ratio"] >= TARGET_RATIO
    print(
        f"\ncoalesced (window={doc['b']}) vs serial: "
        f"{full['throughput_ratio']:.2f}x "
        f"({'PASS' if ok else 'FAIL'} vs >= {TARGET_RATIO}x); forward counts "
        f"matched ceil(B/window) for every window (counter-asserted)"
    )

    emit_json("server_throughput", {
        **doc,
        "headline": {
            "throughput_ratio": full["throughput_ratio"],
            "queries_per_second": full["queries_per_second"],
        },
        "target_ratio": TARGET_RATIO,
        "pass": bool(ok),
    })


if __name__ == "__main__":
    main()
