"""Table 4 — ablation on the MCMC sampling scheme (RBM + Adam on Max-Cut).

Schemes (§6.2):
- Scheme 1 (burn-in): discard the first {n, 3n+100, 10n} chain samples.
- Scheme 2 (thinning): keep every {2, 5, 10}-th sample.

Paper's observations: longer chains (10n burn-in or ×10 thinning) improve
the cut at proportionally higher cost; chain length, not model size, sets
the time.
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import format_table, mean_std, parse_args, train_once  # noqa: E402

from repro.hamiltonians import MaxCut  # noqa: E402


def _schemes(n: int):
    return {
        "k=n": dict(burn_in=n, thin=1),
        "k=3n+100": dict(burn_in=3 * n + 100, thin=1),
        "k=10n": dict(burn_in=10 * n, thin=1),
        "x2": dict(burn_in=3 * n + 100, thin=2),
        "x5": dict(burn_in=3 * n + 100, thin=5),
        "x10": dict(burn_in=3 * n + 100, thin=10),
    }


def bench_mcmc_short_chain(benchmark):
    from repro.models import RBM
    from repro.samplers import MetropolisSampler

    model = RBM(50, rng=np.random.default_rng(0))
    sampler = MetropolisSampler(n_chains=2, burn_in=50, thin=1)
    rng = np.random.default_rng(1)
    benchmark(lambda: sampler.sample(model, 128, rng))


def bench_mcmc_long_chain(benchmark):
    from repro.models import RBM
    from repro.samplers import MetropolisSampler

    model = RBM(50, rng=np.random.default_rng(0))
    sampler = MetropolisSampler(n_chains=2, burn_in=500, thin=1)
    rng = np.random.default_rng(1)
    benchmark(lambda: sampler.sample(model, 128, rng))


def main() -> None:
    args = parse_args(__doc__.splitlines()[0])
    iterations = args.iters or (300 if args.paper else 40)
    dims = (50, 100, 200, 500) if args.paper else (16, 30)
    batch = 1024 if args.paper else 128
    seeds = range(args.seeds or (5 if args.paper else 2))

    cut_rows, time_rows = [], []
    for n in dims:
        ham = MaxCut.random(n, seed=n)
        cut_row, time_row = [n], [n]
        for label, kw in _schemes(n).items():
            cuts, times = [], []
            for s in seeds:
                out = train_once(
                    ham, "rbm", "mcmc", "adam", iterations, batch, seed=s, **kw
                )
                cuts.append(out.best_cut)
                times.append(out.train_seconds)
            cut_row.append(mean_std(cuts))
            time_row.append(float(np.mean(times)))
        cut_rows.append(cut_row)
        time_rows.append(time_row)

    headers = ["n"] + list(_schemes(0))
    print(format_table(headers, cut_rows,
                       title="Table 4 — cut vs MCMC scheme (RBM, Adam)", precision=1))
    print(format_table(headers, time_rows,
                       title="Table 4 — training time (s) vs MCMC scheme"))
    print(
        "\nExpected shape (paper): k=10n and x10 give the best cuts at the\n"
        "highest time; time scales with chain length, not model size."
    )


if __name__ == "__main__":
    main()
