"""Schedule-explorer coverage — how fast does the verifier walk schedules?

Two numbers matter for the explorer as a CI gate. **Throughput**
(interleavings/second): a bounded clean exploration of every registered
scenario has to fit in a smoke-test budget, so we measure how many
complete schedules the explorer executes per wall-second, per scenario.
**Time-to-bug** (schedules to first failure): both seeded historical
bugs — the recv livelock and the double sync boundary — must be found
early in the DFS or the gate is theatre; we record exactly how many
schedules each takes to surface, plus the wall cost of the discovery and
of the bit-identical replay check.

Emits ``BENCH_explore_coverage.json`` (via ``_harness.emit_json``) so
explorer throughput and rediscovery depth are tracked commit over commit.
"""

from __future__ import annotations

import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import emit_json, format_table, parse_args  # noqa: E402

from repro.analysis.explore import explore, replay_trace  # noqa: E402
from repro.analysis.scenarios import get_scenario, scenario_names  # noqa: E402

#: clean-exploration budget per scenario (matches the CI smoke's scale)
CLEAN_SCHEDULES = 8
#: budget for the seeded runs; the bugs must surface well inside this
SEEDED_SCHEDULES = 10


def _measure_clean(name: str) -> dict:
    scenario = get_scenario(name)
    t0 = time.perf_counter()
    report = explore(scenario, max_schedules=CLEAN_SCHEDULES)
    wall = time.perf_counter() - t0
    assert not report.found_bug, (
        f"{name}: clean exploration failed — {report.failure.status}"
    )
    return {
        "scenario": name,
        "schedules": report.schedules,
        "events_total": report.events_total,
        "wall_s": round(wall, 4),
        "interleavings_per_s": round(report.schedules / wall, 2) if wall else None,
        "events_per_s": round(report.events_total / wall, 1) if wall else None,
    }


def _measure_seeded(name: str) -> dict:
    scenario = get_scenario(name)
    t0 = time.perf_counter()
    report = explore(scenario, seed_bug=True, max_schedules=SEEDED_SCHEDULES)
    wall = time.perf_counter() - t0
    assert report.found_bug, f"{name}: seeded bug was not rediscovered"
    trace = report.failure.to_trace(name, seed_bug=True)
    t0 = time.perf_counter()
    replayed = replay_trace(trace)
    replay_wall = time.perf_counter() - t0
    assert replayed.fingerprint == report.failure.fingerprint
    return {
        "scenario": name,
        "bug": scenario.bug,
        "verdict": report.failure.status,
        "schedules_to_first_bug": report.failure_schedule,
        "events_to_bug": report.events_total,
        "discovery_wall_s": round(wall, 4),
        "replay_wall_s": round(replay_wall, 4),
    }


def bench_clean_allreduce_exploration(benchmark):
    benchmark(lambda: explore(get_scenario("allreduce"), max_schedules=2))


def main() -> None:
    parse_args(__doc__.splitlines()[0])

    clean_rows = [_measure_clean(name) for name in scenario_names()]
    print(format_table(
        ["scenario", "schedules", "events", "wall (s)",
         "interleavings/s", "events/s"],
        [[r["scenario"], r["schedules"], r["events_total"], r["wall_s"],
          r["interleavings_per_s"], r["events_per_s"]] for r in clean_rows],
        title=f"Clean exploration throughput (budget {CLEAN_SCHEDULES} "
        "schedules/scenario)",
    ))

    seeded_rows = [
        _measure_seeded(name)
        for name in scenario_names()
        if get_scenario(name).fault_hooks
    ]
    print()
    print(format_table(
        ["scenario", "verdict", "schedules to bug", "discovery (s)",
         "replay (s)"],
        [[r["scenario"], r["verdict"], r["schedules_to_first_bug"],
          r["discovery_wall_s"], r["replay_wall_s"]] for r in seeded_rows],
        title="Seeded-bug rediscovery (both historical elastic bugs)",
    ))

    total_schedules = sum(r["schedules"] for r in clean_rows)
    total_wall = sum(r["wall_s"] for r in clean_rows)
    headline = round(total_schedules / total_wall, 2) if total_wall else None
    print(f"\nHeadline: {headline} interleavings/s across the clean sweep; "
          f"worst time-to-bug: "
          f"{max(r['schedules_to_first_bug'] for r in seeded_rows)} "
          "schedule(s)")

    emit_json("explore_coverage", {
        "interleavings_per_s": headline,
        "clean": clean_rows,
        "seeded": seeded_rows,
    })


if __name__ == "__main__":
    main()
