"""Sanitizer overhead — what does always-on collective checking cost?

The :class:`~repro.analysis.comm_sanitizer.CommSanitizer` exchanges a
fixed-size (~1 KB) fingerprint frame among all ranks before every
collective. That is one extra latency-bound swap per collective — amortised
to nothing on bandwidth-bound paper-scale gradients, visible on tiny
payloads. We measure allreduce latency raw vs sanitized with the same
*paired* protocol as ``bench_fault_recovery.py``: each trial times both
paths back-to-back inside the same worker, and the overhead is the median
of per-trial sum-over-ranks ratios — robust to scheduler noise on
oversubscribed CI boxes. Headline: the process backend at a paper-scale
gradient (2M float64 ≈ 16 MB), target <= 10 %.

The :class:`~repro.analysis.graph_sanitizer.GraphSanitizer` adds per-op
buffer fingerprinting to the tensor engine; we time a forward+backward
training objective bare vs sanitized (same paired protocol, single
process) so the cost of leaving it on during debugging is a number, not a
guess.

Emits ``BENCH_sanitizer_overhead.json`` (via ``_harness.emit_json``) so the
overhead trajectory is tracked commit over commit.
"""

from __future__ import annotations

import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import emit_json, format_table, parse_args  # noqa: E402

from repro.analysis import CommSanitizer, GraphSanitizer  # noqa: E402
from repro.distributed import run_processes, run_threaded  # noqa: E402
from repro.models import MADE  # noqa: E402

WORLD = 4
#: payload sweep per backend (floats); the last mp entry is the headline
#: (2M float64 = 16 MB, a paper-scale gradient)
THREAD_PAYLOADS = (1_024, 16_384, 131_072)
MP_PAYLOADS = (16_384, 131_072, 2_097_152)


def _paired_worker(comm, rank, payload, repeats, trials):
    """Time raw and sanitized allreduce back-to-back, per trial."""
    sane = CommSanitizer(comm)
    arr = np.ones(payload)
    comm.allreduce(arr)
    sane.allreduce(arr)  # warm-up both paths: allocators, first-touch
    out = []
    for _ in range(trials):
        comm.barrier()
        t0 = time.perf_counter()
        for _ in range(repeats):
            comm.allreduce(arr)
        raw_t = (time.perf_counter() - t0) / repeats
        comm.barrier()
        t0 = time.perf_counter()
        for _ in range(repeats):
            sane.allreduce(arr)
        san_t = (time.perf_counter() - t0) / repeats
        out.append((raw_t, san_t))
    return out


def _measure_comm_overhead(backend: str, payload: int, repeats: int = 3,
                           trials: int = 11) -> dict:
    runner = run_threaded if backend == "threads" else run_processes
    per_rank = runner(_paired_worker, WORLD, args=(payload, repeats, trials),
                      timeout=300.0)
    pairs = np.array(per_rank)  # (ranks, trials, 2)
    raw = pairs[:, :, 0].max(axis=0)  # slowest rank, per trial
    san = pairs[:, :, 1].max(axis=0)
    # Paired per-trial sum-over-ranks ratio: both arms of a trial run on the
    # same ranks back-to-back, so scheduling noise largely cancels (see
    # bench_fault_recovery.py for why max-over-ranks is too jittery here).
    raw_sum = pairs[:, :, 0].sum(axis=0)
    san_sum = pairs[:, :, 1].sum(axis=0)
    return {
        "backend": backend,
        "payload_floats": payload,
        "raw_ms": float(np.median(raw)) * 1e3,
        "sanitized_ms": float(np.median(san)) * 1e3,
        "overhead_pct": float(np.median(san_sum / raw_sum - 1.0) * 100.0),
    }


# -- GraphSanitizer: per-op engine overhead ------------------------------------


def _objective(model, batch):
    return (model.log_prob(batch) ** 2).sum()


def _measure_graph_overhead(n_sites: int = 12, hidden: int = 32,
                            batch: int = 64, trials: int = 11) -> dict:
    rng = np.random.default_rng(5)
    model = MADE(n_sites, hidden=hidden, rng=np.random.default_rng(3))
    states = (rng.random((batch, n_sites)) < 0.5).astype(np.float64)
    _objective(model, states).backward()  # warm-up
    pairs = []
    for _ in range(trials):
        t0 = time.perf_counter()
        _objective(model, states).backward()
        bare_t = time.perf_counter() - t0
        t0 = time.perf_counter()
        with GraphSanitizer(nonfinite="record"):
            _objective(model, states).backward()
        san_t = time.perf_counter() - t0
        pairs.append((bare_t, san_t))
    arr = np.array(pairs)
    return {
        "n_sites": n_sites,
        "hidden": hidden,
        "batch": batch,
        "bare_ms": float(np.median(arr[:, 0])) * 1e3,
        "sanitized_ms": float(np.median(arr[:, 1])) * 1e3,
        "overhead_pct": float(np.median(arr[:, 1] / arr[:, 0] - 1.0) * 100.0),
    }


# -- pytest-benchmark entry points ---------------------------------------------


def bench_allreduce_raw_vs_sanitized_threads(benchmark):
    benchmark(lambda: _measure_comm_overhead("threads", 16_384,
                                             repeats=1, trials=1))


def main() -> None:
    parse_args(__doc__.splitlines()[0])
    rows = []
    for payload in THREAD_PAYLOADS:
        rows.append(_measure_comm_overhead("threads", payload))
    for payload in MP_PAYLOADS:
        rows.append(_measure_comm_overhead("mp", payload))
    print(format_table(
        ["backend", "payload (floats)", "raw (ms)", "sanitized (ms)",
         "overhead (%)"],
        [[r["backend"], r["payload_floats"], r["raw_ms"], r["sanitized_ms"],
          r["overhead_pct"]] for r in rows],
        title=f"CommSanitizer overhead on allreduce (paired trials, L={WORLD})",
    ))
    headline = rows[-1]["overhead_pct"]
    print(f"\nHeadline sanitizer overhead (mp backend, "
          f"{MP_PAYLOADS[-1]} floats): {headline:.1f}% (target: <= 10%)")

    graph = _measure_graph_overhead()
    print()
    print(format_table(
        ["bare (ms)", "sanitized (ms)", "overhead (%)"],
        [[graph["bare_ms"], graph["sanitized_ms"], graph["overhead_pct"]]],
        title=(
            f"GraphSanitizer overhead on MADE({graph['n_sites']}, "
            f"hidden={graph['hidden']}) forward+backward, "
            f"batch={graph['batch']}"
        ),
    ))

    emit_json("sanitizer_overhead", {
        "comm": rows,
        "overhead_pct": headline,
        "graph": graph,
    })


if __name__ == "__main__":
    main()
