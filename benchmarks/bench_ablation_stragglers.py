"""Ablation — what breaks weak scaling in practice: stragglers and jitter.

The paper's Figure 3 shows flat weak scaling on a healthy homogeneous
cluster. Synchronous data parallelism is only as fast as its slowest rank,
so this harness uses the discrete-event simulator to quantify the two
real-world failure modes the closed-form model can't see:

1. a single straggler GPU (thermal throttling, bad host): job slowdown
   tracks the straggler's slowdown almost 1:1, independent of L;
2. per-step compute jitter: even zero-mean noise inflates the mean
   iteration time as E[max of L draws], growing with L — a genuine
   (if mild) weak-scaling penalty invisible in Fig. 3's averages.
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import format_table, parse_args  # noqa: E402

from repro.cluster.simulator import DataParallelSimulator  # noqa: E402


def bench_simulator_iteration(benchmark):
    sim = DataParallelSimulator(n=500, mini_batch=64, n_nodes=6, gpus_per_node=4,
                                jitter=0.1)
    benchmark(lambda: sim.run(iterations=5))


def main() -> None:
    parse_args(__doc__.splitlines()[0])
    n, mbs = 1000, 128

    # ---- 1. single straggler -------------------------------------------------
    rows = []
    for n_nodes, gpn in ((1, 4), (2, 4), (6, 4)):
        L = n_nodes * gpn
        base = DataParallelSimulator(
            n=n, mini_batch=mbs, n_nodes=n_nodes, gpus_per_node=gpn
        ).run(3)
        for slow in (1.25, 1.5, 2.0):
            factors = np.ones(L)
            factors[0] = slow
            res = DataParallelSimulator(
                n=n, mini_batch=mbs, n_nodes=n_nodes, gpus_per_node=gpn,
                speed_factors=factors,
            ).run(3)
            rows.append([
                f"{n_nodes}x{gpn}", f"{slow:.2f}x",
                res.slowdown_vs(base),
                float(np.mean([t.idle for t in res.timelines[1:]])) * 1e3,
            ])
    print(format_table(
        ["config", "straggler", "job slowdown", "mean idle of healthy ranks (ms)"],
        rows,
        title=f"Single-straggler ablation (TIM n={n}, mbs={mbs})",
        precision=3,
    ))

    # ---- 2. jitter vs L --------------------------------------------------------
    rows = []
    for L in (1, 4, 8, 16, 24):
        base = DataParallelSimulator(n=n, mini_batch=mbs, n_nodes=1,
                                     gpus_per_node=1).run(30)
        noisy = DataParallelSimulator(
            n=n, mini_batch=mbs,
            n_nodes=max(1, L // 4), gpus_per_node=min(L, 4),
            jitter=0.2,
        ).run(30, rng=np.random.default_rng(1))
        rows.append([L, noisy.mean_iteration / base.mean_iteration])
    print()
    print(format_table(
        ["ranks L", "mean iter time vs 1-rank noiseless"],
        rows,
        title="Jitter ablation (σ = 0.2 lognormal per phase)",
        precision=3,
    ))
    print(
        "\nExpected shape: job slowdown ≈ straggler slowdown at every L\n"
        "(synchronous barrier); jitter penalty grows with L as E[max]."
    )


if __name__ == "__main__":
    main()
