"""Elastic runtime v2: rejoin recovery cost and straggler-aware rebalancing.

Two paired measurements behind the elastic supervisor's headline claims:

1. **Kill-then-rejoin recovery** (world 3, threads): rank 2 is crashed at
   step 4 by a seeded FaultPlan, the survivors shrink and keep training,
   the victim restarts and re-enters via ``TrainingSupervisor.rejoin``.
   Reported: the survivors' shrink/restore time, the grow-handshake time
   (consensus + state broadcast, ``joins[0]["seconds"]``), and the whole
   faulty run's wall-clock against an identical no-fault run.

2. **Straggler rebalancing** (world 4, threads): every rank's sampler
   carries a deterministic ``time.sleep`` proportional to its batch (sleeps
   release the GIL, so four threaded ranks genuinely overlap) and rank 3
   sleeps 2x as long per sample — the injected straggler. Three runs over
   the same global batch: no straggler (even split), straggler with
   rebalancing disabled (hysteresis pushed out of reach), and straggler
   with the live BatchLedger. Acceptance pinned here: the ledger must
   recover >= 50 % of the step time lost to the straggler
   (``recovered = (static - rebalanced) / (static - baseline)``).

Run: ``python benchmarks/bench_elastic_scaling.py`` (or via ``run_all.py``).
Emits ``out/BENCH_elastic_scaling.json``.
"""

from __future__ import annotations

import pathlib
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from _harness import emit_json, format_table, parse_args  # noqa: E402

from repro.core.vqmc import VQMC  # noqa: E402
from repro.distributed import (  # noqa: E402
    BatchLedger,
    ElasticConfig,
    FaultEvent,
    FaultInjectionCallback,
    FaultPlan,
    FaultyCommunicator,
    ResilientCommunicator,
    RetryPolicy,
    TrainingSupervisor,
    run_elastic_data_parallel,
    run_threaded,
)
from repro.hamiltonians import TransverseFieldIsing  # noqa: E402
from repro.models import MADE  # noqa: E402
from repro.optim import SGD  # noqa: E402
from repro.samplers import AutoregressiveSampler  # noqa: E402

_RETRY = dict(max_attempts=2, backoff_base=0.01, attempt_timeout=0.25)

# -- measurement 1: kill, shrink, rejoin ---------------------------------------

REJOIN_WORLD = 3
REJOIN_ITER = 30
REJOIN_CRASH = 4
REJOIN_BATCH = 48


def _make_vqmc(comm, rank):
    model = MADE(6, hidden=8, rng=np.random.default_rng(3))
    ham = TransverseFieldIsing.random(6, seed=1)
    return VQMC(
        model, ham, AutoregressiveSampler(),
        SGD(model.parameters(), lr=0.05),
        comm=comm, seed=100 + rank,
    )


def _rejoin_worker(comm, rank, ckpt_dir, crash_step):
    plan = (
        FaultPlan([FaultEvent(kind="crash", rank=2, step=crash_step)])
        if crash_step is not None
        else None
    )
    retry = RetryPolicy(**_RETRY)
    cfg = ElasticConfig(heartbeat_timeout=1.0, consensus_timeout=1.0)
    inner = FaultyCommunicator(comm, plan) if plan is not None else comm
    rcomm = ResilientCommunicator(inner, retry)
    vqmc = _make_vqmc(rcomm, rank)
    callbacks = [FaultInjectionCallback(plan, rank)] if plan is not None else []
    supervisor = TrainingSupervisor(
        vqmc,
        checkpoint_dir=ckpt_dir,
        checkpoint_every=2,
        callbacks=callbacks,
        elastic=cfg,
        accept_joins=True,
        ledger=BatchLedger(REJOIN_BATCH, comm.size),
    )
    report = supervisor.run(REJOIN_ITER)
    if not report.crashed:
        return report

    # restart: fresh resilient stack, fresh trainer (comm=None so the
    # constructor does not broadcast against the shrunken world), rejoin.
    rcomm2 = ResilientCommunicator(comm, retry)
    vqmc2 = _make_vqmc(None, rank)
    supervisor2 = TrainingSupervisor(
        vqmc2,
        checkpoint_dir=ckpt_dir,
        checkpoint_every=2,
        elastic=cfg,
        accept_joins=True,
        ledger=BatchLedger(REJOIN_BATCH, comm.size),
        root=rcomm2,
    )
    return supervisor2.rejoin(REJOIN_ITER, announce_timeout=0.1,
                              max_announces=200)


def _measure_rejoin(tmp_root: pathlib.Path) -> dict:
    t0 = time.perf_counter()
    run_threaded(
        _rejoin_worker, REJOIN_WORLD,
        args=(str(tmp_root / "clean"), None), timeout=300.0,
    )
    clean_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    reports = run_threaded(
        _rejoin_worker, REJOIN_WORLD,
        args=(str(tmp_root / "chaos"), REJOIN_CRASH), timeout=300.0,
    )
    faulty_s = time.perf_counter() - t0

    joiner = reports[2]
    survivors = reports[:2]
    assert joiner.rejoined, "the crashed rank must re-enter the world"
    assert joiner.completed_steps == REJOIN_ITER
    assert all(r.completed_steps == REJOIN_ITER for r in survivors)
    assert all(r.final_group == [0, 1, 2] for r in reports)
    return {
        "world_size": REJOIN_WORLD,
        "iterations": REJOIN_ITER,
        "crash_step": REJOIN_CRASH,
        "clean_run_s": clean_s,
        "faulty_run_s": faulty_s,
        "shrink_restore_s": max(r.recovery_seconds for r in survivors),
        "grow_handshake_s": joiner.joins[0]["seconds"],
        "rejoin_overhead_pct": (faulty_s - clean_s) / clean_s * 100.0,
    }


# -- measurement 2: straggler rebalancing --------------------------------------

STRAGGLER_WORLD = 4
STRAGGLER_ITER = 16
STRAGGLER_BATCH = 64
# Per-sample sleep on every rank. It must *dominate* the GIL-serialised
# Python compute (~2 ms/sample with four threaded ranks) or the uniform
# compute contention dilutes the injected skew below the ledger's dead-band.
BASE_SLEEP_S = 0.010
STRAGGLER_FACTOR = 2.0  # rank 3 sleeps this much longer per sample


class _SlowSampler(AutoregressiveSampler):
    """Exact sampler with a deterministic per-sample delay.

    The sleep stands in for slow hardware: it scales with the assigned
    batch (so shifting samples away genuinely shortens the rank's step) and
    releases the GIL (so threaded ranks overlap as real ranks would).
    """

    def __init__(self, per_sample_s: float):
        super().__init__()
        self._per_sample_s = per_sample_s

    def sample(self, model, batch_size, rng):
        time.sleep(self._per_sample_s * batch_size)
        return super().sample(model, batch_size, rng)


def _builder_with_straggler(straggler_factor):
    def build(rank):
        model = MADE(6, hidden=8, rng=np.random.default_rng(3))
        ham = TransverseFieldIsing.random(6, seed=1)
        factor = straggler_factor if rank == STRAGGLER_WORLD - 1 else 1.0
        sampler = _SlowSampler(BASE_SLEEP_S * factor)
        return model, ham, sampler, SGD(model.parameters(), lr=0.05)

    return build


def _timed_elastic_run(tmp_root, name, straggler_factor, ledger_opts):
    t0 = time.perf_counter()
    results = run_elastic_data_parallel(
        _builder_with_straggler(straggler_factor),
        STRAGGLER_WORLD,
        STRAGGLER_ITER,
        STRAGGLER_BATCH,
        checkpoint_dir=tmp_root / name,
        seed=7,
        backend="threads",
        timeout=300.0,
        ledger_opts=ledger_opts,
        retry=RetryPolicy(**_RETRY),
    )
    wall = time.perf_counter() - t0
    reports = [r[0] for r in results]
    assert all(rep.completed_steps == STRAGGLER_ITER for rep in reports)
    return wall / STRAGGLER_ITER, reports[0].rebalances


def _measure_straggler(tmp_root: pathlib.Path) -> dict:
    # Rebalancing off = a hysteresis dead-band no finite skew can cross.
    frozen = dict(hysteresis=1e9)
    baseline_s, _ = _timed_elastic_run(tmp_root, "baseline", 1.0, frozen)
    static_s, static_rb = _timed_elastic_run(
        tmp_root, "static", STRAGGLER_FACTOR, frozen
    )
    rebal_s, rebalances = _timed_elastic_run(
        tmp_root, "rebalanced", STRAGGLER_FACTOR, None
    )

    assert static_rb == 0, "frozen ledger must not rebalance"
    assert rebalances > 0, "live ledger never rebalanced under a 2x straggler"
    lost = static_s - baseline_s
    assert lost > 0, "straggler injection did not slow the static run"
    recovered = (static_s - rebal_s) / lost
    return {
        "world_size": STRAGGLER_WORLD,
        "iterations": STRAGGLER_ITER,
        "global_batch": STRAGGLER_BATCH,
        "straggler_rank": STRAGGLER_WORLD - 1,
        "straggler_factor": STRAGGLER_FACTOR,
        "base_sleep_per_sample_s": BASE_SLEEP_S,
        "baseline_step_s": baseline_s,
        "static_step_s": static_s,
        "rebalanced_step_s": rebal_s,
        "rebalances": rebalances,
        "recovered_fraction": recovered,
    }


# -- pytest-benchmark entry point ----------------------------------------------


def bench_straggler_rebalancing(benchmark):
    with tempfile.TemporaryDirectory() as tmp:
        benchmark(lambda: _measure_straggler(pathlib.Path(tmp)))


def main() -> None:
    parse_args(__doc__.splitlines()[0])

    with tempfile.TemporaryDirectory() as tmp:
        rejoin = _measure_rejoin(pathlib.Path(tmp))
    print(format_table(
        ["clean run (s)", "faulty run (s)", "shrink+restore (s)",
         "grow handshake (s)", "overhead (%)"],
        [[rejoin["clean_run_s"], rejoin["faulty_run_s"],
          rejoin["shrink_restore_s"], rejoin["grow_handshake_s"],
          rejoin["rejoin_overhead_pct"]]],
        title=(f"Kill-then-rejoin: rank 2 dies at step {REJOIN_CRASH} of "
               f"{REJOIN_ITER}, restarts, rejoins (world {REJOIN_WORLD})"),
    ))

    with tempfile.TemporaryDirectory() as tmp:
        straggler = _measure_straggler(pathlib.Path(tmp))
    print()
    print(format_table(
        ["run", "step time (ms)", "rebalances"],
        [["no straggler (even split)", straggler["baseline_step_s"] * 1e3, 0],
         ["2x straggler, static split", straggler["static_step_s"] * 1e3, 0],
         ["2x straggler, BatchLedger", straggler["rebalanced_step_s"] * 1e3,
          straggler["rebalances"]]],
        title=(f"Straggler rebalancing: rank {straggler['straggler_rank']} "
               f"2x slow, world {STRAGGLER_WORLD}, "
               f"global batch {STRAGGLER_BATCH}"),
    ))
    recovered = straggler["recovered_fraction"]
    print(f"\nStep time recovered by rebalancing: {recovered:.1%} "
          f"(target: >= 50%)")
    assert recovered >= 0.5, (
        f"rebalancing recovered only {recovered:.1%} of straggler-lost step "
        f"time (acceptance floor is 50%)"
    )

    emit_json("elastic_scaling", {
        "rejoin": rejoin,
        "straggler": straggler,
        "recovered_fraction": recovered,
        "meets_target": recovered >= 0.5,
    })


if __name__ == "__main__":
    main()
