"""Ablation — gradient signal-to-noise: the mechanism behind Figure 4.

Figure 4 shows the converged energy improving with effective batch size,
saturating earlier for smaller problems. The mechanism: the stochastic
gradient's noise scales as tr(Σ)/B, so returns diminish once B passes the
*critical batch size* ``B_crit = tr(Σ)/‖g‖²``. This harness measures B_crit
across problem sizes and training stages:

- B_crit grows with n → larger problems keep benefiting from more
  GPUs/effective batch (Fig. 4's non-saturating large-n curves);
- B_crit grows as training converges (the signal ‖g‖ shrinks faster than
  the noise) → late-stage training is where big batches pay off.
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import format_table, parse_args  # noqa: E402

from repro.core import VQMC, gradient_noise  # noqa: E402
from repro.hamiltonians import TransverseFieldIsing  # noqa: E402
from repro.models import MADE  # noqa: E402
from repro.optim import Adam  # noqa: E402
from repro.samplers import AutoregressiveSampler  # noqa: E402


def bench_gradient_noise_eval(benchmark):
    ham = TransverseFieldIsing.random(20, seed=1)
    model = MADE(20, rng=np.random.default_rng(0))
    x = model.sample(256, np.random.default_rng(1))
    benchmark(lambda: gradient_noise(model, ham, x))


def main() -> None:
    args = parse_args(__doc__.splitlines()[0])
    dims = (10, 20, 40) if not args.paper else (20, 50, 100, 200)
    probe_batch = 4096

    rows = []
    for n in dims:
        ham = TransverseFieldIsing.random(n, seed=n)
        model = MADE(n, rng=np.random.default_rng(0))
        vqmc = VQMC(model, ham, AutoregressiveSampler(),
                    Adam(model.parameters()), seed=1)
        rng = np.random.default_rng(2)

        stages = {}
        x = model.sample(probe_batch, rng)
        stages["init"] = gradient_noise(model, ham, x)
        vqmc.run(40, batch_size=256)
        x = model.sample(probe_batch, rng)
        stages["mid (40 it)"] = gradient_noise(model, ham, x)
        vqmc.run(160, batch_size=256)
        x = model.sample(probe_batch, rng)
        stages["late (200 it)"] = gradient_noise(model, ham, x)

        for stage, s in stages.items():
            rows.append([
                n, stage, f"{np.linalg.norm(s.mean):.3g}",
                f"{s.variance.sum():.3g}", f"{s.critical_batch:.0f}",
            ])
    print(format_table(
        ["n", "stage", "‖grad‖", "tr Σ", "B_crit"],
        rows,
        title=f"Gradient SNR ablation (probe batch {probe_batch})",
    ))
    print(
        "\nExpected shape: B_crit grows with n at initialisation, and rises\n"
        "sharply once a run approaches convergence (‖grad‖ collapses faster\n"
        "than the noise — visible at the sizes the iteration budget actually\n"
        "converges). Together these produce Figure 4's 'saturates for small\n"
        "problems, keeps improving for large ones'."
    )


if __name__ == "__main__":
    main()
