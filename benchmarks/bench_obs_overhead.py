"""Observability overhead — what does tracing a training step cost?

The :mod:`repro.obs` tracer wraps every ``VQMC.step`` phase and every
collective in a span. Observability only earns its keep if it is cheap
enough to leave on: the acceptance targets are **<= 5 %** step overhead
with tracing *enabled* and **<= 0.5 %** with a tracer constructed but
*disabled* (the production default — ``Tracer(enabled=False)`` and
``tracer=None`` share the identical no-op path, so disabled cost is the
cost of a few attribute lookups per phase).

Protocol mirrors ``bench_sanitizer_overhead.py``: four identically-seeded
training runs (no tracer / disabled tracer / enabled tracer / fully
instrumented) advance in lock-step, each trial times a block of steps in
all arms back-to-back, and the reported overhead is the median of
per-trial paired ratios — robust to scheduler noise and to the
(identical) parameter trajectory drifting over training.

The *instrumented* arm is the full leave-it-on observability stack from
the flight-recorder issue: enabled tracer + ``Metrics`` registry +
``FlightRecorder`` ring buffer + ``HealthMonitor`` rule engine fed every
step. Its acceptance target is the same <= 5 % as the bare tracer — the
recorder and health rules must be cheap enough to fly on every rank.

A micro-benchmark of the bare span enter/exit cost (ns per span, enabled
vs disabled) is included so regressions in the tracer itself are visible
before they are diluted by step numerics.

Emits ``BENCH_obs_overhead.json`` (via ``_harness.emit_json``).
"""

from __future__ import annotations

import pathlib
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import emit_json, format_table, parse_args  # noqa: E402

from repro.core import VQMC, VQMCConfig  # noqa: E402
from repro.hamiltonians import TransverseFieldIsing  # noqa: E402
from repro.models import MADE  # noqa: E402
from repro.obs import FlightRecorder, HealthMonitor, Metrics, Tracer  # noqa: E402
from repro.optim import Adam  # noqa: E402
from repro.samplers import AutoregressiveSampler  # noqa: E402

N_SITES = 10
HIDDEN = 24
BATCH = 128

#: acceptance targets from the observability issue
TARGET_ENABLED_PCT = 5.0
TARGET_DISABLED_PCT = 0.5


def _make_vqmc(tracer: Tracer | None, metrics: Metrics | None = None) -> VQMC:
    """One arm of the paired run; all arms share seeds, so the parameter
    trajectories (and therefore per-step numeric cost) are identical."""
    model = MADE(N_SITES, hidden=HIDDEN, rng=np.random.default_rng(3))
    return VQMC(
        model,
        TransverseFieldIsing.random(N_SITES, seed=99),
        AutoregressiveSampler(),
        Adam(model.parameters(), lr=0.01),
        seed=7,
        config=VQMCConfig(gradient_mode="per_sample"),
        tracer=tracer,
        metrics=metrics,
    )


class _Arm:
    """One paired arm: a VQMC plus whatever observers ride its steps."""

    def __init__(self, vqmc: VQMC, recorder: FlightRecorder | None = None):
        self.vqmc = vqmc
        self.recorder = recorder
        self.steps_done = 0
        if recorder is not None:
            recorder.on_run_begin(vqmc)

    def time_steps(self, steps: int) -> float:
        t0 = time.perf_counter()
        for _ in range(steps):
            result = self.vqmc.step(batch_size=BATCH)
            self.steps_done += 1
            if self.recorder is not None:
                self.recorder.on_step(self.steps_done, result)
        return time.perf_counter() - t0


def _make_instrumented() -> _Arm:
    """The full leave-it-on stack: tracer + metrics + ring buffer + rules."""
    vqmc = _make_vqmc(Tracer(enabled=True), metrics=Metrics())
    recorder = FlightRecorder(
        tempfile.mkdtemp(prefix="bench_obs_flight_"),
        capacity=64,
        rank=0,
        health=HealthMonitor(),
    )
    return _Arm(vqmc, recorder)


def measure_step_overhead(steps: int = 25, trials: int = 24) -> dict:
    arms = {
        "baseline": _Arm(_make_vqmc(tracer=None)),
        "disabled": _Arm(_make_vqmc(Tracer(enabled=False))),
        "enabled": _Arm(_make_vqmc(Tracer(enabled=True))),
        "instrumented": _make_instrumented(),
    }
    for arm in arms.values():  # warm-up: allocators, fast-path caches
        arm.time_steps(1)
    times = {name: [] for name in arms}
    order = list(arms)
    for trial in range(trials):
        # Rotate arm order per trial so slow clock-frequency / thermal drift
        # within a trial biases each arm equally across the run; the 0.5 %
        # disabled target is below naive back-to-back noise.
        k = trial % len(order)
        for name in order[k:] + order[:k]:
            times[name].append(arms[name].time_steps(steps))
    base = np.array(times["baseline"])
    result = {
        "steps_per_trial": steps,
        "trials": trials,
        "batch": BATCH,
        "n_sites": N_SITES,
        "baseline_ms_per_step": float(np.median(base)) / steps * 1e3,
    }
    for name in ("disabled", "enabled", "instrumented"):
        arm = np.array(times[name])
        result[f"{name}_ms_per_step"] = float(np.median(arm)) / steps * 1e3
        result[f"{name}_overhead_pct"] = float(np.median(arm / base - 1.0) * 100.0)
    enabled_tracer = arms["enabled"].vqmc.tracer
    result["enabled_span_count"] = len(enabled_tracer.events)
    result["enabled_dropped"] = enabled_tracer.dropped
    instrumented = arms["instrumented"]
    result["instrumented_frames_buffered"] = len(instrumented.recorder.frames)
    result["instrumented_health_verdict"] = instrumented.recorder.health.verdict
    return result


def measure_span_cost(reps: int = 50_000) -> dict:
    """Nanoseconds per bare span enter/exit, enabled vs disabled."""
    out = {}
    for name, tracer in (
        ("enabled", Tracer(enabled=True, max_events=2 * reps)),
        ("disabled", Tracer(enabled=False)),
    ):
        with tracer.span("warmup"):
            pass
        t0 = time.perf_counter_ns()
        for _ in range(reps):
            with tracer.span("bench.span"):
                pass
        out[f"{name}_ns_per_span"] = (time.perf_counter_ns() - t0) / reps
    return out


# -- pytest-benchmark entry points ---------------------------------------------


def bench_traced_step(benchmark):
    vqmc = _make_vqmc(Tracer(enabled=True))
    vqmc.step(batch_size=BATCH)
    benchmark(lambda: vqmc.step(batch_size=BATCH))


def bench_span_enter_exit(benchmark):
    tracer = Tracer(enabled=True, max_events=10_000_000)

    def body():
        with tracer.span("bench.span"):
            pass

    benchmark(body)


def main() -> None:
    parse_args(__doc__.splitlines()[0])
    step = measure_step_overhead()
    span = measure_span_cost()

    rows = [
        ["baseline (no tracer)", step["baseline_ms_per_step"], "-", "-"],
        [
            "Tracer(enabled=False)",
            step["disabled_ms_per_step"],
            step["disabled_overhead_pct"],
            f"<= {TARGET_DISABLED_PCT}",
        ],
        [
            "Tracer(enabled=True)",
            step["enabled_ms_per_step"],
            step["enabled_overhead_pct"],
            f"<= {TARGET_ENABLED_PCT}",
        ],
        [
            "+ metrics + flight + health",
            step["instrumented_ms_per_step"],
            step["instrumented_overhead_pct"],
            f"<= {TARGET_ENABLED_PCT}",
        ],
    ]
    print(format_table(
        ["arm", "ms / step", "overhead (%)", "target (%)"],
        rows,
        title=(
            f"tracing overhead on VQMC.step (MADE({N_SITES}, hidden={HIDDEN}), "
            f"batch={BATCH}, paired trials)"
        ),
    ))
    print(
        f"\nbare span enter/exit: enabled {span['enabled_ns_per_span']:.0f} ns, "
        f"disabled {span['disabled_ns_per_span']:.0f} ns"
    )
    ok_enabled = step["enabled_overhead_pct"] <= TARGET_ENABLED_PCT
    ok_disabled = step["disabled_overhead_pct"] <= TARGET_DISABLED_PCT
    ok_instrumented = step["instrumented_overhead_pct"] <= TARGET_ENABLED_PCT
    print(
        f"enabled: {step['enabled_overhead_pct']:+.2f}% "
        f"({'PASS' if ok_enabled else 'FAIL'} vs {TARGET_ENABLED_PCT}%)  |  "
        f"disabled: {step['disabled_overhead_pct']:+.2f}% "
        f"({'PASS' if ok_disabled else 'FAIL'} vs {TARGET_DISABLED_PCT}%)  |  "
        f"instrumented: {step['instrumented_overhead_pct']:+.2f}% "
        f"({'PASS' if ok_instrumented else 'FAIL'} vs {TARGET_ENABLED_PCT}%)"
    )

    emit_json("obs_overhead", {
        "step": step,
        "span_cost": span,
        "targets": {
            "enabled_pct": TARGET_ENABLED_PCT,
            "disabled_pct": TARGET_DISABLED_PCT,
            "instrumented_pct": TARGET_ENABLED_PCT,
        },
        "pass": bool(ok_enabled and ok_disabled and ok_instrumented),
    })


if __name__ == "__main__":
    main()
