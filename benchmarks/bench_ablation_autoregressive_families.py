"""Ablation — autoregressive families: MADE (masked) vs RNN (recurrent).

The paper's §3 situates its MADE choice against the recurrent wavefunctions
of Hibat-Allah et al. [18]. Both are normalised and exactly sampled; they
differ in parameter scaling (MADE: O(hn) grows with the problem; RNN:
O(h²) constant) and in how information propagates (direct masked links vs
a recurrent bottleneck). This bench compares converged energy, parameter
count and time on TIM instances, plus the mean-field ansatz as the floor.
"""

from __future__ import annotations

import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import format_table, parse_args  # noqa: E402

from repro.core import VQMC  # noqa: E402
from repro.exact import ground_state  # noqa: E402
from repro.hamiltonians import TransverseFieldIsing  # noqa: E402
from repro.models import MADE, MeanField, RNNWaveFunction  # noqa: E402
from repro.optim import SGD, StochasticReconfiguration  # noqa: E402
from repro.samplers import AutoregressiveSampler  # noqa: E402


def _train(model, ham, iterations, batch, seed, lr=0.05) -> tuple[float, float]:
    vqmc = VQMC(
        model, ham, AutoregressiveSampler(),
        SGD(model.parameters(), lr=lr),
        sr=StochasticReconfiguration(), seed=seed,
    )
    t0 = time.perf_counter()
    vqmc.run(iterations, batch_size=batch)
    wall = time.perf_counter() - t0
    return vqmc.evaluate(batch).mean, wall


def bench_rnn_step(benchmark):
    ham = TransverseFieldIsing.random(20, seed=1)
    model = RNNWaveFunction(20, hidden=16, rng=np.random.default_rng(0))
    vqmc = VQMC(model, ham, AutoregressiveSampler(),
                SGD(model.parameters(), lr=0.05),
                sr=StochasticReconfiguration(), seed=2)
    benchmark(lambda: vqmc.step(batch_size=64))


def main() -> None:
    args = parse_args(__doc__.splitlines()[0])
    iterations = args.iters or 150
    batch = 256
    dims = (8, 12) if not args.paper else (8, 12, 16)

    rows = []
    for n in dims:
        ham = TransverseFieldIsing.random(n, seed=n)
        exact = ground_state(ham).energy if n <= 16 else None
        # The RNN shares weights across all n sites, so a natural-gradient
        # step moves every conditional at once — it needs a smaller lr than
        # the masked families to stay stable.
        for label, factory, lr in (
            ("MeanField",
             lambda n=n: MeanField(n, rng=np.random.default_rng(0)), 0.05),
            ("MADE h=5(log n)^2",
             lambda n=n: MADE(n, rng=np.random.default_rng(0)), 0.05),
            ("RNN h=32",
             lambda n=n: RNNWaveFunction(n, hidden=32,
                                         rng=np.random.default_rng(0)), 0.02),
        ):
            model = factory()
            energy, wall = _train(model, ham, iterations, batch, seed=1, lr=lr)
            rel = (energy - exact) / abs(exact) if exact is not None else float("nan")
            rows.append([n, label, model.num_parameters(), energy, f"{rel:.2%}", wall])
    print(format_table(
        ["n", "ansatz", "params", "energy", "rel. error", "time (s)"],
        rows,
        title=f"Autoregressive-family ablation (TIM, SGD+SR, {iterations} iters)",
        precision=3,
    ))
    print(
        "\nExpected shape: both autoregressive families land near the exact\n"
        "energy with MADE slightly ahead at small n (direct connections);\n"
        "the mean-field floor shows what the correlations are worth. The\n"
        "RNN's parameter count is n-independent — its advantage at the\n"
        "paper's 10K-dimension scale."
    )


if __name__ == "__main__":
    main()
