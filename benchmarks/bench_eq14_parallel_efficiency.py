"""Eq. 14 / Eq. 15 — closed-form parallel efficiency, MCMC vs AUTO.

The paper's §4 analysis: MCMC speedup over L units is affine, a + bL, with
slope b = nj/(k + (n−1)j + 1) → 0 as burn-in k grows; AUTO efficiency is
≈ L whenever n or mbs is large. This harness prints both curves and a
measured sanity check: the per-rank forward-pass count of our actual
samplers matches the formula's accounting.
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import format_table, parse_args  # noqa: E402

from repro.cluster import auto_parallel_efficiency, mcmc_parallel_efficiency  # noqa: E402
from repro.cluster.efficiency import mcmc_slope  # noqa: E402


def bench_efficiency_formulas(benchmark):
    benchmark(
        lambda: [
            mcmc_parallel_efficiency(L, 64, 400) for L in range(1, 49)
        ]
        + [auto_parallel_efficiency(L, 1000, 170, 512) for L in range(1, 49)]
    )


def main() -> None:
    parse_args(__doc__.splitlines()[0])
    Ls = (1, 2, 4, 8, 16, 24, 48)
    samples_per_unit = 64

    rows = []
    for k in (0, 100, 400, 1600, 10**4):
        rows.append(
            [f"MCMC k={k}"]
            + [mcmc_parallel_efficiency(L, samples_per_unit, k) for L in Ls]
            + [mcmc_slope(samples_per_unit, k)]
        )
    rows.append(
        ["AUTO (n=1000)"]
        + [auto_parallel_efficiency(L, 1000, 170, 512) for L in Ls]
        + [1.0]
    )
    print(format_table(
        ["scheme"] + [f"L={L}" for L in Ls] + ["slope b"],
        rows,
        title=f"Eq. 14/15: speedup over 1 unit ({samples_per_unit} samples/unit)",
    ))

    # Sanity check against the real samplers' bookkeeping.
    from repro.models import MADE, RBM
    from repro.samplers import AutoregressiveSampler, MetropolisSampler

    n, bs = 30, 64
    rng = np.random.default_rng(0)
    made = MADE(n, rng=rng)
    auto = AutoregressiveSampler()
    auto.sample(made, bs, rng)
    rbm = RBM(n, rng=rng)
    mcmc = MetropolisSampler(n_chains=2)
    mcmc.sample(rbm, bs, rng)
    print(
        f"\nMeasured forward passes (n={n}, bs={bs}): "
        f"AUTO = {auto.last_stats.forward_passes} (formula: n = {n}), "
        f"MCMC = {mcmc.last_stats.forward_passes} "
        f"(formula: 1 + k + bs/c = {1 + 3*n+100 + bs//2})"
    )
    print(
        "\nExpected shape: MCMC speedup stays affine with slope shrinking as\n"
        "burn-in k grows (b → 0); AUTO tracks the ideal speedup L."
    )


if __name__ == "__main__":
    main()
