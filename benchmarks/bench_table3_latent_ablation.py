"""Table 3 — ablation on the latent size h (cut quality and training time).

Paper's observations:
1. best cuts come from a moderate h (between 3(log n)² and n); too small
   underfits, too large (n²) hurts;
2. on GPU, time barely grows with h until the arithmetic saturates the
   device — MADE "falls off" only at h = n² scale.

Reduced preset: Max-Cut n ∈ {16, 30}, h ∈ {(log n)², 3(log n)², 5(log n)²,
n, 5n}; ``--paper`` adds n² and the paper's sizes.
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from _harness import format_table, mean_std, parse_args, train_once  # noqa: E402

from repro.hamiltonians import MaxCut  # noqa: E402


def latent_grid(n: int, paper: bool) -> dict[str, int]:
    log2 = np.log(n) ** 2
    grid = {
        "(log n)^2": max(1, round(log2)),
        "3(log n)^2": max(1, round(3 * log2)),
        "5(log n)^2": max(1, round(5 * log2)),
        "n": n,
        "5n": 5 * n,
    }
    if paper:
        grid["n^2"] = n * n
    return grid


def bench_made_forward_small_latent(benchmark):
    from repro.models import MADE

    model = MADE(50, hidden=15, rng=np.random.default_rng(0))
    x = (np.random.default_rng(1).random((256, 50)) < 0.5).astype(float)
    benchmark(lambda: model.log_prob(x))


def bench_made_forward_large_latent(benchmark):
    from repro.models import MADE

    model = MADE(50, hidden=250, rng=np.random.default_rng(0))
    x = (np.random.default_rng(1).random((256, 50)) < 0.5).astype(float)
    benchmark(lambda: model.log_prob(x))


def main() -> None:
    args = parse_args(__doc__.splitlines()[0])
    iterations = args.iters or (300 if args.paper else 60)
    dims = (50, 100, 200, 500) if args.paper else (16, 30)
    batch = 1024 if args.paper else 256
    seeds = range(args.seeds or (5 if args.paper else 2))

    for arch in ("made", "rbm"):
        cut_rows, time_rows = [], []
        for n in dims:
            ham = MaxCut.random(n, seed=n)
            grid = latent_grid(n, args.paper)
            cut_row, time_row = [n], [n]
            for label, h in grid.items():
                cuts, times = [], []
                for s in seeds:
                    out = train_once(
                        ham, arch, "auto" if arch == "made" else "mcmc",
                        "adam", iterations, batch, seed=s, hidden=h,
                    )
                    cuts.append(out.best_cut)
                    times.append(out.train_seconds)
                cut_row.append(mean_std(cuts))
                time_row.append(float(np.mean(times)))
            cut_rows.append(cut_row)
            time_rows.append(time_row)
        headers = ["n"] + list(latent_grid(dims[0], args.paper))
        print(format_table(
            headers, cut_rows,
            title=f"Table 3 — {arch.upper()}: cut vs latent size", precision=1,
        ))
        print(format_table(
            headers, time_rows,
            title=f"Table 3 — {arch.upper()}: training time (s) vs latent size",
        ))
        print()


if __name__ == "__main__":
    main()
