"""Manifold geometry: projections, retractions, gradient conversions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.manifolds import ManifoldProblem, ObliqueManifold, SphereManifold


@pytest.fixture
def oblique():
    return ObliqueManifold(4, 6)


class TestObliqueGeometry:
    def test_random_point_on_manifold(self, oblique, rng):
        v = oblique.random_point(rng)
        oblique.check_point(v)

    def test_projection_is_tangent(self, oblique, rng):
        v = oblique.random_point(rng)
        xi = oblique.proj(v, rng.normal(size=v.shape))
        # Tangent: each column of ξ orthogonal to the matching column of v.
        dots = (v * xi).sum(axis=0)
        assert np.allclose(dots, 0.0, atol=1e-12)

    def test_projection_idempotent(self, oblique, rng):
        v = oblique.random_point(rng)
        u = rng.normal(size=v.shape)
        p1 = oblique.proj(v, u)
        assert np.allclose(oblique.proj(v, p1), p1, atol=1e-12)

    def test_retraction_stays_on_manifold(self, oblique, rng):
        v = oblique.random_point(rng)
        xi = oblique.random_tangent(v, rng)
        oblique.check_point(oblique.retract(v, 0.7 * xi))

    def test_retraction_first_order(self, oblique, rng):
        """R_v(tξ) = v + tξ + O(t²)."""
        v = oblique.random_point(rng)
        xi = oblique.random_tangent(v, rng)
        for t in (1e-3, 1e-4):
            err = np.linalg.norm(oblique.retract(v, t * xi) - (v + t * xi))
            assert err < 5 * t**2

    def test_dim(self, oblique):
        assert oblique.dim == 3 * 6

    def test_check_point_rejects_bad(self, oblique, rng):
        with pytest.raises(ValueError):
            oblique.check_point(np.ones((4, 6)))
        with pytest.raises(ValueError):
            oblique.check_point(np.ones((2, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            ObliqueManifold(0, 3)


class TestSphere:
    def test_vector_shaped(self, rng):
        s = SphereManifold(5)
        v = s.random_point(rng)
        assert v.shape == (5,)
        assert np.linalg.norm(v) == pytest.approx(1.0)
        xi = s.random_tangent(v, rng)
        assert xi.shape == (5,)
        assert v @ xi == pytest.approx(0.0, abs=1e-12)
        w = s.retract(v, 0.3 * xi)
        assert np.linalg.norm(w) == pytest.approx(1.0)


class TestProblem:
    def test_gradient_check_passes_for_correct_gradient(self, rng):
        mani = SphereManifold(6)
        a = rng.normal(size=(6, 6))
        a = (a + a.T) / 2

        prob = ManifoldProblem(
            mani,
            cost=lambda v: float(v @ a @ v),
            egrad=lambda v: 2.0 * a @ v,
            ehess=lambda v, xi: 2.0 * a @ xi,
        )
        v = mani.random_point(rng)
        assert prob.check_gradient(v, rng) < 1e-5

    def test_gradient_check_catches_wrong_gradient(self, rng):
        mani = SphereManifold(6)
        a = np.diag(np.arange(1.0, 7.0))
        prob = ManifoldProblem(
            mani,
            cost=lambda v: float(v @ a @ v),
            egrad=lambda v: 3.1 * a @ v,  # wrong scale
        )
        v = mani.random_point(rng)
        assert prob.check_gradient(v, rng) > 1e-2

    def test_finite_difference_hessian_close_to_exact(self, rng):
        mani = SphereManifold(5)
        a = rng.normal(size=(5, 5))
        a = (a + a.T) / 2
        exact = ManifoldProblem(
            mani,
            cost=lambda v: float(v @ a @ v),
            egrad=lambda v: 2.0 * a @ v,
            ehess=lambda v, xi: 2.0 * a @ xi,
        )
        approx = ManifoldProblem(
            mani,
            cost=lambda v: float(v @ a @ v),
            egrad=lambda v: 2.0 * a @ v,
        )
        v = mani.random_point(rng)
        xi = mani.random_tangent(v, rng)
        assert np.allclose(exact.rhess(v, xi), approx.rhess(v, xi), atol=1e-4)
