"""Riemannian solvers on problems with known optima.

The canonical benchmark: minimising the Rayleigh quotient ``vᵀAv`` on the
sphere gives the minimal eigenvalue of A — checkable against numpy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.manifolds import (
    ManifoldProblem,
    ObliqueManifold,
    RiemannianConjugateGradient,
    RiemannianGradientDescent,
    RiemannianTrustRegion,
    SphereManifold,
)

SOLVERS = [
    RiemannianGradientDescent(max_iter=2000, grad_tol=1e-8),
    RiemannianConjugateGradient(max_iter=2000, grad_tol=1e-8),
    RiemannianTrustRegion(max_iter=200, grad_tol=1e-8),
]


def rayleigh_problem(a: np.ndarray) -> ManifoldProblem:
    return ManifoldProblem(
        SphereManifold(a.shape[0]),
        cost=lambda v: float(v @ a @ v),
        egrad=lambda v: 2.0 * a @ v,
        ehess=lambda v, xi: 2.0 * a @ xi,
    )


@pytest.fixture
def sym_matrix(rng):
    a = rng.normal(size=(12, 12))
    return (a + a.T) / 2


class TestRayleighQuotient:
    @pytest.mark.parametrize("solver_idx", range(len(SOLVERS)))
    def test_finds_minimal_eigenvalue(self, solver_idx, sym_matrix, rng):
        solver = SOLVERS[solver_idx]
        res = solver.solve(rayleigh_problem(sym_matrix), rng=rng)
        lam_min = np.linalg.eigvalsh(sym_matrix)[0]
        assert res.cost == pytest.approx(lam_min, abs=1e-5)

    def test_trust_region_converges_quadratically_fast(self, sym_matrix, rng):
        res = RiemannianTrustRegion(max_iter=100, grad_tol=1e-10).solve(
            rayleigh_problem(sym_matrix), rng=rng
        )
        assert res.converged
        assert res.iterations < 60

    def test_solution_is_unit_eigenvector(self, sym_matrix, rng):
        res = RiemannianTrustRegion(grad_tol=1e-10).solve(
            rayleigh_problem(sym_matrix), rng=rng
        )
        v = res.point
        assert np.linalg.norm(v) == pytest.approx(1.0)
        assert np.allclose(sym_matrix @ v, res.cost * v, atol=1e-5)


class TestObliqueProblems:
    def test_decoupled_columns_each_find_min_eigvec(self, rng):
        """f(V) = Σ_i v_iᵀ A v_i on OB(p, n) decouples into n sphere problems."""
        p, n = 5, 3
        a = rng.normal(size=(p, p))
        a = (a + a.T) / 2
        mani = ObliqueManifold(p, n)
        prob = ManifoldProblem(
            mani,
            cost=lambda v: float(np.sum(v * (a @ v))),
            egrad=lambda v: 2.0 * a @ v,
            ehess=lambda v, xi: 2.0 * a @ xi,
        )
        res = RiemannianTrustRegion(grad_tol=1e-9).solve(prob, rng=rng)
        lam_min = np.linalg.eigvalsh(a)[0]
        assert res.cost == pytest.approx(n * lam_min, abs=1e-5)

    def test_x0_overrides_random_start(self, rng):
        mani = SphereManifold(4)
        a = np.diag([1.0, 2.0, 3.0, 4.0])
        prob = rayleigh_problem(a)
        x0 = np.array([0.9, 0.1, 0.3, 0.1])
        x0 /= np.linalg.norm(x0)
        res = RiemannianGradientDescent(grad_tol=1e-9).solve(prob, x0=x0)
        assert res.cost == pytest.approx(1.0, abs=1e-6)

    def test_missing_start_raises(self, rng):
        prob = rayleigh_problem(np.eye(3))
        for solver in SOLVERS:
            with pytest.raises(ValueError):
                solver.solve(prob)


class TestResultRecord:
    def test_str(self, sym_matrix, rng):
        res = RiemannianGradientDescent(max_iter=5).solve(
            rayleigh_problem(sym_matrix), rng=rng
        )
        s = str(res)
        assert "cost=" in s and "iters" in s
