"""Hypothesis property tests for the Riemannian geometry primitives."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.manifolds import ObliqueManifold


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 6), st.integers(1, 6), st.integers(0, 10**6))
def test_projection_is_idempotent_and_tangent(p, n, seed):
    mani = ObliqueManifold(p, n)
    rng = np.random.default_rng(seed)
    v = mani.random_point(rng)
    u = rng.normal(size=(p, n))
    proj = mani.proj(v, u)
    # Tangent: columnwise orthogonal to the point.
    assert np.allclose((v * proj).sum(axis=0), 0.0, atol=1e-10)
    # Idempotent.
    assert np.allclose(mani.proj(v, proj), proj, atol=1e-12)
    # Contraction: a projection never increases the norm.
    assert np.linalg.norm(proj) <= np.linalg.norm(u) + 1e-12


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 6), st.integers(1, 6), st.integers(0, 10**6))
def test_retraction_properties(p, n, seed):
    mani = ObliqueManifold(p, n)
    rng = np.random.default_rng(seed)
    v = mani.random_point(rng)
    xi = mani.random_tangent(v, rng)
    # R_v(0) = v.
    assert np.allclose(mani.retract(v, np.zeros_like(xi)), v, atol=1e-12)
    # Stays on the manifold for any step length.
    for t in (1e-3, 0.5, 3.0):
        mani.check_point(mani.retract(v, t * xi))


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 6), st.integers(1, 6), st.integers(0, 10**6))
def test_rgrad_is_tangent_projection_of_egrad(p, n, seed):
    mani = ObliqueManifold(p, n)
    rng = np.random.default_rng(seed)
    v = mani.random_point(rng)
    egrad = rng.normal(size=(p, n))
    rgrad = mani.egrad_to_rgrad(v, egrad)
    assert np.allclose(rgrad, mani.proj(v, egrad), atol=1e-12)
    # The removed component is purely radial.
    radial = egrad - rgrad
    for j in range(n):
        col = radial[:, j]
        if np.linalg.norm(col) > 1e-12:
            cosine = abs(col @ v[:, j]) / np.linalg.norm(col)
            assert cosine > 1.0 - 1e-9


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 5), st.integers(1, 4), st.integers(0, 10**6))
def test_random_tangent_is_unit_tangent(p, n, seed):
    mani = ObliqueManifold(p, n)
    rng = np.random.default_rng(seed)
    v = mani.random_point(rng)
    xi = mani.random_tangent(v, rng)
    assert abs(mani.norm(xi) - 1.0) < 1e-9
    assert np.allclose((v * xi).sum(axis=0), 0.0, atol=1e-10)
