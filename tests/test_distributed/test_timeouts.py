"""Recv-timeout contracts, pinned across all three backends.

The resilience layer keys its retry/escalation logic on
:class:`CommTimeoutError` and (for the thread/process backends) on the
exact shape of the timeout message, so these contracts are pinned here:

- serial: point-to-point is meaningless in a world of 1 — recv raises
  immediately (RuntimeError), it never waits.
- threads/mp: recv raises :class:`CommTimeoutError` only after the
  deadline, with the ``"rank {r}: no message from rank {s} within {t}s"``
  message; a closed pipe (dead peer) maps onto the same error type so the
  retry path treats silence and death uniformly.
"""

from __future__ import annotations

import re
import time

import numpy as np
import pytest

from repro.distributed import CommTimeoutError, SerialCommunicator, run_threaded
from repro.distributed.mp import run_processes

TIMEOUT_MSG = r"rank 1: no message from rank 0 within 0\.2s"


class TestSerial:
    def test_recv_raises_immediately(self):
        comm = SerialCommunicator()
        t0 = time.perf_counter()
        with pytest.raises(RuntimeError, match="world of size 1"):
            comm.recv(0, timeout=30.0)
        assert time.perf_counter() - t0 < 1.0  # no waiting on the timeout

    def test_send_raises_too(self):
        with pytest.raises(RuntimeError):
            SerialCommunicator().send(0, np.ones(1))


def _thread_timeout_worker(comm, rank):
    if rank == 1:
        t0 = time.perf_counter()
        try:
            comm.recv(0, timeout=0.2)
        except CommTimeoutError as exc:
            return time.perf_counter() - t0, str(exc)
        return None
    return None


class TestThreads:
    def test_recv_times_out_with_pinned_message(self):
        elapsed, msg = run_threaded(_thread_timeout_worker, 2)[1]
        assert elapsed >= 0.2
        assert re.search(TIMEOUT_MSG, msg)

    def test_timely_message_beats_deadline(self):
        def worker(comm, rank):
            if rank == 0:
                time.sleep(0.05)
                comm.send(1, np.full(1, 5.0))
                return None
            return comm.recv(0, timeout=5.0)

        assert run_threaded(worker, 2)[1][0] == 5.0


def _mp_timeout_worker(comm, rank):
    if rank == 1:
        t0 = time.perf_counter()
        try:
            comm.recv(0, timeout=0.2)
        except CommTimeoutError as exc:
            return time.perf_counter() - t0, str(exc)
        return None
    return None


def _mp_dead_peer_worker(comm, rank):
    if rank == 0:
        return None  # exits immediately; its pipes close
    time.sleep(0.3)  # let rank 0 die first
    try:
        while True:
            comm.recv(0, timeout=5.0)
    except CommTimeoutError as exc:
        return str(exc)


class TestProcesses:
    def test_recv_times_out_with_pinned_message(self):
        elapsed, msg = run_processes(_mp_timeout_worker, 2, timeout=60.0)[1]
        assert elapsed >= 0.2
        assert re.search(TIMEOUT_MSG, msg)

    def test_dead_peer_surfaces_as_timeout(self):
        """A peer that exits closes its pipes; the EOF must surface as
        CommTimeoutError (an instant timeout) so the resilient retry path
        handles death and silence uniformly."""
        msg = run_processes(_mp_dead_peer_worker, 2, timeout=60.0)[1]
        assert msg is not None
        assert "closed" in msg or "no message" in msg
