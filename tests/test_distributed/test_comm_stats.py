"""Traffic accounting — verifying the paper's communication-volume claim."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import run_threaded
from repro.distributed.comm import CommStats


class TestCounters:
    def test_ring_allreduce_volume_matches_theory(self):
        """Ring allreduce moves 2·(L−1)/L·d floats per rank: reduce-scatter
        and allgather each send (L−1) chunks of d/L."""
        d, L = 1200, 4

        def worker(comm, rank):
            comm.allreduce(np.zeros(d))
            return comm.stats.snapshot()

        for snap in run_threaded(worker, L):
            expect_bytes = 2 * (L - 1) * (d // L) * 8  # float64 chunks
            assert snap["bytes_sent"] == expect_bytes
            assert snap["bytes_received"] == expect_bytes
            assert snap["messages_sent"] == 2 * (L - 1)

    def test_stats_reset(self):
        def worker(comm, rank):
            comm.allreduce(np.zeros(16))
            comm.stats.reset()
            comm.broadcast(np.zeros(4), root=0)
            return comm.stats.snapshot()

        snaps = run_threaded(worker, 2)
        # After reset only the broadcast remains: one 4-float message each way
        # between the two ranks (root sends, leaf receives).
        assert snaps[0]["bytes_sent"] == 32
        assert snaps[1]["bytes_received"] == 32

    def test_repr(self):
        stats = CommStats()
        assert "sent=0" in repr(stats)


class TestVQMCCommVolume:
    def test_per_step_traffic_scales_with_gradient_length(self):
        """The paper's §4 claim: each data-parallel step communicates O(d)
        floats, d = 2hn + h + n — independent of the batch size."""
        from repro.core.vqmc import VQMC, VQMCConfig
        from repro.hamiltonians import TransverseFieldIsing
        from repro.models import MADE
        from repro.optim import SGD
        from repro.samplers import AutoregressiveSampler

        def traffic(n, hidden, mbs, L=2):
            def worker(comm, rank):
                model = MADE(n, hidden=hidden, rng=np.random.default_rng(0))
                ham = TransverseFieldIsing.random(n, seed=1)
                vqmc = VQMC(
                    model, ham, AutoregressiveSampler(),
                    SGD(model.parameters(), lr=0.1), comm=comm, seed=rank,
                    config=VQMCConfig(gradient_mode="per_sample"),
                )
                comm.stats.reset()  # drop the init broadcast
                vqmc.step(batch_size=mbs)
                return comm.stats.bytes_sent, model.num_parameters()

            return run_threaded(worker, L)[0]

        small_bytes, d_small = traffic(n=8, hidden=6, mbs=16)
        large_bytes, d_large = traffic(n=16, hidden=12, mbs=16)
        same_model_bigger_batch, _ = traffic(n=8, hidden=6, mbs=128)

        # Volume grows with d...
        assert large_bytes > small_bytes
        assert large_bytes / small_bytes == pytest.approx(
            d_large / d_small, rel=0.25
        )
        # ...but not with the batch size (the whole point of the scheme).
        assert same_model_bigger_batch == small_bytes
