"""gather / scatter collectives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import run_threaded
from repro.distributed.collectives import gather, scatter


class TestGather:
    @pytest.mark.parametrize("size", [2, 3, 5, 8])
    @pytest.mark.parametrize("root", [0, 1])
    def test_root_collects_in_rank_order(self, size, root):
        def worker(comm, rank):
            return gather(comm, np.array([float(rank), float(rank**2)]),
                          root=root)

        results = run_threaded(worker, size)
        for r, res in enumerate(results):
            if r == root:
                assert len(res) == size
                for src, part in enumerate(res):
                    assert np.allclose(part, [src, src**2])
            else:
                assert res is None

    def test_ragged_shapes(self):
        """Per-rank payloads of different lengths gather correctly."""

        def worker(comm, rank):
            return gather(comm, np.arange(float(rank + 1)), root=0)

        results = run_threaded(worker, 4)
        got = results[0]
        for src, part in enumerate(got):
            assert np.allclose(part, np.arange(float(src + 1)))


class TestScatter:
    @pytest.mark.parametrize("size", [2, 4, 6])
    def test_each_rank_gets_its_slice(self, size):
        payloads = [np.full(3, float(r * 10)) for r in range(size)]

        def worker(comm, rank):
            data = payloads if rank == 0 else None
            return scatter(comm, data, root=0)

        results = run_threaded(worker, size)
        for r, res in enumerate(results):
            assert np.allclose(res, r * 10)

    def test_scatter_then_gather_roundtrip(self):
        payloads = [np.array([float(r)]) for r in range(4)]

        def worker(comm, rank):
            mine = scatter(comm, payloads if rank == 0 else None, root=0)
            return gather(comm, mine * 2.0, root=0)

        results = run_threaded(worker, 4)
        for src, part in enumerate(results[0]):
            assert part[0] == 2.0 * src

    def test_root_payload_count_validated(self):
        # Validate on a world of size 1: the error is root-local, and in a
        # larger world the non-root ranks would sit in recv until timeout.
        from repro.distributed.serial import SerialCommunicator

        with pytest.raises(ValueError):
            scatter(SerialCommunicator(), [np.ones(1), np.ones(1)], root=0)
        # And the happy path on size 1:
        out = scatter(SerialCommunicator(), [np.full(2, 7.0)], root=0)
        assert np.allclose(out, 7.0)
