"""The self-healing training supervisor: policies, repeated failures, rejoin.

Three contracts pinned here:

- **Scaling policies** are pure functions of a congruent observation
  (unit-tested without any communicator).
- **Repeated failures shrink repeatedly** (the two-crashes-in-separate-
  epochs regression): a second rank dying after the world already shrank
  must trigger a second clean shrink — re-entrant recovery, not a deadlock
  or an escaped exception.
- **Crash → shrink → rejoin converges**: a seeded FaultPlan kills a rank
  mid-run, the survivors shrink and keep training, the dead rank restarts
  and re-enters via :meth:`TrainingSupervisor.rejoin`, and all ranks finish
  with *bit-identical* parameters (the lock-step invariant holds through
  the grow). The faulty run's final energy agrees with a no-fault run
  within statistical tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.vqmc import VQMC
from repro.distributed import (
    BatchLedger,
    ElasticConfig,
    FaultEvent,
    FaultInjectionCallback,
    FaultPlan,
    FaultyCommunicator,
    PolicyObservation,
    ResilientCommunicator,
    RetryPolicy,
    ScalingPolicy,
    TargetSNRPolicy,
    TargetStepTimePolicy,
    TrainingSupervisor,
    run_threaded,
)
from repro.hamiltonians import TransverseFieldIsing
from repro.models import MADE
from repro.optim import SGD
from repro.samplers import AutoregressiveSampler

pytestmark = pytest.mark.faults

_RETRY = dict(max_attempts=2, backoff_base=0.01, attempt_timeout=0.25)


def _make_vqmc(comm, rank):
    model = MADE(6, hidden=8, rng=np.random.default_rng(3))
    ham = TransverseFieldIsing.random(6, seed=1)
    return VQMC(
        model, ham, AutoregressiveSampler(),
        SGD(model.parameters(), lr=0.05),
        comm=comm, seed=100 + rank,
    )


def _obs(**kw):
    base = dict(step=10, world_size=4, step_seconds=1.0,
                energy_mean=-5.0, energy_sem=0.5, pending_joiners=1)
    base.update(kw)
    return PolicyObservation(**base)


class TestScalingPolicies:
    def test_base_policy_admits_everyone(self):
        assert ScalingPolicy().decide(_obs()) == "grow"

    def test_target_step_time(self):
        policy = TargetStepTimePolicy(target_seconds=1.0, shrink_below=0.5)
        assert policy.decide(_obs(step_seconds=2.0)) == "grow"
        assert policy.decide(_obs(step_seconds=0.7)) == "hold"
        assert policy.decide(_obs(step_seconds=0.3)) == "shrink"

    def test_target_snr(self):
        policy = TargetSNRPolicy(target_snr=20.0)
        assert policy.decide(_obs(energy_mean=-5.0, energy_sem=1.0)) == "grow"
        assert policy.decide(_obs(energy_mean=-5.0, energy_sem=0.1)) == "hold"
        # degenerate sem: no signal, keep the current world
        assert policy.decide(_obs(energy_sem=0.0)) == "hold"


# -- repeated failures ----------------------------------------------------------


def _two_crash_worker(comm, rank, ckpt_dir):
    """World 4; rank 3 dies at step 3, rank 2 dies at step 6 — two shrinks
    in separate epochs."""
    plan = FaultPlan([
        FaultEvent(kind="crash", rank=3, step=3),
        FaultEvent(kind="crash", rank=2, step=6),
    ])
    rcomm = ResilientCommunicator(
        FaultyCommunicator(comm, plan), RetryPolicy(**_RETRY)
    )
    vqmc = _make_vqmc(rcomm, rank)
    supervisor = TrainingSupervisor(
        vqmc,
        checkpoint_dir=ckpt_dir,
        checkpoint_every=2,
        callbacks=[FaultInjectionCallback(plan, rank)],
        elastic=ElasticConfig(),
    )
    report = supervisor.run(10, batch_size=16)
    return report, vqmc.model.flat_parameters()


class TestRepeatedFailures:
    def test_two_crashes_in_separate_epochs_shrink_twice(self, tmp_path):
        results = run_threaded(
            _two_crash_worker, 4, args=(str(tmp_path / "ckpt"),), timeout=120.0,
        )
        reports = [r[0] for r in results]
        assert reports[3].crashed and reports[3].completed_steps == 3
        assert reports[2].crashed and reports[2].completed_steps == 6
        for rep in reports[:2]:
            assert rep.completed_steps == 10
            assert rep.final_group == [0, 1]
            assert [r["group"] for r in rep.restores] == [[0, 1, 2], [0, 1]]
            assert rep.restores[0]["epoch"] < rep.restores[1]["epoch"]
        # the survivors stayed in lock-step through both shrinks
        assert np.array_equal(results[0][1], results[1][1])


# -- crash, shrink, rejoin -------------------------------------------------------

_REJOIN_ITER = 30
_REJOIN_CRASH = 4
_GLOBAL_BATCH = 48


def _rejoin_worker(comm, rank, ckpt_dir):
    """Every rank runs the supervised loop; the scheduled victim restarts
    itself after the injected crash and rejoins the running world."""
    plan = FaultPlan([FaultEvent(kind="crash", rank=2, step=_REJOIN_CRASH)])
    retry = RetryPolicy(**_RETRY)
    cfg = ElasticConfig(heartbeat_timeout=1.0, consensus_timeout=1.0)
    rcomm = ResilientCommunicator(FaultyCommunicator(comm, plan), retry)
    vqmc = _make_vqmc(rcomm, rank)
    supervisor = TrainingSupervisor(
        vqmc,
        checkpoint_dir=ckpt_dir,
        checkpoint_every=2,
        callbacks=[FaultInjectionCallback(plan, rank)],
        elastic=cfg,
        accept_joins=True,
        ledger=BatchLedger(_GLOBAL_BATCH, comm.size),
    )
    report = supervisor.run(_REJOIN_ITER)
    if not report.crashed:
        return report, vqmc.model.flat_parameters()

    # -- restart: fresh resilient stack, fresh trainer (comm=None so the
    # constructor does not broadcast against the shrunken world), rejoin.
    rcomm2 = ResilientCommunicator(comm, retry)
    vqmc2 = _make_vqmc(None, rank)
    supervisor2 = TrainingSupervisor(
        vqmc2,
        checkpoint_dir=ckpt_dir,
        checkpoint_every=2,
        elastic=cfg,
        accept_joins=True,
        ledger=BatchLedger(_GLOBAL_BATCH, comm.size),
        root=rcomm2,
    )
    report2 = supervisor2.rejoin(_REJOIN_ITER, announce_timeout=0.1,
                                 max_announces=200)
    return report2, vqmc2.model.flat_parameters()


def _nofault_worker(comm, rank, ckpt_dir):
    rcomm = ResilientCommunicator(comm, RetryPolicy(**_RETRY))
    vqmc = _make_vqmc(rcomm, rank)
    supervisor = TrainingSupervisor(
        vqmc,
        checkpoint_dir=ckpt_dir,
        checkpoint_every=2,
        accept_joins=True,
        ledger=BatchLedger(_GLOBAL_BATCH, comm.size),
    )
    report = supervisor.run(_REJOIN_ITER)
    final = vqmc.evaluate(batch_size=256)
    return report, vqmc.model.flat_parameters(), final


class TestRejoin:
    def test_crash_shrink_rejoin_converges(self, tmp_path):
        results = run_threaded(
            _rejoin_worker, 3, args=(str(tmp_path / "chaos"),), timeout=180.0,
        )
        reports = [r[0] for r in results]

        # the victim re-entered the world and finished the run
        assert reports[2].rejoined
        assert reports[2].completed_steps == _REJOIN_ITER
        assert reports[2].joins and reports[2].joins[0]["joiners"] == [2]
        assert reports[2].joins[0]["seconds"] > 0

        for rank in (0, 1):
            rep = reports[rank]
            assert rep.completed_steps == _REJOIN_ITER
            assert rep.final_group == [0, 1, 2]
            assert rep.restores[0]["group"] == [0, 1]  # the shrink happened
            assert rep.joins and rep.joins[0]["joiners"] == [2]

        # lock-step invariant: every rank (including the joiner) holds
        # bit-identical parameters at the end
        assert np.array_equal(results[0][1], results[1][1])
        assert np.array_equal(results[0][1], results[2][1])

        # energy sanity vs a no-fault run of the same length: the fault and
        # recovery must not derail the optimisation (statistical tolerance —
        # the joiner samples a fresh RNG stream, so no bit-exactness here)
        clean = run_threaded(
            _nofault_worker, 3, args=(str(tmp_path / "clean"),), timeout=180.0,
        )
        final_clean = clean[0][2]
        vqmc_check = _make_vqmc(None, 0)
        vqmc_check.model.set_flat_parameters(results[0][1].copy())
        final_faulty = vqmc_check.evaluate(batch_size=256)
        tol = 5.0 * max(final_clean.sem, final_faulty.sem, 1e-3)
        assert abs(final_faulty.mean - final_clean.mean) < tol

    def test_rejoin_gives_up_when_nobody_invites(self, tmp_path):
        """A joiner announcing into a finished (silent) world returns
        rejoined=False instead of hanging."""
        from repro.distributed.threads import make_thread_group

        comms = make_thread_group(2)
        rcomm = ResilientCommunicator(comms[0], RetryPolicy(**_RETRY))
        vqmc = _make_vqmc(None, 0)
        supervisor = TrainingSupervisor(
            vqmc,
            checkpoint_dir=tmp_path / "ckpt",
            elastic=ElasticConfig(heartbeat_timeout=0.5, consensus_timeout=0.5),
            accept_joins=True,
            root=rcomm,
        )
        report = supervisor.rejoin(5, announce_timeout=0.1, max_announces=3)
        assert not report.rejoined
        assert report.final_group == []
