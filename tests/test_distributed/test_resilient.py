"""Resilient communication: framing, retries, escalation, stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import (
    ChecksumError,
    FaultEvent,
    FaultPlan,
    FaultyCommunicator,
    RankFailure,
    ResilientCommunicator,
    RetryPolicy,
    run_threaded,
)
from repro.distributed.resilient import _CTRL_MAGIC, _DATA_MAGIC, _frame, _unframe

pytestmark = pytest.mark.faults


class TestFraming:
    def test_roundtrip_1d(self):
        a = np.arange(17.0)
        kind, seq, out = _unframe(_frame(_DATA_MAGIC, 4, a))
        assert kind == "data" and seq == 4
        assert np.array_equal(out, a)

    def test_roundtrip_2d(self):
        a = np.arange(12.0).reshape(3, 4)
        kind, seq, out = _unframe(_frame(_DATA_MAGIC, 0, a))
        assert out.shape == (3, 4)
        assert np.array_equal(out, a)

    def test_roundtrip_scalar_and_empty(self):
        kind, _, out = _unframe(_frame(_DATA_MAGIC, 0, np.array(3.5)))
        assert out.shape == () and out == 3.5
        _, _, empty = _unframe(_frame(_DATA_MAGIC, 0, np.empty(0)))
        assert empty.size == 0

    def test_ctrl_frames_tagged(self):
        kind, seq, _ = _unframe(_frame(_CTRL_MAGIC, -1, np.ones(2)))
        assert kind == "ctrl" and seq == -1

    def test_nan_payload_survives(self):
        a = np.array([np.nan, np.inf, -0.0, 1.0])
        _, _, out = _unframe(_frame(_DATA_MAGIC, 0, a))
        assert np.array_equal(out.view(np.uint64), a.view(np.uint64))

    def test_any_single_bit_flip_detected(self):
        frame = _frame(_DATA_MAGIC, 0, np.arange(8.0))
        rng = np.random.default_rng(0)
        for _ in range(50):
            buf = bytearray(np.asarray(frame).tobytes())
            bit = int(rng.integers(len(buf) * 8))
            buf[bit // 8] ^= 1 << (bit % 8)
            flipped = np.frombuffer(bytes(buf), dtype=np.float64)
            with pytest.raises(ChecksumError):
                _unframe(flipped)

    def test_garbage_rejected(self):
        with pytest.raises(ChecksumError):
            _unframe(np.ones(2))  # too short
        with pytest.raises(ChecksumError):
            _unframe(np.zeros(10))  # bad magic


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1.0)

    def test_backoff_doubles(self):
        p = RetryPolicy(backoff_base=0.1)
        assert p.backoff(0) == pytest.approx(0.1)
        assert p.backoff(2) == pytest.approx(0.4)

    def test_escalation_time(self):
        p = RetryPolicy(max_attempts=3, backoff_base=0.1, attempt_timeout=1.0)
        # 3 attempts x 1 s + backoffs 0.1 + 0.2
        assert p.escalation_time() == pytest.approx(3.3)


def _wrap(comm, plan=None, **kw):
    inner = FaultyCommunicator(comm, plan) if plan is not None else comm
    return ResilientCommunicator(inner, RetryPolicy(**kw))


class TestResilientChannel:
    def test_plain_exchange(self):
        def worker(comm, rank):
            rc = _wrap(comm)
            if rank == 0:
                rc.send(1, np.arange(5.0))
                return None
            return rc.recv(0, timeout=5.0)

        assert np.array_equal(run_threaded(worker, 2)[1], np.arange(5.0))

    def test_transient_corruption_recovered_bit_exactly(self):
        plan = FaultPlan(
            [FaultEvent(kind="corrupt", rank=0, index=1, transient=True)]
        )
        stats = {}

        def worker(comm, rank):
            rc = _wrap(comm, plan if rank == 0 else None)
            stats[rank] = rc.stats
            if rank == 0:
                rc.send(1, np.full(4, 1.0))
                rc.send(1, np.full(4, 2.0))  # corrupted, then retransmitted
                rc.send(1, np.full(4, 3.0))
                return None
            return [rc.recv(0, timeout=5.0) for _ in range(3)]

        got = run_threaded(worker, 2)[1]
        assert [g[0] for g in got] == [1.0, 2.0, 3.0]
        assert stats[1].checksum_errors == 1
        assert stats[1].retries == 1

    def test_duplicate_discarded(self):
        plan = FaultPlan([FaultEvent(kind="duplicate", rank=0, index=0)])
        stats = {}

        def worker(comm, rank):
            rc = _wrap(comm, plan if rank == 0 else None)
            stats[rank] = rc.stats
            if rank == 0:
                rc.send(1, np.full(2, 5.0))
                rc.send(1, np.full(2, 6.0))
                return None
            return [rc.recv(0, timeout=5.0) for _ in range(2)]

        got = run_threaded(worker, 2)[1]
        assert [g[0] for g in got] == [5.0, 6.0]
        assert stats[1].duplicates_discarded == 1

    def test_persistent_drop_escalates_to_rank_failure(self):
        plan = FaultPlan([FaultEvent(kind="drop", rank=0, index=0)])
        stats = {}

        def worker(comm, rank):
            rc = _wrap(
                comm, plan if rank == 0 else None,
                max_attempts=2, backoff_base=0.01, attempt_timeout=0.1,
            )
            stats[rank] = rc.stats
            if rank == 0:
                rc.send(1, np.ones(2))  # dropped: never arrives
                return None
            with pytest.raises(RankFailure) as info:
                rc.recv(0, timeout=0.1)
            return info.value.rank

        assert run_threaded(worker, 2)[1] == 0
        assert stats[1].rank_failures == 1

    def test_persistent_corruption_escalates(self):
        plan = FaultPlan([
            FaultEvent(kind="corrupt", rank=0, index=0, transient=False),
        ])

        def worker(comm, rank):
            rc = _wrap(
                comm, plan if rank == 0 else None,
                max_attempts=1, backoff_base=0.0, attempt_timeout=0.2,
            )
            if rank == 0:
                rc.send(1, np.ones(8))
                return None
            with pytest.raises(RankFailure, match="corruption"):
                rc.recv(0, timeout=0.2)
            return "escalated"

        assert run_threaded(worker, 2)[1] == "escalated"

    def test_message_loss_detected_by_sequence_gap(self):
        # Frame seq 0 dropped below the resilient layer, seq 1 arrives: the
        # receiver must flag loss, not silently deliver out of order.
        plan = FaultPlan([FaultEvent(kind="drop", rank=0, index=0)])

        def worker(comm, rank):
            rc = _wrap(comm, plan if rank == 0 else None,
                       max_attempts=3, backoff_base=0.01, attempt_timeout=0.5)
            if rank == 0:
                rc.send(1, np.full(2, 1.0))  # dropped
                rc.send(1, np.full(2, 2.0))  # arrives with seq 1
                return None
            with pytest.raises(RankFailure, match="loss"):
                rc.recv(0, timeout=0.5)
            return "detected"

        assert run_threaded(worker, 2)[1] == "detected"

    def test_ctrl_frame_interrupts_data_recv(self):
        def worker(comm, rank):
            rc = _wrap(comm)
            if rank == 0:
                rc.send_ctrl(1, np.array([9.0, 9.0]))
                return None
            with pytest.raises(RankFailure, match="failure detection"):
                rc.recv(0, timeout=5.0)
            # the ctrl frame is preserved for the detection protocol
            return rc.recv_ctrl(0, timeout=1.0)

        assert np.array_equal(run_threaded(worker, 2)[1], [9.0, 9.0])

    def test_recv_ctrl_skips_stale_data(self):
        def worker(comm, rank):
            rc = _wrap(comm)
            if rank == 0:
                rc.send(1, np.ones(3))  # stale data from an aborted collective
                rc.send_ctrl(1, np.array([42.0]))
                return None
            return rc.recv_ctrl(0, timeout=5.0), rc

        payload, rc = run_threaded(worker, 2)[1]
        assert payload[0] == 42.0
        # the stale data frame advanced the sequence counter
        assert rc._recv_seq[0] == 1


class TestResilientCollectives:
    def test_allreduce_matches_raw(self):
        def worker(comm, rank):
            rc = _wrap(comm)
            return rc.allreduce(np.full(7, float(rank + 1)))

        results = run_threaded(worker, 4)
        for r in results:
            assert np.allclose(r, 1 + 2 + 3 + 4)

    def test_allreduce_mean_under_transient_faults_is_bit_exact(self):
        plan = FaultPlan([
            FaultEvent(kind="corrupt", rank=1, index=0, transient=True),
            FaultEvent(kind="duplicate", rank=2, index=1),
            FaultEvent(kind="delay", rank=0, index=0, delay=0.02),
        ])

        def worker(comm, rank, faulty):
            rc = _wrap(comm, plan if faulty else None)
            data = np.arange(8.0) * (rank + 1)
            return rc.allreduce(data, op="mean")

        clean = run_threaded(lambda c, r: worker(c, r, False), 3)
        faulted = run_threaded(lambda c, r: worker(c, r, True), 3)
        for c, f in zip(clean, faulted):
            assert np.array_equal(c, f)

    def test_broadcast_and_barrier(self):
        def worker(comm, rank):
            rc = _wrap(comm)
            rc.barrier()
            return rc.broadcast(np.arange(4.0) if rank == 0 else np.zeros(4))

        for r in run_threaded(worker, 3):
            assert np.array_equal(r, np.arange(4.0))

    def test_stats_snapshot_includes_recovery_counters(self):
        def worker(comm, rank):
            rc = _wrap(comm)
            rc.allreduce(np.ones(4))
            return rc.stats.snapshot()

        snap = run_threaded(worker, 2)[0]
        for key in ("retries", "checksum_errors", "duplicates_discarded",
                    "timeouts_recovered", "rank_failures"):
            assert snap[key] == 0
