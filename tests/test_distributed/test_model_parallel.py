"""Model parallelism: a sharded MADE must be numerically identical to the
single-process reference, shard-for-shard and end-to-end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import run_threaded
from repro.distributed.model_parallel import ShardedMADE, shard_bounds
from repro.distributed.serial import SerialCommunicator
from repro.models import MADE

N, HIDDEN, SEED = 8, 13, 123


def reference_made() -> MADE:
    return MADE(N, hidden=HIDDEN, rng=np.random.default_rng(SEED))


class TestShardBounds:
    def test_partition_covers_everything(self):
        bounds = shard_bounds(13, 4)
        assert bounds[0][0] == 0 and bounds[-1][1] == 13
        for (a, b), (c, d) in zip(bounds, bounds[1:]):
            assert b == c
        sizes = [b - a for a, b in bounds]
        assert max(sizes) - min(sizes) <= 1

    def test_single_shard(self):
        assert shard_bounds(7, 1) == [(0, 7)]


class TestEquivalence:
    def test_serial_shard_equals_reference(self, rng):
        sharded = ShardedMADE(N, HIDDEN, SerialCommunicator(), seed=SEED)
        ref = reference_made()
        x = (rng.random((9, N)) < 0.5).astype(float)
        assert np.allclose(sharded.log_prob_array(x), ref.log_prob(x).data, atol=1e-12)
        assert np.allclose(sharded.conditionals(x), ref.conditionals(x), atol=1e-12)

    @pytest.mark.parametrize("world", [2, 3, 4])
    def test_multi_rank_forward_equals_reference(self, world, rng):
        ref = reference_made()
        x = (rng.random((6, N)) < 0.5).astype(float)
        expect = ref.log_prob(x).data

        def worker(comm, rank):
            model = ShardedMADE(N, HIDDEN, comm, seed=SEED)
            return model.log_prob_array(x)

        for got in run_threaded(worker, world):
            assert np.allclose(got, expect, atol=1e-10)

    def test_sampling_identical_across_ranks_and_to_reference(self):
        ref = reference_made()
        expect = ref.sample(32, np.random.default_rng(7))

        def worker(comm, rank):
            model = ShardedMADE(N, HIDDEN, comm, seed=SEED)
            return model.sample(32, np.random.default_rng(7))

        results = run_threaded(worker, 3)
        for got in results:
            assert np.array_equal(got, expect)

    def test_gathered_weights_match_reference(self):
        ref = reference_made()

        def worker(comm, rank):
            model = ShardedMADE(N, HIDDEN, comm, seed=SEED)
            return model.gather_full_logits_weights()

        for full in run_threaded(worker, 4):
            assert np.allclose(full["w1"], ref.fc1.weight.data)
            assert np.allclose(full["b1"], ref.fc1.bias.data)
            assert np.allclose(full["w2"], ref.fc2.weight.data)
            assert np.allclose(full["b2"], ref.fc2.bias.data)

    def test_per_sample_grads_concatenate_to_reference(self, rng):
        """Stacking every rank's shard gradients must reproduce the full
        per-sample gradient of the reference model (up to reordering)."""
        ref = reference_made()
        x = (rng.random((5, N)) < 0.5).astype(float)
        _, o_ref = ref.log_psi_and_grads(x)
        # Reference layout: [W1 (h,n) | b1 (h) | W2 (n,h) | b2 (n)].
        h, n = HIDDEN, N
        w1_ref = o_ref[:, : h * n].reshape(5, h, n)
        b1_ref = o_ref[:, h * n : h * n + h]
        w2_ref = o_ref[:, h * n + h : h * n + h + n * h].reshape(5, n, h)
        b2_ref = o_ref[:, -n:]

        def worker(comm, rank):
            model = ShardedMADE(N, HIDDEN, comm, seed=SEED)
            _, o = model.log_psi_and_grads(x)
            return model.shard, o

        results = run_threaded(worker, 3)
        for (lo, hi), o in results:
            hr = hi - lo
            w1 = o[:, : hr * n].reshape(5, hr, n)
            b1 = o[:, hr * n : hr * n + hr]
            w2 = o[:, hr * n + hr : hr * n + hr + n * hr].reshape(5, n, hr)
            b2 = o[:, -n:]
            assert np.allclose(w1, w1_ref[:, lo:hi], atol=1e-10)
            assert np.allclose(b1, b1_ref[:, lo:hi], atol=1e-10)
            assert np.allclose(w2, w2_ref[:, :, lo:hi], atol=1e-10)
            if lo == 0:  # rank 0 owns the output bias
                assert np.allclose(b2, b2_ref, atol=1e-10)
            else:
                assert np.allclose(b2, 0.0)


class TestTraining:
    def test_model_parallel_vqmc_matches_single_process(self):
        """Full VQMC training with a sharded model must track the reference
        run step for step (same samples, same updates)."""
        from repro.core.vqmc import VQMC, VQMCConfig
        from repro.hamiltonians import TransverseFieldIsing
        from repro.optim import SGD
        from repro.samplers import AutoregressiveSampler

        ham = TransverseFieldIsing.random(N, seed=5)
        iters, bs = 5, 32

        ref = reference_made()
        vqmc_ref = VQMC(
            ref, ham, AutoregressiveSampler(), SGD(ref.parameters(), lr=0.1),
            seed=9, config=VQMCConfig(gradient_mode="per_sample"),
        )
        ref_energies = [vqmc_ref.step(batch_size=bs).stats.mean for _ in range(iters)]

        def worker(comm, rank):
            model = ShardedMADE(N, HIDDEN, comm, seed=SEED)
            vqmc = VQMC(
                model, ham, AutoregressiveSampler(),
                SGD(model.parameters(), lr=0.1),
                seed=9, config=VQMCConfig(gradient_mode="per_sample"),
            )
            return [vqmc.step(batch_size=bs).stats.mean for _ in range(iters)]

        for energies in run_threaded(worker, 3):
            assert np.allclose(energies, ref_energies, atol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedMADE(N, 1, _FakeComm(4), seed=0)


class _FakeComm:
    def __init__(self, size):
        self.size = size
        self.rank = 0
