"""End-to-end fault-tolerant training: crash, shrink, resume bit-exactly.

The acceptance contract pinned here (on all three backends):

- A :class:`FaultPlan` kills one rank and transiently corrupts one message
  mid-run. Training still completes every requested step.
- The survivors' final parameters are *bit-identical* to a fault-free
  world-2 run that takes the same resume path (restores the same agreed
  checkpoint and finishes the remaining steps) — recovery is a replay,
  not an approximation.
- Serial runs have no peers to shrink with; their story is crash/restart:
  a fresh ``train_resilient(resume="auto")`` after an injected crash must
  reproduce the uninterrupted run bit-exactly.
- Worker failures in ``run_threaded``/``run_processes`` surface with rank
  attribution and the original traceback, never as an anonymous hang.
"""

from __future__ import annotations

import pathlib
import re
import shutil

import numpy as np
import pytest

from repro.core.vqmc import VQMC
from repro.distributed import (
    CommTimeoutError,
    ElasticConfig,
    FaultEvent,
    FaultInjectionCallback,
    FaultPlan,
    FaultyCommunicator,
    ResilientCommunicator,
    RetryPolicy,
    WorkerFailure,
    run_threaded,
    train_resilient,
)
from repro.distributed.mp import run_processes
from repro.hamiltonians import TransverseFieldIsing
from repro.models import MADE
from repro.optim import SGD
from repro.samplers import AutoregressiveSampler

pytestmark = pytest.mark.faults

ITERATIONS = 6
CRASH_STEP = 4
CHECKPOINT_EVERY = 2


def _make_vqmc(comm, rank):
    model = MADE(6, hidden=8, rng=np.random.default_rng(3))
    ham = TransverseFieldIsing.random(6, seed=1)
    return VQMC(
        model, ham, AutoregressiveSampler(),
        SGD(model.parameters(), lr=0.05),
        comm=comm, seed=100 + rank,
    )


def _e2e_worker(comm, rank, ckpt_dir, iterations, plan):
    """One rank of a resilient run; returns (report, final flat params)."""
    policy = RetryPolicy(max_attempts=2, backoff_base=0.01, attempt_timeout=0.25)
    inner = FaultyCommunicator(comm, plan) if plan is not None else comm
    rcomm = ResilientCommunicator(inner, policy)
    vqmc = _make_vqmc(rcomm, rank)
    callbacks = [FaultInjectionCallback(plan, rank)] if plan is not None else []
    report = train_resilient(
        vqmc, iterations,
        batch_size=16,
        checkpoint_dir=ckpt_dir,
        checkpoint_every=CHECKPOINT_EVERY,
        callbacks=callbacks,
        elastic=ElasticConfig(),
    )
    return report, vqmc.model.flat_parameters()


def _faulty_plan(world_size):
    """Kill the last rank at CRASH_STEP; corrupt one rank-0 message early."""
    return FaultPlan([
        FaultEvent(kind="crash", rank=world_size - 1, step=CRASH_STEP),
        FaultEvent(kind="corrupt", rank=0, index=3, transient=True),
    ])


def _seed_reference_dir(src, dst, max_step):
    """Copy checkpoints with step <= max_step into a fresh directory, so a
    reference run can take exactly the faulty run's resume path."""
    dst = pathlib.Path(dst)
    dst.mkdir(parents=True, exist_ok=True)
    for f in pathlib.Path(src).glob("checkpoint_*.npz"):
        step = int(re.match(r"checkpoint_(\d{8})", f.name).group(1))
        if step <= max_step:
            shutil.copy2(f, dst / f.name)


def _check_recovery_run(runner, tmp_path):
    faulty_dir = tmp_path / "faulty"
    results = runner(
        _e2e_worker, 3,
        args=(str(faulty_dir), ITERATIONS, _faulty_plan(3)),
        timeout=120.0,
    )
    reports = [r[0] for r in results]

    # the scheduled victim crashed; the survivors finished every step
    assert reports[2].crashed and reports[2].completed_steps == CRASH_STEP
    for rep in reports[:2]:
        assert rep.completed_steps == ITERATIONS
        assert rep.final_group == [0, 1]
        assert rep.restores == [
            {"epoch": 1, "restored_step": CRASH_STEP, "group": [0, 1]}
        ]
    # the injected corruption was caught by a survivor's checksum and retried
    total = {k: reports[0].comm_stats[k] + reports[1].comm_stats[k]
             for k in reports[0].comm_stats}
    assert total["checksum_errors"] >= 1
    assert total["rank_failures"] >= 1  # the escalation that triggered the shrink

    # reference: a fault-free world-2 run taking the same resume path —
    # restore the same agreed checkpoint, finish the remaining steps
    ref_dir = tmp_path / "reference"
    _seed_reference_dir(faulty_dir, ref_dir, max_step=CRASH_STEP)
    reference = runner(
        _e2e_worker, 2, args=(str(ref_dir), ITERATIONS, None), timeout=120.0,
    )
    for rank in (0, 1):
        assert reference[rank][0].completed_steps == ITERATIONS
        assert np.array_equal(results[rank][1], reference[rank][1]), (
            f"rank {rank}: post-recovery parameters diverge from the "
            "fault-free resume path"
        )


class TestEndToEndRecovery:
    def test_threads_crash_and_corruption_bit_exact(self, tmp_path):
        _check_recovery_run(run_threaded, tmp_path)

    def test_processes_crash_and_corruption_bit_exact(self, tmp_path):
        _check_recovery_run(run_processes, tmp_path)

    def test_serial_crash_restart_bit_exact(self, tmp_path):
        # run 1: injected crash at step 3 (last checkpoint is step 2)
        plan = FaultPlan([FaultEvent(kind="crash", rank=0, step=3)])
        vqmc = _make_vqmc(None, 0)
        report = train_resilient(
            vqmc, ITERATIONS,
            batch_size=16,
            checkpoint_dir=tmp_path / "run",
            checkpoint_every=CHECKPOINT_EVERY,
            callbacks=[FaultInjectionCallback(plan, 0)],
        )
        assert report.crashed and report.completed_steps == 3

        # run 2: restart in the same directory; resume="auto" restores the
        # newest verifying checkpoint and replays steps 3..6
        vqmc2 = _make_vqmc(None, 0)
        report2 = train_resilient(
            vqmc2, ITERATIONS,
            batch_size=16,
            checkpoint_dir=tmp_path / "run",
            checkpoint_every=CHECKPOINT_EVERY,
        )
        assert report2.completed_steps == ITERATIONS

        # reference: the same training uninterrupted
        vqmc3 = _make_vqmc(None, 0)
        train_resilient(
            vqmc3, ITERATIONS,
            batch_size=16,
            checkpoint_dir=tmp_path / "clean",
            checkpoint_every=CHECKPOINT_EVERY,
        )
        assert np.array_equal(
            vqmc2.model.flat_parameters(), vqmc3.model.flat_parameters()
        )


# -- worker failure attribution ------------------------------------------------


def _raise_on_rank_1(comm, rank):
    if rank == 1:
        raise ValueError("boom-42")
    return "ok"


def _wedge_rank_0(comm, rank):
    if rank == 1:
        raise ValueError("boom-42")
    comm.recv(1, timeout=30.0)  # blocks far past the runner's deadline
    return None


class TestWorkerFailureAttribution:
    def test_threads_reraise_original_exception(self):
        with pytest.raises(ValueError, match="boom-42"):
            run_threaded(_raise_on_rank_1, 2)

    def test_threads_wedged_rank_reported_alongside_failure(self):
        with pytest.raises(WorkerFailure) as info:
            run_threaded(_wedge_rank_0, 2, timeout=2.0)
        assert list(info.value.failures) == [1]
        assert "boom-42" in info.value.failures[1]
        assert info.value.wedged == [0]
        assert "rank 1" in str(info.value)

    def test_processes_attribute_rank_and_traceback(self):
        with pytest.raises(WorkerFailure) as info:
            run_processes(_raise_on_rank_1, 2, timeout=60.0)
        assert list(info.value.failures) == [1]
        assert "boom-42" in info.value.failures[1]
        assert "ValueError" in info.value.failures[1]  # original traceback

    def test_threads_pure_wedge_times_out(self):
        def worker(comm, rank):
            if rank == 0:
                comm.recv(1, timeout=30.0)
            return None

        with pytest.raises(CommTimeoutError, match=r"ranks \[0\]"):
            run_threaded(worker, 2, timeout=1.0)


# -- soak ----------------------------------------------------------------------


def _soak_plan():
    return FaultPlan([
        FaultEvent(kind="delay", rank=0, index=2, delay=0.02),
        FaultEvent(kind="corrupt", rank=0, index=6, transient=True),
        FaultEvent(kind="duplicate", rank=1, index=4),
        FaultEvent(kind="corrupt", rank=1, index=9, transient=True),
        FaultEvent(kind="crash", rank=2, step=6),
    ], seed=7)


def _soak_worker(comm, rank, ckpt_dir):
    return _e2e_worker(comm, rank, ckpt_dir, 10, _soak_plan())


@pytest.mark.slow
class TestSoak:
    def test_processes_multi_fault_schedule(self, tmp_path):
        """A process-backed world rides out stragglers, duplicates, repeated
        transient corruption and a crash, and the surviving replicas stay in
        lock-step (identical parameters — the data-parallel invariant)."""
        results = run_processes(
            _soak_worker, 3, args=(str(tmp_path / "soak"),), timeout=300.0
        )
        reports = [r[0] for r in results]
        assert reports[2].crashed
        for rep in reports[:2]:
            assert rep.completed_steps == 10
            assert rep.final_group == [0, 1]
            assert rep.restores
        assert np.array_equal(results[0][1], results[1][1])
