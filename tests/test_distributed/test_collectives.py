"""Collective algorithms: every algorithm, every op, many world sizes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distributed import run_threaded
from repro.distributed.comm import ReduceOp

ALGORITHMS = ("ring", "rec_double", "naive")
WORLD_SIZES = (2, 3, 4, 5, 7, 8)


def _allreduce_worker(comm, rank, alg, op, payload_size):
    comm.algorithm = alg
    arr = np.arange(payload_size, dtype=float) * (rank + 1)
    return comm.allreduce(arr, op=op)


class TestAllreduce:
    @pytest.mark.parametrize("alg", ALGORITHMS)
    @pytest.mark.parametrize("size", WORLD_SIZES)
    def test_sum(self, alg, size):
        results = run_threaded(_allreduce_worker, size, args=(alg, "sum", 17))
        expect = np.arange(17, dtype=float) * sum(range(1, size + 1))
        for r in results:
            assert np.allclose(r, expect)

    @pytest.mark.parametrize("alg", ALGORITHMS)
    def test_max_min_prod(self, alg):
        size = 4
        for op, reducer in (("max", np.maximum), ("min", np.minimum), ("prod", np.multiply)):
            results = run_threaded(_allreduce_worker, size, args=(alg, op, 5))
            expect = np.arange(5, dtype=float)
            acc = expect * 1
            for r in range(2, size + 1):
                acc = reducer(acc, expect * r)
            for res in results:
                assert np.allclose(res, acc)

    @pytest.mark.parametrize("alg", ALGORITHMS)
    def test_mean(self, alg):
        results = run_threaded(_allreduce_worker, 4, args=(alg, "mean", 6))
        expect = np.arange(6, dtype=float) * (1 + 2 + 3 + 4) / 4
        for r in results:
            assert np.allclose(r, expect)

    def test_payload_smaller_than_world(self):
        """Ring allreduce with d < L exercises empty chunks."""
        results = run_threaded(_allreduce_worker, 8, args=("ring", "sum", 3))
        expect = np.arange(3, dtype=float) * 36
        for r in results:
            assert np.allclose(r, expect)

    def test_multidimensional_payload(self):
        def worker(comm, rank):
            arr = np.full((3, 4, 2), float(rank))
            return comm.allreduce(arr)

        results = run_threaded(worker, 4)
        for r in results:
            assert r.shape == (3, 4, 2)
            assert np.allclose(r, 6.0)

    def test_world_size_one_is_identity(self):
        def worker(comm, rank):
            return comm.allreduce(np.arange(4.0))

        (res,) = run_threaded(worker, 1)
        assert np.allclose(res, np.arange(4.0))

    @settings(max_examples=15, deadline=None)
    @given(
        st.sampled_from(ALGORITHMS),
        st.integers(2, 6),
        st.integers(1, 40),
        st.integers(0, 2**31 - 1),
    )
    def test_allreduce_equals_numpy_sum_hypothesis(self, alg, size, d, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(size, d))

        def worker(comm, rank):
            comm.algorithm = alg
            return comm.allreduce(data[rank].copy())

        results = run_threaded(worker, size)
        expect = data.sum(axis=0)
        for r in results:
            assert np.allclose(r, expect, atol=1e-10)


class TestOtherCollectives:
    def test_broadcast_from_every_root(self):
        for root in range(4):
            def worker(comm, rank, root=root):
                payload = np.full(5, 7.0) if rank == root else np.zeros(5)
                return comm.broadcast(payload, root=root)

            for r in run_threaded(worker, 4):
                assert np.allclose(r, 7.0)

    def test_allgather_order(self):
        def worker(comm, rank):
            return comm.allgather(np.array([float(rank), float(rank) ** 2]))

        for parts in run_threaded(worker, 5):
            for r, part in enumerate(parts):
                assert np.allclose(part, [r, r**2])

    def test_reduce_only_root_gets_result(self):
        def worker(comm, rank):
            return comm.reduce(np.ones(3) * (rank + 1), root=2, op="sum")

        results = run_threaded(worker, 4)
        for r, res in enumerate(results):
            if r == 2:
                assert np.allclose(res, 10.0)
            else:
                assert res is None

    def test_barrier_runs(self):
        def worker(comm, rank):
            comm.barrier()
            return rank

        assert run_threaded(worker, 6) == list(range(6))


class TestErrors:
    def test_unknown_op(self):
        def worker(comm, rank):
            return comm.allreduce(np.ones(2), op="xor")

        with pytest.raises(ValueError):
            run_threaded(worker, 2)

    def test_unknown_algorithm(self):
        def worker(comm, rank):
            comm.algorithm = "carrier-pigeon"
            return comm.allreduce(np.ones(2))

        with pytest.raises(ValueError):
            run_threaded(worker, 2)

    def test_self_send_rejected(self):
        def worker(comm, rank):
            comm.send(rank, np.ones(1))

        with pytest.raises(ValueError):
            run_threaded(worker, 2)

    def test_peer_out_of_range(self):
        def worker(comm, rank):
            comm.send(99, np.ones(1))

        with pytest.raises(ValueError):
            run_threaded(worker, 2)

    def test_recv_timeout(self):
        from repro.distributed.comm import CommTimeoutError

        def worker(comm, rank):
            if rank == 0:
                comm.recv(1, timeout=0.1)  # nobody sends
            return None

        with pytest.raises(CommTimeoutError):
            run_threaded(worker, 2)

    def test_reduce_op_names(self):
        assert "sum" in ReduceOp.names()
        assert "mean" in ReduceOp.names()
