"""Deterministic fault injection: plans, op-scoped events, callbacks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import (
    FaultEvent,
    FaultInjectionCallback,
    FaultPlan,
    FaultyCommunicator,
    InjectedRankCrash,
    run_threaded,
)

pytestmark = pytest.mark.faults


class TestFaultEvent:
    def test_valid_event(self):
        FaultEvent(kind="delay", rank=0, index=3).validate()
        FaultEvent(kind="crash", rank=1, step=5).validate()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="gamma-ray", rank=0, index=0).validate()

    def test_exactly_one_scope_required(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="delay", rank=0).validate()
        with pytest.raises(ValueError):
            FaultEvent(kind="delay", rank=0, index=1, step=1).validate()

    def test_payload_kinds_are_send_only(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="corrupt", rank=0, index=0, op="recv").validate()
        with pytest.raises(ValueError):
            FaultEvent(kind="drop", rank=0, step=3).validate()

    def test_delay_and_bits_validated(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="delay", rank=0, index=0, delay=0).validate()
        with pytest.raises(ValueError):
            FaultEvent(kind="corrupt", rank=0, index=0, bits=0).validate()


class TestFaultPlan:
    def test_random_plan_is_deterministic(self):
        a = FaultPlan.random(seed=11, world_size=4)
        b = FaultPlan.random(seed=11, world_size=4)
        assert [e.describe() for e in a.events] == [e.describe() for e in b.events]

    def test_different_seeds_differ(self):
        a = FaultPlan.random(seed=1, world_size=4, n_faults=6)
        b = FaultPlan.random(seed=2, world_size=4, n_faults=6)
        assert [e.describe() for e in a.events] != [e.describe() for e in b.events]

    def test_events_for_filters_by_rank_and_scope(self):
        plan = FaultPlan([
            FaultEvent(kind="delay", rank=0, index=1),
            FaultEvent(kind="crash", rank=0, step=4),
            FaultEvent(kind="delay", rank=1, index=2),
        ])
        op_scoped = plan.events_for(0, step_scoped=False)
        assert [pos for pos, _ in op_scoped] == [0]
        step_scoped = plan.events_for(0, step_scoped=True)
        assert [pos for pos, _ in step_scoped] == [1]

    def test_describe(self):
        plan = FaultPlan([FaultEvent(kind="drop", rank=2, index=0)])
        assert "rank 2: drop" in plan.describe()
        assert "FaultPlan(empty)" == FaultPlan().describe()


class TestFaultyCommunicator:
    def _pair(self, plan):
        """Run a 2-rank exchange where rank 0's sends go through the plan."""

        def worker(comm, rank):
            comm = FaultyCommunicator(comm, plan)
            if rank == 0:
                for i in range(4):
                    comm.send(1, np.full(3, float(i)))
                return None
            return [comm.recv(0, timeout=5.0) for _ in range(4)]

        return run_threaded(worker, 2)[1]

    def test_transparent_without_events(self):
        got = self._pair(FaultPlan())
        assert [g[0] for g in got] == [0.0, 1.0, 2.0, 3.0]

    def test_duplicate_injects_extra_copy(self):
        plan = FaultPlan([FaultEvent(kind="duplicate", rank=0, index=1)])
        got = self._pair(plan)
        # message 1 arrives twice; the receiver reads 4 frames total
        assert [g[0] for g in got] == [0.0, 1.0, 1.0, 2.0]

    def test_drop_removes_message(self):
        plan = FaultPlan([FaultEvent(kind="drop", rank=0, index=2)])

        def worker(comm, rank):
            comm = FaultyCommunicator(comm, plan)
            if rank == 0:
                for i in range(4):
                    comm.send(1, np.full(3, float(i)))
                return None
            return [comm.recv(0, timeout=5.0) for _ in range(3)]

        got = run_threaded(worker, 2)[1]
        assert [g[0] for g in got] == [0.0, 1.0, 3.0]  # message 2 is gone

    def test_corrupt_flips_bits_deterministically(self):
        plan1 = FaultPlan(
            [FaultEvent(kind="corrupt", rank=0, index=0, transient=False)], seed=5
        )
        plan2 = FaultPlan(
            [FaultEvent(kind="corrupt", rank=0, index=0, transient=False)], seed=5
        )
        a = self._corrupted_payload(plan1)
        b = self._corrupted_payload(plan2)
        assert np.array_equal(a.view(np.uint64), b.view(np.uint64))
        clean = np.full(3, 7.0)
        assert not np.array_equal(a.view(np.uint64), clean.view(np.uint64))

    def _corrupted_payload(self, plan):
        def worker(comm, rank):
            comm = FaultyCommunicator(comm, plan)
            if rank == 0:
                comm.send(1, np.full(3, 7.0))
                return None
            return comm.recv(0, timeout=5.0)

        return run_threaded(worker, 2)[1]

    def test_transient_corrupt_sends_clean_copy_after(self):
        plan = FaultPlan(
            [FaultEvent(kind="corrupt", rank=0, index=0, transient=True)]
        )

        def worker(comm, rank):
            comm = FaultyCommunicator(comm, plan)
            if rank == 0:
                comm.send(1, np.full(3, 7.0))
                return None
            first = comm.recv(0, timeout=5.0)
            second = comm.recv(0, timeout=5.0)
            return first, second

        first, second = run_threaded(worker, 2)[1]
        assert not np.array_equal(first.view(np.uint64), second.view(np.uint64))
        assert np.array_equal(second, np.full(3, 7.0))

    def test_crash_kills_rank_permanently(self):
        plan = FaultPlan([FaultEvent(kind="crash", rank=0, index=1)])
        comm_holder = {}

        def worker(comm, rank):
            fc = FaultyCommunicator(comm, plan)
            comm_holder[rank] = fc
            if rank == 0:
                fc.send(1, np.ones(1))
                with pytest.raises(InjectedRankCrash):
                    fc.send(1, np.ones(1))
                with pytest.raises(InjectedRankCrash):
                    fc.recv(1, timeout=0.1)  # dead ranks stay dead
                return "crashed"
            return comm.recv(0, timeout=5.0)

        results = run_threaded(worker, 2)
        assert results[0] == "crashed"
        assert comm_holder[0].injected["crash"] == 1

    def test_delay_injects_straggler(self):
        plan = FaultPlan([FaultEvent(kind="delay", rank=0, index=0, delay=0.05)])

        def worker(comm, rank):
            comm = FaultyCommunicator(comm, plan)
            import time

            if rank == 0:
                t0 = time.perf_counter()
                comm.send(1, np.ones(1))
                return time.perf_counter() - t0
            comm.recv(0, timeout=5.0)
            return None

        assert run_threaded(worker, 2)[0] >= 0.05

    def test_peer_scoped_event_only_hits_that_peer(self):
        plan = FaultPlan([FaultEvent(kind="drop", rank=0, index=0, peer=2)])

        def worker(comm, rank):
            comm = FaultyCommunicator(comm, plan)
            if rank == 0:
                comm.send(1, np.full(1, 10.0))  # not dropped (peer 1)
                comm.send(2, np.full(1, 20.0))  # dropped (first send to peer 2)
                comm.send(2, np.full(1, 30.0))
                return None
            if rank == 1:
                return comm.recv(0, timeout=5.0)[0]
            return comm.recv(0, timeout=5.0)[0]

        results = run_threaded(worker, 3)
        assert results[1] == 10.0
        assert results[2] == 30.0


class TestFaultInjectionCallback:
    def test_crash_fires_at_scheduled_step(self):
        plan = FaultPlan([FaultEvent(kind="crash", rank=0, step=3)])
        cb = FaultInjectionCallback(plan, rank=0)
        cb.on_step(1, None)
        cb.on_step(2, None)
        with pytest.raises(InjectedRankCrash):
            cb.on_step(3, None)
        assert cb.injected["crash"] == 1

    def test_other_ranks_unaffected(self):
        plan = FaultPlan([FaultEvent(kind="crash", rank=2, step=3)])
        cb = FaultInjectionCallback(plan, rank=0)
        for step in range(1, 6):
            cb.on_step(step, None)  # no raise
        assert cb.injected == {}

    def test_fires_once(self):
        plan = FaultPlan([FaultEvent(kind="delay", rank=0, step=2, delay=0.01)])
        cb = FaultInjectionCallback(plan, rank=0)
        cb.on_step(2, None)
        cb.on_step(2, None)  # replayed step after a restore: already fired
        assert cb.injected["delay"] == 1
