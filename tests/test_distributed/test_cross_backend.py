"""Cross-backend consistency: the same distributed computations must give
identical results on threads and OS processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import run_processes, run_threaded


def _sharded_forward(comm, rank):
    from repro.distributed.model_parallel import ShardedMADE

    model = ShardedMADE(6, 10, comm, seed=42)
    x = (np.random.default_rng(5).random((4, 6)) < 0.5).astype(float)
    return model.log_prob_array(x)


def _dp_training(comm, rank):
    from repro.core.vqmc import VQMC, VQMCConfig
    from repro.hamiltonians import TransverseFieldIsing
    from repro.models import MADE
    from repro.optim import SGD
    from repro.samplers import AutoregressiveSampler
    from repro.utils.rng import spawn_generators

    model = MADE(6, hidden=8, rng=np.random.default_rng(0))
    ham = TransverseFieldIsing.random(6, seed=1)
    vqmc = VQMC(
        model, ham, AutoregressiveSampler(),
        SGD(model.parameters(), lr=0.1),
        comm=comm, seed=spawn_generators(9, comm.size)[rank],
        config=VQMCConfig(gradient_mode="per_sample"),
    )
    vqmc.run(3, batch_size=16)
    return model.flat_parameters()


class TestCrossBackend:
    def test_sharded_made_identical_on_both_backends(self):
        from repro.models import MADE

        ref = MADE(6, hidden=10, rng=np.random.default_rng(42))
        x = (np.random.default_rng(5).random((4, 6)) < 0.5).astype(float)
        expect = ref.log_prob(x).data

        for got in run_threaded(_sharded_forward, 3):
            assert np.allclose(got, expect, atol=1e-10)
        for got in run_processes(_sharded_forward, 3, timeout=120):
            assert np.allclose(got, expect, atol=1e-10)

    def test_data_parallel_training_matches_across_backends(self):
        thread_params = run_threaded(_dp_training, 2)
        process_params = run_processes(_dp_training, 2, timeout=120)
        # Same seeds → identical sample streams → identical updates,
        # regardless of the transport underneath.
        assert np.allclose(thread_params[0], process_params[0], atol=1e-12)
        assert np.allclose(thread_params[0], thread_params[1], atol=1e-12)


class TestSamplerBase:
    def test_default_stats_and_acceptance_nan(self):
        from repro.samplers.base import Sampler, SamplerStats

        s = Sampler()
        stats = s.last_stats
        assert isinstance(stats, SamplerStats)
        assert np.isnan(stats.acceptance_rate)  # no proposals yet
        with pytest.raises(NotImplementedError):
            s.sample(None, 1, np.random.default_rng(0))

    def test_acceptance_rate(self):
        from repro.samplers.base import SamplerStats

        stats = SamplerStats(proposals=100, accepted=25)
        assert stats.acceptance_rate == 0.25
