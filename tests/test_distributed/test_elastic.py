"""Elastic world management: detection, consensus, shrink semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import (
    ElasticConfig,
    RankFailure,
    ResilientCommunicator,
    RetryPolicy,
    detect_survivors,
    run_threaded,
    shrink_world,
)

pytestmark = pytest.mark.faults

FAST = ElasticConfig(heartbeat_timeout=1.0, consensus_timeout=1.0)


def _resilient(comm):
    return ResilientCommunicator(
        comm, RetryPolicy(max_attempts=2, backoff_base=0.01, attempt_timeout=0.2)
    )


class TestElasticConfig:
    def test_explicit_timeouts(self):
        hb, cs = ElasticConfig(heartbeat_timeout=2.0, consensus_timeout=3.0).resolved(None)
        assert hb == 2.0 and cs == 3.0

    def test_derived_from_retry_policy(self):
        class Stub:
            policy = RetryPolicy(max_attempts=2, backoff_base=0.1, attempt_timeout=1.0)

        hb, cs = ElasticConfig().resolved(Stub())
        # 2 x escalation (2 x 1.0 + 0.1) + margin; consensus defaults to hb
        assert hb == pytest.approx(2.0 * 2.1 + 0.25)
        assert cs == hb


class TestDetectSurvivors:
    def test_all_alive_full_group(self):
        def worker(comm, rank):
            rc = _resilient(comm)
            return detect_survivors(rc, [0, 1, 2], epoch=1, config=FAST)

        for group in run_threaded(worker, 3):
            assert group == [0, 1, 2]

    def test_silent_rank_detected_dead(self):
        def worker(comm, rank):
            if rank == 2:
                return "dead"  # never participates
            rc = _resilient(comm)
            return detect_survivors(rc, [0, 1, 2], epoch=1, config=FAST)

        results = run_threaded(worker, 3)
        assert results[0] == [0, 1]
        assert results[1] == [0, 1]

    def test_consensus_evicts_minority_view(self):
        """A rank excluded by its peer's bitmap must refuse to continue."""

        def worker(comm, rank):
            rc = _resilient(comm)
            if rank == 0:
                # handcrafted protocol messages: heartbeat, then a bitmap
                # claiming rank 1 is dead
                rc.send_ctrl(1, np.array([1.0, 1.0, 0.0]))  # HB epoch 1
                rc.send_ctrl(1, np.array([2.0, 1.0, 1.0, 0.0]))  # BM: only rank 0
                return "done"
            with pytest.raises(RankFailure, match="evicted"):
                detect_survivors(rc, [0, 1], epoch=1, config=FAST)
            return "evicted"

        assert run_threaded(worker, 2)[1] == "evicted"

    def test_stale_epoch_heartbeats_ignored(self):
        def worker(comm, rank):
            rc = _resilient(comm)
            if rank == 0:
                rc.send_ctrl(1, np.array([1.0, 1.0, 0.0]))  # stale: epoch 1
                return detect_survivors(rc, [0, 1], epoch=2, config=FAST)
            return detect_survivors(rc, [0, 1], epoch=2, config=FAST)

        for group in run_threaded(worker, 2):
            assert group == [0, 1]


class TestShrinkWorld:
    def test_mean_renormalised_by_live_world(self):
        """After the shrink, op='mean' divides by the surviving world size —
        the gradient-averaging semantics the trainer relies on."""

        def worker(comm, rank):
            if rank == 2:
                return None
            rc = _resilient(comm)
            sub = shrink_world(rc, [0, 1, 2], epoch=1, config=FAST)
            assert sub.size == 2
            return sub.allreduce(np.full(3, float(rank + 1)), op="mean")

        results = run_threaded(worker, 3)
        for r in results[:2]:
            assert np.allclose(r, (1 + 2) / 2)

    def test_sub_comm_rank_translation(self):
        def worker(comm, rank):
            if rank == 0:
                return None  # rank 0 dies: survivors get translated ranks
            rc = _resilient(comm)
            sub = shrink_world(rc, [0, 1, 2], epoch=1, config=FAST)
            return sub.rank

        results = run_threaded(worker, 3)
        assert results[1] == 0  # global rank 1 -> sub rank 0
        assert results[2] == 1
