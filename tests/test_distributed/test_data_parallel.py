"""Data-parallel VQMC: gradient exactness, replica consistency, backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.vqmc import VQMC, VQMCConfig
from repro.distributed import run_threaded
from repro.distributed.data_parallel import run_data_parallel
from repro.distributed.serial import SerialCommunicator
from repro.hamiltonians import TransverseFieldIsing
from repro.models import MADE
from repro.optim import SGD, Adam, StochasticReconfiguration
from repro.samplers import AutoregressiveSampler


def _builder_factory(n=6, seed=7, lr=0.05, sr=False):
    def builder(rank):
        model = MADE(n, hidden=8, rng=np.random.default_rng(seed))
        ham = TransverseFieldIsing.random(n, seed=1)
        opt = Adam(model.parameters(), lr=lr)
        if sr:
            return model, ham, AutoregressiveSampler(), SGD(model.parameters(), lr=0.1), StochasticReconfiguration()
        return model, ham, AutoregressiveSampler(), opt

    return builder


class TestReplicaConsistency:
    def test_all_ranks_hold_identical_parameters_after_training(self):
        """The whole point of data parallelism: replicas never diverge."""

        def worker(comm, rank):
            model = MADE(6, hidden=8, rng=np.random.default_rng(rank))  # ≠ inits!
            ham = TransverseFieldIsing.random(6, seed=1)
            vqmc = VQMC(
                model, ham, AutoregressiveSampler(),
                SGD(model.parameters(), lr=0.1),
                comm=comm, seed=np.random.default_rng(100 + rank),
            )
            vqmc.run(5, batch_size=32)
            return model.flat_parameters()

        results = run_threaded(worker, 4)
        for r in results[1:]:
            assert np.allclose(r, results[0], atol=1e-12)

    def test_broadcast_aligns_different_inits(self):
        def worker(comm, rank):
            model = MADE(6, hidden=8, rng=np.random.default_rng(rank * 11))
            ham = TransverseFieldIsing.random(6, seed=1)
            VQMC(
                model, ham, AutoregressiveSampler(),
                SGD(model.parameters(), lr=0.1), comm=comm,
                seed=rank,
            )
            return model.flat_parameters()

        results = run_threaded(worker, 3)
        for r in results[1:]:
            assert np.allclose(r, results[0])


class TestGradientExactness:
    def test_distributed_gradient_equals_big_batch(self, small_tim):
        """L ranks × mbs samples with global centring must reproduce the
        single-process gradient over the concatenated batch exactly."""
        n, total = 6, 64
        L = 4
        mbs = total // L
        # Pre-draw the global batch and give each rank its slice via a
        # deterministic per-rank sampler stub.
        master = MADE(n, hidden=8, rng=np.random.default_rng(3))
        ham = small_tim
        full_x = master.sample(total, np.random.default_rng(5))

        class FixedSampler:
            exact = True

            def __init__(self, x):
                self.x = x

            def sample(self, model, batch_size, rng):
                assert batch_size == self.x.shape[0]
                return self.x

            @property
            def last_stats(self):
                from repro.samplers.base import SamplerStats

                return SamplerStats()

        # Single-process reference.
        ref_model = MADE(n, hidden=8, rng=np.random.default_rng(3))
        ref = VQMC(
            ref_model, ham, FixedSampler(full_x),
            SGD(ref_model.parameters(), lr=0.1), seed=0,
            config=VQMCConfig(gradient_mode="per_sample"),
        )
        ref.step(batch_size=total)
        expect = ref_model.flat_parameters()

        def worker(comm, rank):
            model = MADE(n, hidden=8, rng=np.random.default_rng(3))
            shard = full_x[rank * mbs : (rank + 1) * mbs]
            vqmc = VQMC(
                model, ham, FixedSampler(shard),
                SGD(model.parameters(), lr=0.1), comm=comm, seed=0,
                config=VQMCConfig(gradient_mode="per_sample"),
            )
            vqmc.step(batch_size=mbs)
            return model.flat_parameters()

        results = run_threaded(worker, L)
        for r in results:
            assert np.allclose(r, expect, atol=1e-12)

    def test_autograd_mode_also_exact(self, small_tim):
        """The autograd path centres with the global mean too."""
        n, total, L = 6, 32, 2
        mbs = total // L
        master = MADE(n, hidden=8, rng=np.random.default_rng(3))
        full_x = master.sample(total, np.random.default_rng(5))

        class FixedSampler:
            exact = True

            def __init__(self, x):
                self.x = x

            def sample(self, model, batch_size, rng):
                return self.x

            @property
            def last_stats(self):
                from repro.samplers.base import SamplerStats

                return SamplerStats()

        ref_model = MADE(n, hidden=8, rng=np.random.default_rng(3))
        ref = VQMC(
            ref_model, small_tim, FixedSampler(full_x),
            SGD(ref_model.parameters(), lr=0.1), seed=0,
            config=VQMCConfig(gradient_mode="autograd"),
        )
        ref.step(batch_size=total)
        expect = ref_model.flat_parameters()

        def worker(comm, rank):
            model = MADE(n, hidden=8, rng=np.random.default_rng(3))
            shard = full_x[rank * mbs : (rank + 1) * mbs]
            vqmc = VQMC(
                model, small_tim, FixedSampler(shard),
                SGD(model.parameters(), lr=0.1), comm=comm, seed=0,
                config=VQMCConfig(gradient_mode="autograd"),
            )
            vqmc.step(batch_size=mbs)
            return model.flat_parameters()

        for r in run_threaded(worker, L):
            assert np.allclose(r, expect, atol=1e-12)

    def test_autograd_exact_with_unequal_rank_batches(self, small_tim):
        """Regression: the autograd path normalised by `bsz × world_size`,
        i.e. it assumed equal per-rank batches — unequal shards (the
        elastic-shrink shape) gave a biased gradient. It must use the
        global sample count, like the per-sample path always did."""
        n, total, L = 6, 48, 2
        splits = [30, 18]  # deliberately unequal
        master = MADE(n, hidden=8, rng=np.random.default_rng(3))
        full_x = master.sample(total, np.random.default_rng(5))

        class FixedSampler:
            exact = True

            def __init__(self, x):
                self.x = x

            def sample(self, model, batch_size, rng):
                return self.x

            @property
            def last_stats(self):
                from repro.samplers.base import SamplerStats

                return SamplerStats()

        ref_model = MADE(n, hidden=8, rng=np.random.default_rng(3))
        ref = VQMC(
            ref_model, small_tim, FixedSampler(full_x),
            SGD(ref_model.parameters(), lr=0.1), seed=0,
            config=VQMCConfig(gradient_mode="autograd"),
        )
        ref.step(batch_size=total)
        expect = ref_model.flat_parameters()

        offsets = np.concatenate([[0], np.cumsum(splits)])

        def worker(comm, rank):
            model = MADE(n, hidden=8, rng=np.random.default_rng(3))
            shard = full_x[offsets[rank]:offsets[rank + 1]]
            vqmc = VQMC(
                model, small_tim, FixedSampler(shard),
                SGD(model.parameters(), lr=0.1), comm=comm, seed=0,
                config=VQMCConfig(gradient_mode="autograd"),
            )
            vqmc.step(batch_size=splits[rank])
            return model.flat_parameters()

        for r in run_threaded(worker, L):
            assert np.allclose(r, expect, atol=1e-12)

    @pytest.mark.parametrize("solver,atol", [("dense", 1e-9), ("cg", 1e-6)])
    def test_distributed_sr_equals_big_batch_sr(self, small_tim, solver, atol):
        """Distributed SR = single-process big-batch SR, for BOTH solvers —
        the configured solver must be honoured when `comm.size > 1`
        (regression: CG used to be silently replaced by a dense solve)."""
        n, total, L = 6, 32, 2
        mbs = total // L
        master = MADE(n, hidden=8, rng=np.random.default_rng(3))
        full_x = master.sample(total, np.random.default_rng(5))

        class FixedSampler:
            exact = True

            def __init__(self, x):
                self.x = x

            def sample(self, model, batch_size, rng):
                return self.x

            @property
            def last_stats(self):
                from repro.samplers.base import SamplerStats

                return SamplerStats()

        ref_model = MADE(n, hidden=8, rng=np.random.default_rng(3))
        ref = VQMC(
            ref_model, small_tim, FixedSampler(full_x),
            SGD(ref_model.parameters(), lr=0.1),
            sr=StochasticReconfiguration(solver="dense"), seed=0,
        )
        ref.step(batch_size=total)
        expect = ref_model.flat_parameters()

        def worker(comm, rank):
            model = MADE(n, hidden=8, rng=np.random.default_rng(3))
            shard = full_x[rank * mbs : (rank + 1) * mbs]
            vqmc = VQMC(
                model, small_tim, FixedSampler(shard),
                SGD(model.parameters(), lr=0.1),
                sr=StochasticReconfiguration(solver=solver),
                comm=comm, seed=0,
            )
            vqmc.step(batch_size=mbs)
            assert vqmc.sr.last_solve.solver == solver
            assert vqmc.sr.last_solve.distributed
            return model.flat_parameters()

        for r in run_threaded(worker, L):
            assert np.allclose(r, expect, atol=atol)


class TestRunDataParallel:
    def test_world_size_one_uses_serial(self):
        res = run_data_parallel(_builder_factory(), 1, iterations=5, mini_batch_size=32)
        assert res.world_size == 1
        assert res.effective_batch_size == 32
        assert len(res.energy) == 5

    def test_threads_backend(self):
        res = run_data_parallel(
            _builder_factory(), 3, iterations=5, mini_batch_size=16, seed=1
        )
        assert res.world_size == 3
        assert res.effective_batch_size == 48
        assert res.wall_time > 0

    def test_process_backend(self):
        res = run_data_parallel(
            _builder_factory(), 2, iterations=3, mini_batch_size=16,
            seed=1, backend="processes",
        )
        assert res.world_size == 2
        assert np.isfinite(res.final_energy)

    def test_with_sr(self):
        res = run_data_parallel(
            _builder_factory(sr=True), 2, iterations=5, mini_batch_size=16, seed=2
        )
        assert np.isfinite(res.final_energy)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            run_data_parallel(
                _builder_factory(), 2, iterations=1, mini_batch_size=4,
                backend="quantum",
            )

    def test_unknown_backend_rejected_at_world_size_one(self):
        """Regression: the serial shortcut used to silently ignore an
        invalid backend instead of validating it."""
        with pytest.raises(ValueError, match="quantum"):
            run_data_parallel(
                _builder_factory(), 1, iterations=1, mini_batch_size=4,
                backend="quantum",
            )

    def test_larger_effective_batch_does_not_hurt(self):
        """Fig. 4's qualitative claim at miniature scale: more ranks (bigger
        effective batch) converge at least as well, on average."""
        small = run_data_parallel(
            _builder_factory(lr=0.05), 1, iterations=40, mini_batch_size=8, seed=3
        )
        big = run_data_parallel(
            _builder_factory(lr=0.05), 8, iterations=40, mini_batch_size=8, seed=3
        )
        # Average energy over the last 10 iterations, generous tolerance.
        assert big.energy[-10:].mean() <= small.energy[-10:].mean() + 0.3


class TestSerialCommunicator:
    def test_properties(self):
        comm = SerialCommunicator()
        assert comm.size == 1 and comm.rank == 0
        comm.barrier()
        assert np.allclose(comm.allreduce(np.arange(3.0)), np.arange(3.0))
        assert np.allclose(comm.broadcast(np.ones(2)), 1.0)
        assert len(comm.allgather(np.ones(2))) == 1

    def test_point_to_point_rejected(self):
        comm = SerialCommunicator()
        with pytest.raises(RuntimeError):
            comm.send(0, np.ones(1))
        with pytest.raises(RuntimeError):
            comm.recv(0)
