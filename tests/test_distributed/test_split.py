"""Subcommunicators (MPI_Comm_split semantics) and hierarchical patterns."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import run_threaded
from repro.distributed.comm import SubCommunicator


class TestSplit:
    def test_groups_partition_by_color(self):
        def worker(comm, rank):
            sub = comm.split(color=rank % 2)
            return (sub.size, sub.rank, sub.group)

        results = run_threaded(worker, 6)
        for rank, (size, subrank, group) in enumerate(results):
            assert size == 3
            assert group == [r for r in range(6) if r % 2 == rank % 2]
            assert group[subrank] == rank

    def test_subgroup_allreduce_sums_only_members(self):
        def worker(comm, rank):
            sub = comm.split(color=rank // 2)  # pairs: {0,1}, {2,3}
            return sub.allreduce(np.array([float(rank)]))

        results = run_threaded(worker, 4)
        assert results[0][0] == results[1][0] == 1.0  # 0 + 1
        assert results[2][0] == results[3][0] == 5.0  # 2 + 3

    def test_key_reorders_ranks(self):
        def worker(comm, rank):
            sub = comm.split(color=0, key=-rank)  # reversed order
            return sub.rank

        results = run_threaded(worker, 4)
        assert results == [3, 2, 1, 0]

    def test_subgroup_barrier_and_broadcast(self):
        def worker(comm, rank):
            sub = comm.split(color=rank % 2)
            sub.barrier()
            payload = np.array([float(rank)]) if sub.rank == 0 else np.zeros(1)
            return sub.broadcast(payload, root=0)[0]

        results = run_threaded(worker, 6)
        for rank, got in enumerate(results):
            assert got == float(rank % 2)  # group roots are ranks 0 and 1

    def test_hierarchical_allreduce_equals_global(self):
        """Reduce within node-groups, allreduce across leaders, broadcast
        down — must equal one global allreduce."""

        def worker(comm, rank):
            data = np.arange(5.0) * (rank + 1)
            expect = comm.allreduce(data.copy())

            node = comm.split(color=rank // 2)  # 2 ranks per "node"
            partial = node.reduce(data.copy(), root=0)
            leaders = comm.split(color=0 if node.rank == 0 else 1)
            if node.rank == 0:
                total = leaders.allreduce(partial)
            else:
                total = np.zeros(5)
            total = node.broadcast(total, root=0)
            return np.allclose(total, expect)

        assert all(run_threaded(worker, 4))

    def test_singleton_group(self):
        def worker(comm, rank):
            sub = comm.split(color=rank)  # every rank alone
            sub.barrier()
            return (sub.size, sub.allreduce(np.ones(2))[0])

        for size, val in run_threaded(worker, 3):
            assert size == 1 and val == 1.0

    def test_validation(self):
        class Fake:
            rank = 5
            algorithm = "ring"

        with pytest.raises(ValueError):
            SubCommunicator(Fake(), [0, 1])
        with pytest.raises(ValueError):
            SubCommunicator(Fake(), [5, 5])
