"""Flight-recorder acceptance: injected crash → a black box on every rank.

The ISSUE-9 acceptance criterion pinned here: an injected crash (via
``repro.distributed.faults``) produces a **valid** (CRC-verified) flight
dump on every surviving rank, and ``tools/monitor.py`` reads those dumps
and names the failing rank and the last completed step.

Also covered: the supervisor's epoch-tagged ``shrink`` event lands in the
survivors' dumps, and ``train_resilient(flight_dir=...)`` wires a
recorder without any explicit callback plumbing.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.vqmc import VQMC
from repro.distributed import (
    ElasticConfig,
    FaultEvent,
    FaultInjectionCallback,
    FaultPlan,
    FaultyCommunicator,
    ResilientCommunicator,
    RetryPolicy,
    run_threaded,
    train_resilient,
)
from repro.hamiltonians import TransverseFieldIsing
from repro.models import MADE
from repro.obs import flight_file_name, load_flight_dump
from repro.obs.flight import FlightRecorder
from repro.optim import SGD
from repro.samplers import AutoregressiveSampler

pytestmark = pytest.mark.faults

REPO = Path(__file__).resolve().parents[2]
MONITOR = REPO / "tools" / "monitor.py"

WORLD = 3
ITERATIONS = 6
CRASH_STEP = 4


def _make_vqmc(comm, rank):
    model = MADE(6, hidden=8, rng=np.random.default_rng(3))
    ham = TransverseFieldIsing.random(6, seed=1)
    return VQMC(
        model, ham, AutoregressiveSampler(),
        SGD(model.parameters(), lr=0.05),
        comm=comm, seed=100 + rank,
    )


def _worker(comm, rank, ckpt_dir, flight_dir):
    plan = FaultPlan(
        [FaultEvent(kind="crash", rank=WORLD - 1, step=CRASH_STEP)]
    )
    policy = RetryPolicy(max_attempts=2, backoff_base=0.01, attempt_timeout=0.25)
    rcomm = ResilientCommunicator(FaultyCommunicator(comm, plan), policy)
    vqmc = _make_vqmc(rcomm, rank)
    # Recorder first so the crash-step frame is captured before the fault
    # callback raises on the same step.
    flight = FlightRecorder(flight_dir, capacity=16)
    report = train_resilient(
        vqmc, ITERATIONS,
        batch_size=16,
        checkpoint_dir=ckpt_dir,
        checkpoint_every=2,
        callbacks=[flight, FaultInjectionCallback(plan, rank)],
        elastic=ElasticConfig(),
    )
    return report


class TestInjectedCrashLeavesBlackBoxes:
    @pytest.fixture(scope="class")
    def crashed_run(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("flight_e2e")
        flight_dir = tmp / "flight"
        reports = run_threaded(
            _worker, WORLD,
            args=(str(tmp / "ckpt"), str(flight_dir)),
            timeout=120.0,
        )
        return reports, flight_dir

    def test_every_rank_left_a_valid_dump(self, crashed_run):
        reports, flight_dir = crashed_run
        assert reports[WORLD - 1].crashed
        for rank in range(WORLD):
            doc = load_flight_dump(flight_dir / flight_file_name(rank))
            body = doc["body"]
            assert body["rank"] == rank
            assert body["frames"], f"rank {rank} dumped no frames"

    def test_crashed_rank_records_its_own_death(self, crashed_run):
        _, flight_dir = crashed_run
        body = load_flight_dump(flight_dir / flight_file_name(WORLD - 1))["body"]
        assert body["reason"] == "injected_crash"
        assert body["last_step"] == CRASH_STEP
        kinds = [e["kind"] for e in body["events"]]
        assert "injected_crash" in kinds

    def test_survivors_record_epoch_tagged_shrink(self, crashed_run):
        reports, flight_dir = crashed_run
        for rank in range(WORLD - 1):
            assert reports[rank].completed_steps == ITERATIONS
            body = load_flight_dump(flight_dir / flight_file_name(rank))["body"]
            assert body["reason"] == "rank_failure"
            shrinks = [e for e in body["events"] if e["kind"] == "shrink"]
            assert len(shrinks) == 1
            assert shrinks[0]["failed"] == [WORLD - 1]
            assert shrinks[0]["epoch"] == 1
            assert shrinks[0]["restored_step"] == CRASH_STEP

    def test_monitor_cli_names_failing_rank_and_last_step(self, crashed_run):
        _, flight_dir = crashed_run
        r = subprocess.run(
            [sys.executable, str(MONITOR), "flight", str(flight_dir)],
            capture_output=True, text=True,
        )
        assert r.returncode == 1, r.stdout + r.stderr  # failed rank found
        assert f"failed rank {WORLD - 1}" in r.stdout
        assert f"last completed step {CRASH_STEP}" in r.stdout
        assert f"restored from step {CRASH_STEP}" in r.stdout

        r = subprocess.run(
            [sys.executable, str(MONITOR), "flight", str(flight_dir), "--json"],
            capture_output=True, text=True,
        )
        payload = json.loads(r.stdout)
        failed = payload["failed_ranks"][str(WORLD - 1)]
        assert failed["last_completed_step"] == CRASH_STEP
        assert payload["restored_step"] == CRASH_STEP


class TestFlightDirConvenience:
    def test_serial_injected_crash_dumps_via_flight_dir(self, tmp_path):
        plan = FaultPlan([FaultEvent(kind="crash", rank=0, step=3)])
        vqmc = _make_vqmc(None, 0)
        report = train_resilient(
            vqmc, ITERATIONS,
            batch_size=16,
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_every=2,
            callbacks=[FaultInjectionCallback(plan, 0)],
            flight_dir=tmp_path / "flight",
        )
        assert report.crashed
        body = load_flight_dump(tmp_path / "flight" / flight_file_name(0))["body"]
        assert body["reason"] == "injected_crash"

    def test_existing_recorder_not_duplicated(self, tmp_path):
        flight = FlightRecorder(tmp_path / "flight", rank=0)
        vqmc = _make_vqmc(None, 0)
        train_resilient(
            vqmc, 2,
            batch_size=16,
            checkpoint_dir=tmp_path / "ckpt",
            callbacks=[flight],
            flight_dir=tmp_path / "other",
        )
        assert not (tmp_path / "other").exists()
