"""Process-backend (fork + pipes) integration tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import run_processes


def _allreduce_worker(comm, rank, alg):
    comm.algorithm = alg
    return comm.allreduce(np.arange(6.0) * (rank + 1))


def _barrier_worker(comm, rank):
    comm.barrier()
    gathered = comm.allgather(np.array([float(rank)]))
    comm.barrier()
    return np.concatenate(gathered)


def _failing_worker(comm, rank):
    if rank == 1:
        raise RuntimeError("boom")
    # Other ranks exit without communicating: collective calls would hang,
    # so this worker does nothing.
    return rank


class TestProcesses:
    @pytest.mark.parametrize("alg", ["ring", "naive"])
    def test_allreduce(self, alg):
        results = run_processes(_allreduce_worker, 3, args=(alg,))
        expect = np.arange(6.0) * 6
        for r in results:
            assert np.allclose(r, expect)

    def test_allgather_and_barrier(self):
        results = run_processes(_barrier_worker, 4)
        for r in results:
            assert np.allclose(r, np.arange(4.0))

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="boom"):
            run_processes(_failing_worker, 2, timeout=30.0)

    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            run_processes(_barrier_worker, 0)

    def test_large_payload_does_not_deadlock(self):
        """Simultaneous sends larger than the pipe buffer (64 KiB) would
        deadlock a naive blocking implementation; the eager sender threads
        must absorb them."""

        def worker(comm, rank):
            big = np.full(300_000, float(rank))  # 2.4 MB
            return comm.allreduce(big)[:3]

        results = run_processes(worker, 2, timeout=60.0)
        for r in results:
            assert np.allclose(r, 1.0)
