"""BatchLedger: the global-batch → per-rank split under a cost model.

The invariants pinned here:

- every split sums to ``global_batch`` exactly, for any cost vector;
- the ``min_chunk`` floor holds even under extreme cost skew;
- the hysteresis dead-band suppresses churn from timing noise but lets a
  real straggler through;
- the EWMA folds observations deterministically (identical inputs on two
  ledgers → identical assignments — the congruence the supervisor relies
  on instead of an extra agreement round);
- ``resize`` resets to an even split and clears stale costs;
- ``dump`` writes the JSON that ``tools/trace.py summary`` reads.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.distributed.ledger import BatchLedger


class TestSplitExactness:
    def test_even_costs_even_split(self):
        ledger = BatchLedger(48, 4)
        assert ledger.assignment() == [12, 12, 12, 12]

    def test_sums_to_global_batch_for_random_costs(self):
        rng = np.random.default_rng(0)
        for world in (1, 2, 3, 5, 7, 16):
            ledger = BatchLedger(97, world)
            for _ in range(50):
                costs = rng.uniform(0.1, 10.0, size=world)
                assert sum(ledger._split(costs)) == 97

    def test_indivisible_batch_remainder_to_low_index_on_ties(self):
        ledger = BatchLedger(10, 4)
        # equal costs: 10 = 4*2 + 2 extra, ties broken by slot index
        assert ledger._split(np.ones(4)) == [3, 3, 2, 2]

    def test_slow_rank_gets_fewer_samples(self):
        ledger = BatchLedger(48, 4)
        split = ledger._split(np.array([1.0, 1.0, 1.0, 2.0]))
        assert sum(split) == 48
        assert split[3] < min(split[:3])
        # equal-cost slots differ by at most the rounding remainder
        assert max(split[:3]) - min(split[:3]) <= 1

    def test_min_chunk_floor_under_extreme_skew(self):
        ledger = BatchLedger(40, 4, min_chunk=4)
        split = ledger._split(np.array([1.0, 1.0, 1.0, 1e6]))
        assert sum(split) == 40
        assert all(s >= 4 for s in split)
        assert split[3] == 4  # pinned to the floor, not starved to zero

    def test_validation(self):
        with pytest.raises(ValueError, match="global_batch"):
            BatchLedger(0, 2)
        with pytest.raises(ValueError, match="min_chunk"):
            BatchLedger(8, 2, min_chunk=0)
        with pytest.raises(ValueError, match="alpha"):
            BatchLedger(8, 2, alpha=0.0)
        with pytest.raises(ValueError, match="hysteresis"):
            BatchLedger(8, 2, hysteresis=-0.1)
        with pytest.raises(ValueError, match="at least min_chunk"):
            BatchLedger(4, 8)  # cannot give 8 ranks 1 sample from a batch of 4

    def test_batch_for_matches_assignment(self):
        ledger = BatchLedger(10, 3)
        assert [ledger.batch_for(s) for s in range(3)] == ledger.assignment()


class TestCostModel:
    def test_first_observation_must_be_fully_valid(self):
        ledger = BatchLedger(48, 4)
        ledger.observe([1.0, 1.0, np.nan, 1.0])  # partial: ignored
        assert not ledger.maybe_rebalance(1)
        ledger.observe([1.0, 1.0, 1.0, 4.0])
        assert ledger.maybe_rebalance(2)
        assert ledger.assignment()[3] < 12

    def test_invalid_entries_keep_old_estimate(self):
        ledger = BatchLedger(48, 4, alpha=1.0)
        ledger.observe([1.0, 1.0, 1.0, 4.0])
        before = ledger._costs.copy()
        ledger.observe([1.0, 1.0, 1.0, np.inf])
        assert ledger._costs[3] == before[3]
        ledger.observe([1.0, 1.0, 1.0, -2.0])
        assert ledger._costs[3] == before[3]

    def test_ewma_smoothing(self):
        ledger = BatchLedger(48, 2, alpha=0.5)
        ledger.observe([1.0, 1.0])
        ledger.observe([1.0, 3.0])
        assert ledger._costs[1] == pytest.approx(2.0)  # 0.5*3 + 0.5*1

    def test_observation_shape_checked(self):
        ledger = BatchLedger(48, 4)
        with pytest.raises(ValueError, match="4 cost entries"):
            ledger.observe([1.0, 1.0])


class TestHysteresis:
    def test_noise_inside_deadband_is_ignored(self):
        ledger = BatchLedger(48, 4, alpha=1.0, hysteresis=0.25)
        ledger.observe([1.0, 1.0, 1.0, 1.05])  # ~0.6-sample shift << 3-sample band
        assert not ledger.maybe_rebalance(1)
        assert ledger.assignment() == [12, 12, 12, 12]
        assert ledger.rebalances == 0

    def test_real_straggler_crosses_deadband(self):
        ledger = BatchLedger(48, 4, alpha=1.0, hysteresis=0.25)
        ledger.observe([1.0, 1.0, 1.0, 2.0])
        assert ledger.maybe_rebalance(1)
        assert ledger.rebalances == 1
        assert sum(ledger.assignment()) == 48

    def test_rebalance_cadence(self):
        ledger = BatchLedger(48, 4, alpha=1.0, hysteresis=0.0, rebalance_every=5)
        ledger.observe([1.0, 1.0, 1.0, 2.0])
        assert ledger.maybe_rebalance(1)
        ledger.observe([2.0, 1.0, 1.0, 1.0])  # big change, but inside the cadence
        assert not ledger.maybe_rebalance(3)
        assert ledger.maybe_rebalance(6)

    def test_history_records_skipped_and_applied(self):
        ledger = BatchLedger(48, 4, alpha=1.0, hysteresis=0.25)
        ledger.observe([1.0, 1.0, 1.0, 1.01])
        ledger.maybe_rebalance(1)
        ledger.observe([1.0, 1.0, 1.0, 3.0])
        ledger.maybe_rebalance(2)
        assert [h["applied"] for h in ledger.history] == [False, True]
        assert all(sum(h["assignment"]) == 48 for h in ledger.history)


class TestDeterminism:
    def test_two_ledgers_same_observations_identical_assignments(self):
        """The supervisor's congruence contract: every rank folds the same
        allgathered cost vectors and must reach the same assignment."""
        rng = np.random.default_rng(42)
        a = BatchLedger(100, 5, alpha=0.3, hysteresis=0.1)
        b = BatchLedger(100, 5, alpha=0.3, hysteresis=0.1)
        for step in range(30):
            costs = rng.uniform(0.5, 2.0, size=5)
            a.observe(costs)
            b.observe(costs)
            assert a.maybe_rebalance(step) == b.maybe_rebalance(step)
            assert a.assignment() == b.assignment()


class TestResize:
    def test_resize_resets_even_and_clears_costs(self):
        ledger = BatchLedger(48, 4, alpha=1.0, hysteresis=0.0)
        ledger.observe([1.0, 1.0, 1.0, 4.0])
        ledger.maybe_rebalance(1)
        ledger.resize(3)
        assert ledger.world_size == 3
        assert ledger.assignment() == [16, 16, 16]
        assert ledger._costs is None  # stale slots do not map across worlds
        assert ledger.history[-1] == {"resize": 3, "assignment": [16, 16, 16]}

    def test_resize_grow_keeps_global_batch(self):
        ledger = BatchLedger(48, 2)
        ledger.resize(6)
        assert sum(ledger.assignment()) == 48

    def test_resize_validates_floor(self):
        ledger = BatchLedger(8, 2, min_chunk=4)
        with pytest.raises(ValueError, match="at least min_chunk"):
            ledger.resize(4)


class TestDump:
    def test_dump_round_trips(self, tmp_path):
        ledger = BatchLedger(48, 4, alpha=1.0, hysteresis=0.0)
        ledger.observe([1.0, 1.0, 1.0, 2.0])
        ledger.maybe_rebalance(1)
        ledger.resize(3)
        out = ledger.dump(tmp_path / "ledger.json")
        data = json.loads(out.read_text())
        assert data["global_batch"] == 48
        assert data["world_size"] == 3
        assert data["rebalances"] == 1
        assert data["assignment"] == [16, 16, 16]
        assert len(data["history"]) == 2
