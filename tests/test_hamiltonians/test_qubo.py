"""QUBO translation: the Hamiltonian diagonal must equal the QUBO objective."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.exact import brute_force_ground_state
from repro.hamiltonians import IsingQUBO
from tests.conftest import enumerate_states

coef = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False)


class TestTranslation:
    def test_diagonal_equals_objective_random(self, rng):
        n = 6
        Q = rng.normal(size=(n, n))
        q = rng.normal(size=n)
        ham = IsingQUBO(Q, q, const=1.5)
        states = enumerate_states(n)
        assert np.allclose(ham.diagonal(states), ham.objective(states), atol=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(
        hnp.arrays(np.float64, (4, 4), elements=coef),
        hnp.arrays(np.float64, (4,), elements=coef),
        coef,
    )
    def test_diagonal_equals_objective_hypothesis(self, Q, q, c):
        ham = IsingQUBO(Q, q, const=c)
        states = enumerate_states(4)
        assert np.allclose(ham.diagonal(states), ham.objective(states), atol=1e-8)

    def test_linear_only(self):
        ham = IsingQUBO(np.zeros((3, 3)), np.array([1.0, -2.0, 3.0]))
        states = enumerate_states(3)
        assert np.allclose(
            ham.diagonal(states), states @ np.array([1.0, -2.0, 3.0])
        )

    def test_no_offdiagonal_entries(self, rng):
        ham = IsingQUBO(rng.normal(size=(4, 4)))
        nbrs, _ = ham.connected(np.zeros((1, 4)))
        assert nbrs.shape[1] == 0

    def test_ground_state_minimises_objective(self, rng):
        Q = rng.normal(size=(8, 8))
        ham = IsingQUBO(Q)
        energy, bits = brute_force_ground_state(ham)
        states = enumerate_states(8)
        assert energy == pytest.approx(ham.objective(states).min())
        assert ham.objective(bits[None])[0] == pytest.approx(energy)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            IsingQUBO(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            IsingQUBO(np.zeros((2, 2)), q=np.zeros(3))
