"""Combinatorial problem library: encodings verified against brute force."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.exact import brute_force_ground_state, spectral_gap
from repro.hamiltonians import (
    max_independent_set,
    number_partitioning,
    sherrington_kirkpatrick,
    vertex_cover,
)
from tests.conftest import enumerate_states


class TestSherringtonKirkpatrick:
    def test_purely_diagonal_symmetric(self):
        ham = sherrington_kirkpatrick(10, seed=1)
        assert ham.sparsity == 0
        assert np.allclose(ham.couplings, ham.couplings.T)

    def test_energy_scale(self):
        """Ground energy per spin approaches the Parisi constant ≈ -0.763;
        at n=14 finite-size effects leave it in [-1.0, -0.5]."""
        ham = sherrington_kirkpatrick(14, seed=3)
        e, _ = brute_force_ground_state(ham)
        assert -1.0 < e / 14 < -0.5

    def test_reproducible(self):
        a = sherrington_kirkpatrick(8, seed=5)
        b = sherrington_kirkpatrick(8, seed=5)
        assert np.array_equal(a.couplings, b.couplings)


class TestNumberPartitioning:
    def test_perfect_partition_reaches_zero(self):
        weights = np.array([3.0, 1.0, 1.0, 2.0, 2.0, 1.0])  # 5 vs 5
        ham = number_partitioning(weights)
        e, bits = brute_force_ground_state(ham)
        assert e == pytest.approx(0.0, abs=1e-9)
        diff = weights[bits == 1].sum() - weights[bits == 0].sum()
        assert diff == pytest.approx(0.0)

    def test_objective_is_squared_residual(self, rng):
        weights = rng.uniform(1, 10, size=7)
        ham = number_partitioning(weights)
        states = enumerate_states(7)
        signed = (1.0 - 2.0 * states) @ weights
        assert np.allclose(ham.diagonal(states), signed**2, atol=1e-8)

    def test_odd_total_cannot_be_zero(self):
        ham = number_partitioning(np.array([1.0, 1.0, 1.0]))
        e, _ = brute_force_ground_state(ham)
        assert e == pytest.approx(1.0)  # best diff = 1 → residual 1

    def test_validation(self):
        with pytest.raises(ValueError):
            number_partitioning(np.array([1.0]))


class TestMaxIndependentSet:
    def test_cycle_graph(self):
        g = nx.cycle_graph(7)
        ham = max_independent_set(g)
        e, bits = brute_force_ground_state(ham)
        assert -e == 3  # MIS of C7 is 3
        # Solution must actually be independent.
        chosen = [v for v in range(7) if bits[v] == 1.0]
        assert not any(g.has_edge(u, v) for u in chosen for v in chosen if u != v)

    def test_complete_graph(self):
        ham = max_independent_set(nx.complete_graph(6))
        e, _ = brute_force_ground_state(ham)
        assert -e == 1

    def test_matches_networkx_on_random_graphs(self):
        for seed in range(3):
            g = nx.gnp_random_graph(10, 0.4, seed=seed)
            ham = max_independent_set(g)
            e, _ = brute_force_ground_state(ham)
            # networkx exact complement-clique route:
            best = max(
                len(c) for c in nx.find_cliques(nx.complement(g))
            ) if g.number_of_nodes() else 0
            assert -e == best

    def test_penalty_validation(self):
        with pytest.raises(ValueError):
            max_independent_set(nx.path_graph(3), penalty=1.0)
        with pytest.raises(ValueError):
            max_independent_set(nx.Graph())


class TestVertexCover:
    def test_star_graph(self):
        ham = vertex_cover(nx.star_graph(5))  # centre covers everything
        e, bits = brute_force_ground_state(ham)
        assert e == pytest.approx(1.0)

    def test_cover_complements_independent_set(self):
        """König-free identity: |min VC| = n − |MIS| on any graph."""
        for seed in range(3):
            g = nx.gnp_random_graph(9, 0.35, seed=seed)
            vc_e, _ = brute_force_ground_state(vertex_cover(g))
            mis_e, _ = brute_force_ground_state(max_independent_set(g))
            assert vc_e == pytest.approx(9 + mis_e)  # mis_e = -|MIS|

    def test_cover_is_valid(self):
        g = nx.gnp_random_graph(8, 0.5, seed=1)
        _, bits = brute_force_ground_state(vertex_cover(g))
        covered = {v for v in range(8) if bits[v] == 1.0}
        assert all(u in covered or v in covered for u, v in g.edges())


class TestSpectralGap:
    def test_gap_of_known_two_level_system(self):
        from repro.hamiltonians import ZZXHamiltonian

        # Single spin in transverse field Γ: spectrum ±Γ → gap 2Γ.
        ham = ZZXHamiltonian(
            alpha=np.array([0.7]), beta=np.zeros(1), couplings=np.zeros((1, 1))
        )
        assert spectral_gap(ham) == pytest.approx(1.4)

    def test_degenerate_ground_space_gap_zero(self):
        from repro.hamiltonians import MaxCut

        # Max-Cut always has the x ↔ 1-x symmetry → doubly degenerate.
        ham = MaxCut.random(8, seed=2)
        assert spectral_gap(ham) == pytest.approx(0.0, abs=1e-9)

    def test_tfim_gap_positive(self, small_tim):
        assert spectral_gap(small_tim) > 0.0
