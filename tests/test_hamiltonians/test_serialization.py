"""Instance (de)serialisation: every family must round-trip bit-exactly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hamiltonians import (
    IsingQUBO,
    LatticeTFIM,
    MaxCut,
    PauliStringHamiltonian,
    PauliTerm,
    TransverseFieldIsing,
    ZZXHamiltonian,
    from_dict,
    load_instance,
    save_instance,
    to_dict,
)
from tests.conftest import enumerate_states


def _assert_same_operator(a, b, n: int) -> None:
    states = enumerate_states(n)
    assert np.allclose(a.diagonal(states), b.diagonal(states), atol=1e-12)
    na, aa = a.connected(states)
    nb, ab = b.connected(states)
    assert np.array_equal(na, nb)
    assert np.allclose(aa, ab, atol=1e-12)


class TestRoundTrips:
    def test_tim(self):
        ham = TransverseFieldIsing.random(6, seed=4)
        back = from_dict(to_dict(ham))
        assert isinstance(back, TransverseFieldIsing)
        _assert_same_operator(ham, back, 6)

    def test_zzx_with_offset(self):
        ham = ZZXHamiltonian(
            alpha=np.array([0.5, 0.0, 1.0]),
            beta=np.array([-0.3, 0.2, 0.0]),
            couplings=np.zeros((3, 3)),
            offset=2.5,
        )
        back = from_dict(to_dict(ham))
        _assert_same_operator(ham, back, 3)
        assert back.offset == 2.5

    def test_maxcut(self):
        ham = MaxCut.random(7, seed=1)
        back = from_dict(to_dict(ham))
        assert isinstance(back, MaxCut)
        states = enumerate_states(7)
        assert np.allclose(ham.cut_value(states), back.cut_value(states))

    def test_lattice(self):
        ham = LatticeTFIM((3, 3), coupling=0.8, field=1.2, periodic=True)
        back = from_dict(to_dict(ham))
        assert isinstance(back, LatticeTFIM)
        assert back.shape == (3, 3)
        _assert_same_operator(ham, back, 9)

    def test_qubo(self, rng):
        ham = IsingQUBO(rng.normal(size=(5, 5)), rng.normal(size=5), const=1.5)
        back = from_dict(to_dict(ham))
        states = enumerate_states(5)
        assert np.allclose(ham.objective(states), back.objective(states))

    def test_pauli(self):
        ham = PauliStringHamiltonian(
            4,
            [PauliTerm(-1.0, z_sites=(0, 1)), PauliTerm(-0.5, x_sites=(2, 3))],
        )
        back = from_dict(to_dict(ham))
        _assert_same_operator(ham, back, 4)


class TestFiles:
    def test_save_load_file(self, tmp_path):
        ham = TransverseFieldIsing.random(5, seed=9)
        path = tmp_path / "instance.json"
        save_instance(ham, path)
        back = load_instance(path)
        _assert_same_operator(ham, back, 5)

    def test_json_is_portable_text(self, tmp_path):
        import json

        ham = MaxCut.random(4, seed=0)
        path = tmp_path / "mc.json"
        save_instance(ham, path)
        payload = json.loads(path.read_text())
        assert payload["kind"] == "maxcut"


class TestErrors:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            from_dict({"format": 1, "kind": "warp-drive"})

    def test_bad_format_version(self):
        with pytest.raises(ValueError):
            from_dict({"format": 99, "kind": "maxcut"})

    def test_unserialisable_type(self):
        class Weird(ZZXHamiltonian.__mro__[1]):  # plain Hamiltonian subclass
            def __init__(self):
                super().__init__(2)

        with pytest.raises(TypeError):
            to_dict(Weird())
