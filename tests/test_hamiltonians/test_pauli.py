"""General Pauli-string Hamiltonians: matrix elements vs Kronecker products,
stoquasticity checks, equivalence with the ZZX family."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exact import ground_state
from repro.hamiltonians import (
    PauliStringHamiltonian,
    PauliTerm,
    TransverseFieldIsing,
)


def kron_pauli(n: int, terms) -> np.ndarray:
    """Independent dense construction via Kronecker products."""
    I = np.eye(2)
    X = np.array([[0.0, 1.0], [1.0, 0.0]])
    Z = np.array([[1.0, 0.0], [0.0, -1.0]])
    H = np.zeros((2**n, 2**n))
    for t in terms:
        mats = [I] * n
        for s in t.z_sites:
            mats[s] = Z
        for s in t.x_sites:
            mats[s] = X
        full = mats[0]
        for m in mats[1:]:
            full = np.kron(full, m)
        H += t.coefficient * full
    return H


class TestMatrixElements:
    def test_matches_kron_random_terms(self, rng):
        n = 5
        terms = [
            PauliTerm(-0.7, z_sites=(0, 2)),
            PauliTerm(-0.3, x_sites=(1,)),
            PauliTerm(-0.5, x_sites=(3, 4)),  # two-site flip
            PauliTerm(0.9, z_sites=(1,)),
            PauliTerm(-0.2, z_sites=(0,), x_sites=(2,)),  # mixed
        ]
        with pytest.warns(UserWarning):  # mixed term → non-stoquastic warning
            ham = PauliStringHamiltonian(n, terms)
        assert np.allclose(ham.to_dense(), kron_pauli(n, terms), atol=1e-12)

    def test_symmetric(self):
        terms = [PauliTerm(-0.4, z_sites=(0,), x_sites=(1, 2))]
        with pytest.warns(UserWarning):
            ham = PauliStringHamiltonian(4, terms)
        mat = ham.to_dense()
        assert np.allclose(mat, mat.T)

    def test_equivalent_to_tfim(self):
        """Eq. 11 expressed as Pauli strings must match ZZXHamiltonian."""
        tfim = TransverseFieldIsing.random(4, seed=7)
        terms = []
        for i in range(4):
            if tfim.alpha[i]:
                terms.append(PauliTerm(-tfim.alpha[i], x_sites=(i,)))
            if tfim.beta[i]:
                terms.append(PauliTerm(-tfim.beta[i], z_sites=(i,)))
        for i in range(4):
            for j in range(i + 1, 4):
                if tfim.couplings[i, j]:
                    terms.append(PauliTerm(-tfim.couplings[i, j], z_sites=(i, j)))
        ham = PauliStringHamiltonian(4, terms)
        assert np.allclose(ham.to_dense(), tfim.to_dense(), atol=1e-12)

    def test_string_parsing(self):
        term = PauliTerm.parse("Z0 X2 Z3", -1.5)
        assert term.z_sites == (0, 3)
        assert term.x_sites == (2,)
        assert term.coefficient == -1.5
        ham = PauliStringHamiltonian(4, [("Z0 Z1", -1.0), ("X2", -0.5)])
        assert len(ham.terms) == 2

    def test_ground_state_with_vqmc(self, rng):
        """An XX-coupled model (beyond Eq. 11) optimises end to end."""
        from repro.core import VQMC
        from repro.models import MADE
        from repro.optim import SGD, StochasticReconfiguration
        from repro.samplers import AutoregressiveSampler

        n = 6
        terms = [PauliTerm(-1.0, z_sites=(i, i + 1)) for i in range(n - 1)]
        terms += [PauliTerm(-0.5, x_sites=(i, i + 1)) for i in range(n - 1)]
        terms += [PauliTerm(-0.3, x_sites=(i,)) for i in range(n)]
        ham = PauliStringHamiltonian(n, terms)
        assert ham.is_stoquastic()
        exact = ground_state(ham).energy
        # This landscape has a plateau that traps short Adam runs around 6%
        # above the ground state; SR with a decent batch escapes it.
        model = MADE(n, hidden=32, rng=rng)
        vqmc = VQMC(model, ham, AutoregressiveSampler(),
                    SGD(model.parameters(), lr=0.05),
                    sr=StochasticReconfiguration(), seed=1)
        vqmc.run(300, batch_size=512)
        final = vqmc.evaluate(2048).mean
        assert abs(final - exact) / abs(exact) < 0.02


class TestValidation:
    def test_y_operator_rejected(self):
        with pytest.raises(ValueError):
            PauliTerm(1.0, z_sites=(0,), x_sites=(0,))

    def test_duplicate_sites_rejected(self):
        with pytest.raises(ValueError):
            PauliTerm(1.0, z_sites=(1, 1))
        with pytest.raises(ValueError):
            PauliTerm(1.0, x_sites=(2, 2))

    def test_out_of_range_sites(self):
        with pytest.raises(ValueError):
            PauliStringHamiltonian(3, [PauliTerm(-1.0, x_sites=(5,))])

    def test_bad_parse_token(self):
        with pytest.raises(ValueError):
            PauliTerm.parse("Y0", 1.0)


class TestStoquasticity:
    def test_negative_x_terms_are_stoquastic(self):
        ham = PauliStringHamiltonian(3, [PauliTerm(-1.0, x_sites=(0,))])
        assert ham.is_stoquastic()

    def test_positive_x_term_is_not(self):
        with pytest.warns(UserWarning):
            ham = PauliStringHamiltonian(3, [PauliTerm(+1.0, x_sites=(0,))])
        assert not ham.is_stoquastic()

    def test_mixed_zx_term_is_not(self):
        with pytest.warns(UserWarning):
            ham = PauliStringHamiltonian(
                3, [PauliTerm(-1.0, z_sites=(0,), x_sites=(1,))]
            )
        assert not ham.is_stoquastic()

    def test_cancelling_terms_ok(self):
        """-2·X0 + Z1X0 has summed coefficients -2±1 ≤ 0 for both signs."""
        ham = PauliStringHamiltonian(
            2,
            [PauliTerm(-2.0, x_sites=(0,)), PauliTerm(1.0, z_sites=(1,), x_sites=(0,))],
        )
        assert ham.is_stoquastic()
        off = ham.to_dense() - np.diag(np.diag(ham.to_dense()))
        assert np.all(off <= 1e-12)

    def test_stoquastic_check_matches_dense(self, rng):
        """Property: is_stoquastic ⇔ all dense off-diagonals ≤ 0."""
        for seed in range(8):
            r = np.random.default_rng(seed)
            terms = []
            for _ in range(4):
                sites = r.choice(4, size=2, replace=False)
                kind = r.integers(0, 3)
                c = float(r.normal())
                if kind == 0:
                    terms.append(PauliTerm(c, z_sites=tuple(sites)))
                elif kind == 1:
                    terms.append(PauliTerm(c, x_sites=tuple(sites)))
                else:
                    terms.append(PauliTerm(c, z_sites=(int(sites[0]),),
                                           x_sites=(int(sites[1]),)))
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                ham = PauliStringHamiltonian(4, terms)
            mat = ham.to_dense()
            off_max = (mat - np.diag(np.diag(mat))).max()
            assert ham.is_stoquastic() == (off_max <= 1e-12), f"seed {seed}"
