"""ZZX Hamiltonian family: matrix elements must match an independent Pauli
construction (Eq. 11 ⇔ Eq. 13)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hamiltonians import TransverseFieldIsing, ZZXHamiltonian
from repro.hamiltonians.base import bits_to_index, bits_to_spins, index_to_bits, spins_to_bits


def pauli_matrix(alpha, beta, couplings):
    """Independent dense construction of Eq. 11 via Kronecker products."""
    n = len(alpha)
    I = np.eye(2)
    X = np.array([[0.0, 1.0], [1.0, 0.0]])
    Z = np.array([[1.0, 0.0], [0.0, -1.0]])

    def kron_at(op, i):
        mats = [I] * n
        mats[i] = op
        out = mats[0]
        for m in mats[1:]:
            out = np.kron(out, m)
        return out

    H = np.zeros((2**n, 2**n))
    for i in range(n):
        H -= alpha[i] * kron_at(X, i) + beta[i] * kron_at(Z, i)
    for i in range(n):
        for j in range(i + 1, n):
            H -= couplings[i, j] * (kron_at(Z, i) @ kron_at(Z, j))
    return H


class TestAgainstPauliConstruction:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_dense_matches_kron(self, seed):
        ham = TransverseFieldIsing.random(5, seed=seed)
        ours = ham.to_dense()
        ref = pauli_matrix(ham.alpha, ham.beta, ham.couplings)
        assert np.allclose(ours, ref, atol=1e-12)

    def test_sparse_matches_dense(self):
        ham = TransverseFieldIsing.random(6, seed=3)
        assert np.allclose(ham.to_sparse().toarray(), ham.to_dense())

    def test_symmetric(self):
        mat = TransverseFieldIsing.random(6, seed=4).to_dense()
        assert np.allclose(mat, mat.T)

    def test_offdiagonal_nonpositive(self):
        """Perron–Frobenius condition: all off-diagonal entries ≤ 0."""
        mat = TransverseFieldIsing.random(5, seed=5).to_dense()
        off = mat - np.diag(np.diag(mat))
        assert np.all(off <= 1e-15)


class TestRowInterface:
    def test_sparsity_counts_nonzero_alpha(self):
        ham = ZZXHamiltonian(
            alpha=np.array([1.0, 0.0, 2.0]),
            beta=np.zeros(3),
            couplings=np.zeros((3, 3)),
        )
        assert ham.sparsity == 2

    def test_connected_flips_one_bit(self, rng):
        ham = TransverseFieldIsing.random(6, seed=1)
        x = (rng.random((4, 6)) < 0.5).astype(float)
        nbrs, amps = ham.connected(x)
        assert nbrs.shape == (4, 6, 6)
        diffs = (nbrs != x[:, None, :]).sum(axis=2)
        assert np.all(diffs == 1)
        assert np.allclose(amps, -ham.alpha)

    def test_diagonal_matches_dense(self, rng):
        ham = TransverseFieldIsing.random(5, seed=2)
        mat = ham.to_dense()
        states = index_to_bits(np.arange(32), 5)
        assert np.allclose(ham.diagonal(states), np.diag(mat))

    def test_validation_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            ZZXHamiltonian(np.array([-1.0]), np.zeros(1), np.zeros((1, 1)))
        with pytest.raises(ValueError):
            ZZXHamiltonian(np.ones(2), np.zeros(3), np.zeros((2, 2)))
        asym = np.array([[0.0, 1.0], [0.5, 0.0]])
        with pytest.raises(ValueError):
            ZZXHamiltonian(np.ones(2), np.zeros(2), asym)
        diag = np.array([[1.0, 0.0], [0.0, 0.0]])
        with pytest.raises(ValueError):
            ZZXHamiltonian(np.ones(2), np.zeros(2), diag)


class TestConventions:
    def test_bits_spins_roundtrip(self, rng):
        x = (rng.random((5, 7)) < 0.5).astype(float)
        assert np.array_equal(spins_to_bits(bits_to_spins(x)), x)

    def test_bit_zero_is_spin_up(self):
        assert bits_to_spins(np.array([0.0]))[0] == 1.0

    def test_index_bits_roundtrip(self):
        idx = np.arange(16)
        assert np.array_equal(bits_to_index(index_to_bits(idx, 4)), idx)

    def test_big_endian(self):
        bits = index_to_bits(np.array([4]), 3)  # 100
        assert np.array_equal(bits[0], [1.0, 0.0, 0.0])


class TestDisorder:
    def test_distributions(self):
        ham = TransverseFieldIsing.random(200, seed=8)
        assert ham.alpha.min() >= 0.0 and ham.alpha.max() <= 1.0
        assert ham.beta.min() >= -1.0 and ham.beta.max() <= 1.0
        upper = ham.couplings[np.triu_indices(200, 1)]
        assert abs(upper.mean()) < 0.05  # U(-1,1) mean ≈ 0

    def test_reproducible_by_seed(self):
        a = TransverseFieldIsing.random(10, seed=5)
        b = TransverseFieldIsing.random(10, seed=5)
        assert np.array_equal(a.alpha, b.alpha)
        assert np.array_equal(a.couplings, b.couplings)
