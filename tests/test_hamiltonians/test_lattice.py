"""Lattice TFIM: bond construction and the Jordan-Wigner exact energy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exact import ground_state
from repro.hamiltonians import LatticeTFIM, tfim_chain_exact_energy


class TestChain:
    def test_open_chain_bonds(self):
        ham = LatticeTFIM((5,), periodic=False)
        assert ham.bonds == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_periodic_chain_adds_wraparound(self):
        ham = LatticeTFIM((5,), periodic=True)
        assert (0, 4) in ham.bonds
        assert len(ham.bonds) == 5

    @pytest.mark.parametrize("n", [4, 6, 8, 10, 12])
    @pytest.mark.parametrize("field", [0.3, 1.0, 2.5])
    def test_jordan_wigner_matches_exact_diagonalisation(self, n, field):
        ham = LatticeTFIM((n,), coupling=1.0, field=field)
        gs = ground_state(ham)
        jw = tfim_chain_exact_energy(n, 1.0, field)
        assert gs.energy == pytest.approx(jw, abs=1e-9)

    def test_jw_scales_to_huge_chains(self):
        """The point of the closed form: ground truth at any size."""
        e = tfim_chain_exact_energy(100000, 1.0, 1.0)
        # At criticality E0/n → -4/π.
        assert e / 100000 == pytest.approx(-4.0 / np.pi, abs=1e-8)

    def test_vqmc_reaches_jw_energy(self, rng):
        from repro.core import VQMC
        from repro.models import MADE
        from repro.optim import SGD, StochasticReconfiguration
        from repro.samplers import AutoregressiveSampler

        n = 8
        ham = LatticeTFIM((n,), coupling=1.0, field=1.0)
        model = MADE(n, hidden=16, rng=rng)
        vqmc = VQMC(
            model, ham, AutoregressiveSampler(),
            SGD(model.parameters(), lr=0.1),
            sr=StochasticReconfiguration(), seed=2,
        )
        vqmc.run(200, batch_size=512)
        final = vqmc.evaluate(2048)
        exact = tfim_chain_exact_energy(n)
        assert abs(final.mean - exact) / abs(exact) < 0.02


class TestGrid:
    def test_grid_bond_count_open(self):
        ham = LatticeTFIM((3, 4), periodic=False)
        # open 3x4 grid: 2*4 + 3*3 = 17 bonds
        assert len(ham.bonds) == 17

    def test_grid_bond_count_periodic(self):
        ham = LatticeTFIM((3, 4), periodic=True)
        # torus: 2 * Lx * Ly bonds
        assert len(ham.bonds) == 24

    def test_2x2_periodic_skips_double_bonds(self):
        # Wrap bonds on a length-2 axis would duplicate existing bonds.
        ham = LatticeTFIM((2, 2), periodic=True)
        assert len(set(ham.bonds)) == len(ham.bonds)
        assert len(ham.bonds) == 4

    def test_grid_ground_state_ferromagnetic_limit(self):
        """Γ → 0: ground energy = -J × (#bonds) (all spins aligned)."""
        ham = LatticeTFIM((2, 3), coupling=1.0, field=1e-8, periodic=False)
        gs = ground_state(ham)
        assert gs.energy == pytest.approx(-len(ham.bonds), abs=1e-6)


class TestValidation:
    def test_negative_field_rejected(self):
        with pytest.raises(ValueError):
            LatticeTFIM((4,), field=-1.0)

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            LatticeTFIM((1,))
        with pytest.raises(ValueError):
            LatticeTFIM((2, 2, 2))
        with pytest.raises(ValueError):
            LatticeTFIM((1, 5))
        with pytest.raises(ValueError):
            tfim_chain_exact_energy(1)
