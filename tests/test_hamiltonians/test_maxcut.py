"""Max-Cut Hamiltonian: cut values, graph construction, paper's instances."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.exact import brute_force_max_cut, ground_state
from repro.hamiltonians import MaxCut, bernoulli_adjacency
from tests.conftest import enumerate_states


class TestCutValues:
    def test_cut_equals_minus_diagonal(self, small_maxcut, rng):
        x = (rng.random((10, 8)) < 0.5).astype(float)
        assert np.allclose(small_maxcut.cut_value(x), -small_maxcut.diagonal(x))

    def test_cut_value_by_edge_counting(self, small_maxcut):
        states = enumerate_states(8)
        w = small_maxcut.adjacency
        expect = np.zeros(len(states))
        for i in range(8):
            for j in range(i + 1, 8):
                expect += w[i, j] * (states[:, i] != states[:, j])
        assert np.allclose(small_maxcut.cut_value(states), expect)

    def test_empty_and_full_partitions_cut_nothing(self, small_maxcut):
        zeros = np.zeros((1, 8))
        ones = np.ones((1, 8))
        assert small_maxcut.cut_value(zeros)[0] == 0.0
        assert small_maxcut.cut_value(ones)[0] == 0.0

    def test_ground_energy_is_minus_max_cut(self, small_maxcut):
        opt, _ = brute_force_max_cut(small_maxcut.adjacency)
        gs = ground_state(small_maxcut)
        assert gs.energy == pytest.approx(-opt)

    def test_purely_diagonal(self, small_maxcut, rng):
        x = (rng.random((3, 8)) < 0.5).astype(float)
        nbrs, amps = small_maxcut.connected(x)
        assert nbrs.shape[1] == 0 and amps.shape[1] == 0
        assert small_maxcut.sparsity == 0


class TestConstruction:
    def test_rejects_asymmetric(self):
        w = np.array([[0.0, 1.0], [0.0, 0.0]])
        with pytest.raises(ValueError):
            MaxCut(w)

    def test_rejects_self_loops(self):
        w = np.array([[1.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError):
            MaxCut(w)

    def test_from_networkx_graph(self):
        g = nx.Graph()
        g.add_edge("a", "b", weight=2.0)
        g.add_edge("b", "c")
        mc = MaxCut.from_graph(g)
        assert mc.total_weight == 3.0
        # Best cut: separate b from {a, c} → 3.0
        best = max(mc.cut_value(enumerate_states(3)))
        assert best == pytest.approx(3.0)

    def test_weighted_triangle(self):
        w = np.array([[0, 1, 2], [1, 0, 3], [2, 3, 0]], dtype=float)
        mc = MaxCut(w)
        opt, _ = brute_force_max_cut(w)
        assert opt == 5.0  # cut {2} vs {0,1}: 2+3
        assert ground_state(mc).energy == pytest.approx(-5.0)


class TestPaperInstances:
    def test_adjacency_binary_symmetric_hollow(self):
        w = bernoulli_adjacency(50, seed=0)
        assert set(np.unique(w)) <= {0.0, 1.0}
        assert np.allclose(w, w.T)
        assert np.all(np.diag(w) == 0.0)

    def test_density_matches_and_rule(self):
        """rint((B+Bᵀ)/2) keeps an edge iff both directed flips landed heads
        (banker's rounding sends 0.5 → 0), giving density ≈ p² = 0.25 —
        consistent with Table 2's Random-cut row (≈|E|/2)."""
        w = bernoulli_adjacency(500, seed=1)
        density = np.triu(w, 1).sum() / (500 * 499 / 2)
        assert abs(density - 0.25) < 0.02

    def test_random_cut_expectation_matches_table2_scale(self):
        """Table 2, n=500: Random ≈ 15696 ≈ half the edges of our instances."""
        w = bernoulli_adjacency(500, seed=2)
        expected_random_cut = np.triu(w, 1).sum() / 2.0
        assert 14000 < expected_random_cut < 17000
