"""Instrumentation hooks: VQMC phases, collectives, sampler, checkpoints,
and the hardened RunLogger/ObsCallback sinks.

The contract under test is coverage + closure: every instrumented code
path emits its named span, spans close even when the instrumented
operation raises (fault-injected collectives included), and the sinks
flush their footers when training dies mid-run.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import VQMC, VQMCConfig
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.distributed import (
    FaultEvent,
    FaultPlan,
    FaultyCommunicator,
    ResilientCommunicator,
    SerialCommunicator,
    run_threaded,
)
from repro.distributed.faults import InjectedRankCrash
from repro.hamiltonians import TransverseFieldIsing
from repro.models import MADE
from repro.obs import ObsCallback, Tracer
from repro.optim import SGD, StochasticReconfiguration
from repro.samplers import AutoregressiveSampler
from repro.utils.runlog import RunLogger

pytestmark = pytest.mark.obs


def _make_vqmc(tracer=None, sr=False, mode="per_sample", n=6, comm=None, seed=7):
    model = MADE(n, hidden=12, rng=np.random.default_rng(3))
    return VQMC(
        model,
        TransverseFieldIsing.random(n, seed=99),
        AutoregressiveSampler(),
        SGD(model.parameters(), lr=0.05),
        sr=StochasticReconfiguration() if sr else None,
        comm=comm,
        seed=seed,
        config=VQMCConfig(gradient_mode=mode),
        tracer=tracer,
    )


class TestVQMCPhases:
    def test_per_sample_phases_present_and_tiled(self):
        tracer = Tracer()
        _make_vqmc(tracer, sr=True).run(3, batch_size=64)
        top = tracer.totals(depth=0)
        assert list(top) == ["step"] and top["step"]["count"] == 3
        phases = tracer.totals(depth=1)
        assert set(phases) == {
            "sample", "local_energy", "gradient", "sr_solve", "optimizer",
        }
        assert tracer.open_spans() == 0

    def test_autograd_phases_present(self):
        tracer = Tracer()
        _make_vqmc(tracer, mode="autograd").run(2, batch_size=64)
        phases = tracer.totals(depth=1)
        assert set(phases) == {"sample", "local_energy", "gradient", "optimizer"}

    def test_no_tracer_means_null_tracer(self):
        vqmc = _make_vqmc(tracer=None)
        assert vqmc.tracer.enabled is False
        vqmc.step(batch_size=32)  # still runs, records nothing
        assert vqmc.tracer.events == []

    def test_step_span_carries_step_and_batch(self):
        tracer = Tracer()
        vqmc = _make_vqmc(tracer)
        vqmc.step(batch_size=32)
        (step,) = [ev for ev in tracer.events if ev.name == "step"]
        assert step.attrs["step"] == 0 and step.attrs["batch"] == 32


class TestSamplerSpans:
    def test_autoregressive_fast_path_is_spanned(self):
        tracer = Tracer()
        _make_vqmc(tracer).step(batch_size=64)
        names = {ev.name for ev in tracer.events}
        # MADE supports incremental sampling, so the fast path must be taken
        assert "sample.incremental" in names
        (ev,) = [e for e in tracer.events if e.name == "sample.incremental"]
        assert ev.attrs["batch"] == 64 and ev.attrs["n"] == 6


class TestCommSpans:
    def test_serial_collectives_spanned_with_bytes(self):
        comm = SerialCommunicator()
        tracer = Tracer()
        comm.attach_tracer(tracer)
        arr = np.ones(100)
        comm.allreduce(arr)
        comm.broadcast(arr)
        (ar,) = [e for e in tracer.events if e.name == "comm.allreduce"]
        assert ar.attrs["bytes"] == arr.nbytes and ar.attrs["op"] == "sum"
        (bc,) = [e for e in tracer.events if e.name == "comm.broadcast"]
        assert bc.attrs["bytes"] == arr.nbytes and bc.attrs["root"] == 0

    def test_collective_payload_accounting_in_stats(self):
        comm = SerialCommunicator()
        arr = np.ones(64)
        comm.allreduce(arr)
        comm.allgather(arr)
        snap = comm.stats.snapshot()
        assert snap["collective_calls"] == 2
        assert snap["collective_bytes"] == 2 * arr.nbytes
        comm.stats.reset()
        assert comm.stats.snapshot()["collective_calls"] == 0

    def test_threads_backend_spans_every_rank(self):
        def worker(comm, rank):
            tracer = Tracer(rank=rank)
            comm.attach_tracer(tracer)
            comm.allreduce(np.ones(32))
            (ev,) = [e for e in tracer.events if e.name == "comm.allreduce"]
            return (tracer.open_spans(), ev.attrs["bytes"], ev.attrs["algorithm"])

        for open_count, nbytes, algorithm in run_threaded(worker, 4):
            assert open_count == 0 and nbytes == 32 * 8
            assert isinstance(algorithm, str) and algorithm

    def test_resilient_wrapper_reports_through_outer_tracer(self):
        def worker(comm, rank):
            resilient = ResilientCommunicator(comm)
            tracer = Tracer(rank=rank)
            resilient.attach_tracer(tracer)
            resilient.allreduce(np.ones(8))
            return sorted({e.name for e in tracer.events})

        for names in run_threaded(worker, 2):
            assert "comm.allreduce" in names

    def test_span_closes_when_injected_fault_kills_the_collective(self):
        plan = FaultPlan([FaultEvent(kind="crash", rank=1, index=0, op="any")])

        def worker(comm, rank):
            faulty = FaultyCommunicator(comm, plan)
            tracer = Tracer(rank=rank)
            faulty.attach_tracer(tracer)
            try:
                faulty.allreduce(np.ones(16))
                outcome = "ok"
            except Exception as exc:  # noqa: BLE001 — recording the kind
                outcome = type(exc).__name__
            spans = [e for e in tracer.events if e.name == "comm.allreduce"]
            return (outcome, tracer.open_spans(), spans[0].attrs if spans else None)

        results = dict()
        for rank, (outcome, open_count, attrs) in enumerate(run_threaded(worker, 2)):
            assert open_count == 0, "fault must not leak an open span"
            results[rank] = (outcome, attrs)
        outcome, attrs = results[1]
        assert outcome == InjectedRankCrash.__name__
        # the span closed exceptionally and says so
        assert attrs is not None and attrs["error"] == InjectedRankCrash.__name__


class TestCheckpointSpans:
    def test_save_and_restore_are_spanned(self, tmp_path):
        tracer = Tracer()
        vqmc = _make_vqmc(tracer)
        vqmc.step(batch_size=32)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(vqmc, path)
        load_checkpoint(vqmc, path)
        (save,) = [e for e in tracer.events if e.name == "checkpoint.save"]
        (restore,) = [e for e in tracer.events if e.name == "checkpoint.restore"]
        assert save.attrs["step"] == 1
        assert save.attrs["bytes"] == path.stat().st_size
        assert restore.attrs["bytes"] == path.stat().st_size

    def test_checkpoint_without_tracer_still_works(self, tmp_path):
        vqmc = _make_vqmc(tracer=None)
        save_checkpoint(vqmc, tmp_path / "c.npz")
        load_checkpoint(vqmc, tmp_path / "c.npz")


class TestObsCallback:
    def test_jsonl_stream_and_chrome_file(self, tmp_path):
        tracer = Tracer(rank=0)
        vqmc = _make_vqmc(tracer)
        cb = ObsCallback(tracer, tmp_path)
        vqmc.run(3, batch_size=32, callbacks=[cb])
        records = RunLogger.read(cb.jsonl_path)
        assert records[0]["event"] == "trace_begin"
        steps = [r for r in records if r["event"] == "trace_step"]
        assert len(steps) == 3
        for rec in steps:
            assert rec["step_time"] > 0
            assert rec["phases"]["sample"] > 0
        assert records[-1]["event"] == "trace_end"
        assert records[-1]["span_count"] == len(tracer.events)
        assert cb.chrome_path.exists()
        assert json.loads(cb.chrome_path.read_text())["metadata"]["rank"] == 0

    def test_footer_and_chrome_written_when_training_raises(self, tmp_path):
        tracer = Tracer()
        vqmc = _make_vqmc(tracer)

        class Bomb:
            def on_run_begin(self, vqmc):
                pass

            def on_step(self, step, result):
                raise RuntimeError("mid-run death")

            def on_run_end(self, vqmc):
                pass

        cb = ObsCallback(tracer, tmp_path)
        with pytest.raises(RuntimeError, match="mid-run death"):
            vqmc.run(5, batch_size=32, callbacks=[cb, Bomb()])
        records = RunLogger.read(cb.jsonl_path)
        assert records[-1]["event"] == "trace_end"
        assert cb.chrome_path is not None and cb.chrome_path.exists()

    def test_cross_rank_skew_at_run_end(self, tmp_path_factory):
        outdir = tmp_path_factory.mktemp("skew")

        def worker(comm, rank):
            tracer = Tracer(rank=rank)
            vqmc = _make_vqmc(tracer, comm=comm, seed=100 + rank)
            cb = ObsCallback(tracer, outdir, comm=comm)
            vqmc.run(2, batch_size=32, callbacks=[cb])
            return cb.skew

        for skew in run_threaded(worker, 2):
            assert skew is not None and "sample" in skew
            assert skew["sample"]["skew"] >= 1.0


class TestRunLoggerHardening:
    def test_footer_written_when_run_raises(self, tmp_path):
        vqmc = _make_vqmc()
        logger = RunLogger(tmp_path / "run.jsonl")

        class Bomb:
            def on_run_begin(self, vqmc):
                pass

            def on_step(self, step, result):
                if step >= 2:
                    raise RuntimeError("boom")

            def on_run_end(self, vqmc):
                pass

        with pytest.raises(RuntimeError, match="boom"):
            vqmc.run(10, batch_size=32, callbacks=[logger, Bomb()])
        records = RunLogger.read(tmp_path / "run.jsonl")
        assert records[0]["event"] == "run_begin"
        assert records[-1]["event"] == "run_end"
        assert [r["event"] for r in records].count("step") == 2

    def test_on_run_end_is_idempotent(self, tmp_path):
        vqmc = _make_vqmc()
        logger = RunLogger(tmp_path / "run.jsonl")
        vqmc.run(1, batch_size=32, callbacks=[logger])
        logger.on_run_end(vqmc)  # second delivery: no crash, no extra footer
        records = RunLogger.read(tmp_path / "run.jsonl")
        assert [r["event"] for r in records].count("run_end") == 1

    def test_unserialisable_metadata_degrades_to_repr(self, tmp_path):
        vqmc = _make_vqmc()
        meta = {"arr": np.arange(3), "path": tmp_path}
        logger = RunLogger(tmp_path / "run.jsonl", meta=meta)
        vqmc.run(1, batch_size=32, callbacks=[logger])
        header = RunLogger.read(tmp_path / "run.jsonl")[0]
        assert isinstance(header["arr"], str)  # repr, not a crash
        assert isinstance(header["path"], str)
