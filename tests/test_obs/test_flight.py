"""Flight recorder: ring buffer, atomic CRC-stamped dumps, crash wiring.

The acceptance contract pinned here:

- the ring buffer holds exactly the last ``capacity`` step frames;
- a crash inside ``VQMC.run`` triggers ``on_crash`` before ``on_run_end``
  and leaves a valid, CRC-verified ``flight.rankNNN.json`` naming the
  exception and the last completed step;
- :func:`load_flight_dump` rejects truncated, tampered, and foreign files;
- a SIGUSR1 delivery dumps and then chains to the previous disposition;
- ``save_checkpoint`` embeds the :class:`HealthMonitor` report when one is
  riding the run.
"""

from __future__ import annotations

import json
import os
import signal

import numpy as np
import pytest

from repro.core import VQMC, VQMCConfig, save_checkpoint, verify_checkpoint
from repro.hamiltonians import TransverseFieldIsing
from repro.models import MADE
from repro.obs import (
    FlightDumpError,
    FlightRecorder,
    HealthMonitor,
    StepFrameBuilder,
    flight_file_name,
    load_flight_dump,
)
from repro.optim import SGD, StochasticReconfiguration
from repro.samplers import AutoregressiveSampler

pytestmark = pytest.mark.obs


def _make_vqmc(n=6, seed=7, sr=True):
    from repro.obs import Metrics

    model = MADE(n, hidden=10, rng=np.random.default_rng(3))
    return VQMC(
        model,
        TransverseFieldIsing.random(n, seed=9),
        AutoregressiveSampler(),
        SGD(model.parameters(), lr=0.05),
        sr=StochasticReconfiguration() if sr else None,
        seed=seed,
        config=VQMCConfig(gradient_mode="per_sample"),
        metrics=Metrics(),
    )


class _CrashAt:
    """Raise from on_step once the given step is reached."""

    def __init__(self, step):
        self.step = step

    def on_run_begin(self, vqmc):
        pass

    def on_run_end(self, vqmc):
        pass

    def on_step(self, step, result):
        if step >= self.step:
            raise RuntimeError("synthetic death")


class TestRingBuffer:
    def test_keeps_only_last_capacity_frames(self, tmp_path):
        fr = FlightRecorder(tmp_path, capacity=4, rank=0)
        vqmc = _make_vqmc()
        vqmc.run(7, batch_size=16, callbacks=[fr])
        assert fr.frames_seen == 7
        assert [f["step"] for f in fr.frames] == [4, 5, 6, 7]
        assert fr.last_step == 7

    def test_capacity_validated(self, tmp_path):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(tmp_path, capacity=0)

    def test_frames_carry_energy_sr_and_metric_deltas(self, tmp_path):
        fr = FlightRecorder(tmp_path, capacity=8, rank=0)
        vqmc = _make_vqmc()
        vqmc.run(2, batch_size=16, callbacks=[fr])
        frame = fr.frames[-1]
        for key in ("energy", "std", "sem", "grad_norm", "step_time", "phases"):
            assert key in frame, key
        assert frame["sr"]["solver"] in ("cg", "dense")
        assert "incomplete" in frame["sr"]
        # jit counters move every step -> deltas present, and they are
        # per-step deltas, not cumulative totals
        assert "gauges" in frame and "jit.arena_bytes" in frame["gauges"]


class TestStepFrameBuilder:
    def test_counter_deltas_not_cumulative(self):
        class FakeMetrics:
            def __init__(self):
                self.value = 0.0

            def snapshot(self):
                return {"counters": {"x": self.value}, "gauges": {}, "histograms": {}}

        class FakeResult:
            def __init__(self, vqmc):
                self.vqmc = vqmc

        class FakeVqmc:
            def __init__(self, metrics):
                self.metrics = metrics

        metrics = FakeMetrics()
        builder = StepFrameBuilder()
        vq = FakeVqmc(metrics)
        metrics.value = 5.0
        f1 = builder.build(1, FakeResult(vq))
        metrics.value = 7.0
        f2 = builder.build(2, FakeResult(vq))
        assert f1["metric_deltas"] == {"x": 5.0}
        assert f2["metric_deltas"] == {"x": 2.0}

    def test_nan_scalars_preserved(self):
        class R:
            grad_norm = float("nan")

        frame = StepFrameBuilder().build(3, R())
        assert frame["grad_norm"] != frame["grad_norm"]  # NaN survives


class TestCrashDump:
    def test_crash_produces_verified_dump(self, tmp_path):
        fr = FlightRecorder(tmp_path, capacity=16, rank=None)
        vqmc = _make_vqmc()
        with pytest.raises(RuntimeError, match="synthetic death"):
            vqmc.run(10, batch_size=16, callbacks=[fr, _CrashAt(5)])
        path = tmp_path / flight_file_name(0)
        assert path.exists()
        doc = load_flight_dump(path)  # verifies CRC
        body = doc["body"]
        assert body["reason"] == "RuntimeError"
        assert body["last_step"] == 5
        assert body["events"][-1]["kind"] == "crash"
        assert body["events"][-1]["error"] == "RuntimeError"
        assert [f["step"] for f in body["frames"]] == [1, 2, 3, 4, 5]

    def test_clean_run_dumps_only_when_asked(self, tmp_path):
        fr = FlightRecorder(tmp_path, capacity=8, rank=0)
        vqmc = _make_vqmc()
        vqmc.run(2, batch_size=16, callbacks=[fr])
        assert not (tmp_path / flight_file_name(0)).exists()
        fr2 = FlightRecorder(tmp_path, capacity=8, rank=0, dump_on_end=True)
        _make_vqmc().run(2, batch_size=16, callbacks=[fr2])
        assert (tmp_path / flight_file_name(0)).exists()

    def test_stop_training_is_not_a_crash(self, tmp_path):
        from repro.core.callbacks import EarlyStopping

        fr = FlightRecorder(tmp_path, capacity=8, rank=0)
        vqmc = _make_vqmc()
        vqmc.run(
            8, batch_size=16,
            callbacks=[fr, EarlyStopping(patience=1, min_delta=1e9)],
        )
        assert not (tmp_path / flight_file_name(0)).exists()


class TestDumpIntegrity:
    def _dump(self, tmp_path):
        fr = FlightRecorder(tmp_path, capacity=4, rank=2)
        fr.note_event("unit", tag="x")
        return fr.dump(reason="manual")

    def test_round_trip(self, tmp_path):
        path = self._dump(tmp_path)
        assert path.name == "flight.rank002.json"
        doc = load_flight_dump(path)
        assert doc["body"]["rank"] == 2
        assert doc["body"]["events"][0]["tag"] == "x"

    def test_tampered_dump_rejected(self, tmp_path):
        path = self._dump(tmp_path)
        doc = json.loads(path.read_text())
        doc["body"]["rank"] = 99  # flip a byte under the CRC
        path.write_text(json.dumps(doc))
        with pytest.raises(FlightDumpError, match="CRC32 mismatch"):
            load_flight_dump(path)
        load_flight_dump(path, verify=False)  # explicit opt-out still reads

    def test_truncated_and_foreign_rejected(self, tmp_path):
        path = self._dump(tmp_path)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(FlightDumpError, match="unreadable"):
            load_flight_dump(path)
        foreign = tmp_path / "flight.rank009.json"
        foreign.write_text('{"hello": 1}')
        with pytest.raises(FlightDumpError, match="missing body/crc32"):
            load_flight_dump(foreign)
        wrong = tmp_path / "flight.rank010.json"
        wrong.write_text('{"schema": "other/9", "crc32": 0, "body": {}}')
        with pytest.raises(FlightDumpError, match="unknown schema"):
            load_flight_dump(wrong)

    def test_dump_is_atomic_no_tmp_left_behind(self, tmp_path):
        self._dump(tmp_path)
        assert not list(tmp_path.glob("*.tmp"))


class TestSignals:
    def test_sigusr1_dumps_then_chains(self, tmp_path):
        fr = FlightRecorder(tmp_path, capacity=4, rank=1)
        chained = []
        previous = signal.signal(signal.SIGUSR1, lambda s, f: chained.append(s))
        try:
            installed = fr.install_signal_handlers(signums=(signal.SIGUSR1,))
            assert installed == [signal.SIGUSR1]
            os.kill(os.getpid(), signal.SIGUSR1)
            doc = load_flight_dump(tmp_path / flight_file_name(1))
            assert doc["body"]["reason"] == f"signal_{int(signal.SIGUSR1)}"
            assert chained == [signal.SIGUSR1]  # previous handler still ran
        finally:
            signal.signal(signal.SIGUSR1, previous)


class TestHealthIntegration:
    def test_dump_embeds_health_report_and_verdict_per_frame(self, tmp_path):
        hm = HealthMonitor()
        fr = FlightRecorder(tmp_path, capacity=8, rank=0, health=hm)
        vqmc = _make_vqmc()
        with pytest.raises(RuntimeError):
            vqmc.run(9, batch_size=16, callbacks=[fr, _CrashAt(4)])
        body = load_flight_dump(tmp_path / flight_file_name(0))["body"]
        assert body["health"]["schema"] == "repro.health/1"
        assert all("health" in f for f in body["frames"])
        assert vqmc.health is hm  # registered for checkpoint embedding

    def test_checkpoint_header_carries_health_report(self, tmp_path):
        hm = HealthMonitor()
        fr = FlightRecorder(tmp_path, capacity=8, rank=0, health=hm)
        vqmc = _make_vqmc()
        vqmc.run(3, batch_size=16, callbacks=[fr])
        ckpt = tmp_path / "ck.npz"
        save_checkpoint(vqmc, ckpt)
        header = verify_checkpoint(ckpt)
        assert header["health"]["verdict"] == "OK"
        assert header["health"]["steps"] == 3

    def test_checkpoint_without_monitor_unchanged(self, tmp_path):
        vqmc = _make_vqmc()
        vqmc.run(1, batch_size=16)
        ckpt = tmp_path / "ck.npz"
        save_checkpoint(vqmc, ckpt)
        assert "health" not in verify_checkpoint(ckpt)
