"""Metrics registry + the associative-merge contract behind cross-rank folds.

``merge_snapshots`` must be associative and commutative so per-rank
snapshots can be folded in any order (linear sweeps, tree reductions). The
property tests use integer-valued floats, for which IEEE addition is exact,
so associativity is a strict equality check rather than approximate.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import DEFAULT_BUCKETS, Histogram, Metrics, merge_snapshots

pytestmark = pytest.mark.obs

_BOUNDS = (1.0, 2.0, 4.0)
_names = st.sampled_from(["alpha", "beta", "gamma"])
_int_floats = st.integers(min_value=0, max_value=10_000).map(float)

_hist = st.fixed_dictionaries(
    {
        "boundaries": st.just(list(_BOUNDS)),
        "counts": st.lists(
            st.integers(min_value=0, max_value=1000),
            min_size=len(_BOUNDS) + 1,
            max_size=len(_BOUNDS) + 1,
        ),
        "sum": _int_floats,
        "count": st.integers(min_value=0, max_value=4000),
    }
)

snapshots = st.fixed_dictionaries(
    {
        "counters": st.dictionaries(_names, _int_floats, max_size=3),
        "gauges": st.dictionaries(_names, _int_floats, max_size=3),
        "histograms": st.dictionaries(_names, _hist, max_size=2),
    }
)


class TestMergeProperties:
    @given(a=snapshots, b=snapshots, c=snapshots)
    @settings(max_examples=80, deadline=None)
    def test_merge_is_associative(self, a, b, c):
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        assert left == right

    @given(a=snapshots, b=snapshots)
    @settings(max_examples=80, deadline=None)
    def test_merge_is_commutative(self, a, b):
        assert merge_snapshots(a, b) == merge_snapshots(b, a)

    @given(a=snapshots)
    @settings(max_examples=40, deadline=None)
    def test_empty_snapshot_is_identity(self, a):
        empty = {"counters": {}, "gauges": {}, "histograms": {}}
        merged = merge_snapshots(empty, a)
        # identity up to key ordering (merge sorts names)
        assert merged == merge_snapshots(a, empty)
        assert merged["counters"] == a["counters"]
        assert merged["gauges"] == a["gauges"]

    def test_counters_add_gauges_max_histograms_add(self):
        a = {
            "counters": {"n": 2.0},
            "gauges": {"depth": 3.0},
            "histograms": {
                "lat": {"boundaries": [1.0], "counts": [1, 0], "sum": 0.5, "count": 1}
            },
        }
        b = {
            "counters": {"n": 5.0, "m": 1.0},
            "gauges": {"depth": 1.0},
            "histograms": {
                "lat": {"boundaries": [1.0], "counts": [0, 2], "sum": 4.0, "count": 2}
            },
        }
        merged = merge_snapshots(a, b)
        assert merged["counters"] == {"m": 1.0, "n": 7.0}
        assert merged["gauges"] == {"depth": 3.0}
        assert merged["histograms"]["lat"] == {
            "boundaries": [1.0],
            "counts": [1, 2],
            "sum": 4.5,
            "count": 3,
            "max": None,  # pre-max-slot snapshots: backfilled, not invented
        }

    def test_boundary_mismatch_raises(self):
        a = {"histograms": {"h": {"boundaries": [1.0], "counts": [0, 0], "sum": 0, "count": 0}}}
        b = {"histograms": {"h": {"boundaries": [2.0], "counts": [0, 0], "sum": 0, "count": 0}}}
        with pytest.raises(ValueError, match="boundary mismatch"):
            merge_snapshots(a, b)

    def test_boundary_length_mismatch_raises(self):
        a = {"histograms": {"h": {"boundaries": [1.0, 2.0], "counts": [0, 0, 0], "sum": 0, "count": 0}}}
        b = {"histograms": {"h": {"boundaries": [1.0], "counts": [0, 0], "sum": 0, "count": 0}}}
        with pytest.raises(ValueError, match="boundary mismatch"):
            merge_snapshots(a, b)

    def test_fully_empty_snapshots_merge(self):
        assert merge_snapshots({}, {}) == {
            "counters": {}, "gauges": {}, "histograms": {}
        }
        a = {"counters": {"n": 1.0}}
        merged = merge_snapshots({}, a)  # missing sections tolerated
        assert merged["counters"] == {"n": 1.0}
        assert merged["gauges"] == {} and merged["histograms"] == {}

    def test_gauge_conflict_takes_max_both_orders(self):
        a = {"gauges": {"arena": 100.0, "only_a": 7.0}}
        b = {"gauges": {"arena": 250.0, "only_b": -3.0}}
        for left, right in ((a, b), (b, a)):
            merged = merge_snapshots(left, right)
            assert merged["gauges"] == {
                "arena": 250.0, "only_a": 7.0, "only_b": -3.0
            }

    def test_histogram_max_slot_merges_and_backfills(self):
        with_max = {"histograms": {"h": {
            "boundaries": [1.0], "counts": [0, 1], "sum": 5.0, "count": 1,
            "max": 5.0,
        }}}
        legacy = {"histograms": {"h": {
            "boundaries": [1.0], "counts": [1, 0], "sum": 0.5, "count": 1,
        }}}
        merged = merge_snapshots(with_max, legacy)
        assert merged["histograms"]["h"]["max"] == 5.0
        bigger = {"histograms": {"h": {
            "boundaries": [1.0], "counts": [0, 1], "sum": 9.0, "count": 1,
            "max": 9.0,
        }}}
        assert merge_snapshots(merged, bigger)["histograms"]["h"]["max"] == 9.0


class TestInstruments:
    def test_counter_monotone(self):
        m = Metrics()
        m.inc("events")
        m.inc("events", 2.5)
        assert m.snapshot()["counters"]["events"] == 3.5
        with pytest.raises(ValueError, match="only increase"):
            m.inc("events", -1.0)

    def test_gauge_last_write_wins(self):
        m = Metrics()
        m.set("world", 4)
        m.set("world", 2)
        assert m.snapshot()["gauges"]["world"] == 2.0

    def test_histogram_buckets_and_overflow(self):
        h = Histogram(boundaries=(1.0, 2.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.counts == [1, 1, 2]
        assert h.count == 4 and h.sum == pytest.approx(105.0)

    def test_histogram_quantile_conservative(self):
        h = Histogram(boundaries=(1.0, 2.0, 4.0))
        for v in (0.5, 0.5, 1.5, 3.0):
            h.observe(v)
        assert h.quantile(0.5) == 1.0  # 2 of 4 observations <= 1.0
        assert h.quantile(1.0) == 4.0
        # The overflow bucket interpolates toward the observed max instead
        # of collapsing to +inf: the tail quantile stays finite and real.
        h.observe(999.0)
        assert h.quantile(1.0) == 999.0
        assert h.max == 999.0
        assert math.isnan(Histogram().quantile(0.5))
        with pytest.raises(ValueError, match="q must be"):
            h.quantile(1.5)

    def test_histogram_overflow_interpolation_is_linear(self):
        h = Histogram(boundaries=(1.0,))
        for v in (0.5, 10.0, 10.0):  # 1 finite, 2 overflow, max 10
            h.observe(v)
        # q=2/3 -> target 2.0 = halfway through the overflow bucket:
        # midway between last edge 1.0 and observed max 10.0.
        assert h.quantile(2 / 3) == pytest.approx(5.5)
        assert h.quantile(1.0) == pytest.approx(10.0)

    def test_histogram_boundaries_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(boundaries=(1.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(boundaries=())

    def test_registry_get_or_create(self):
        m = Metrics()
        assert m.counter("x") is m.counter("x")
        assert m.histogram("h") is m.histogram("h")
        assert m.histogram("h").boundaries == tuple(DEFAULT_BUCKETS)

    def test_cross_kind_name_conflict_raises(self):
        m = Metrics()
        m.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            m.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            m.histogram("x")

    def test_histogram_boundary_conflict_raises(self):
        m = Metrics()
        m.histogram("h", boundaries=(1.0, 2.0))
        with pytest.raises(ValueError, match="already registered with boundaries"):
            m.histogram("h", boundaries=(1.0, 3.0))

    def test_rank_snapshot_merge_roundtrip(self):
        """The intended cross-rank use: N per-rank registries fold into one."""
        ranks = []
        for rank in range(4):
            m = Metrics()
            m.inc("comm.retries", rank)
            m.set("world", 4)
            for v in (0.01 * (rank + 1), 0.5):
                m.observe("step_latency", v)
            ranks.append(m.snapshot())
        folded = ranks[0]
        for snap in ranks[1:]:
            folded = merge_snapshots(folded, snap)
        assert folded["counters"]["comm.retries"] == 0 + 1 + 2 + 3
        assert folded["gauges"]["world"] == 4.0
        assert folded["histograms"]["step_latency"]["count"] == 8
