"""End-to-end observability acceptance: a 4-rank traced training run.

This pins the issue's acceptance criteria directly:

- ``run_threaded`` training with per-rank tracers produces one valid
  Chrome-trace JSON file per rank (plain ``json.loads``, monotone ``ts``);
- ``tools/trace.py summary`` renders a per-phase/per-rank table from those
  files and exits 0;
- the five phase spans tile the step span: their summed duration lands
  within 10 % of the measured step wall-clock.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import VQMC, VQMCConfig
from repro.distributed import run_threaded
from repro.hamiltonians import TransverseFieldIsing
from repro.models import MADE
from repro.obs import (
    Metrics,
    ObsCallback,
    Tracer,
    load_chrome_trace,
    metrics_file_name,
    trace_file_name,
)
from repro.optim import SGD, StochasticReconfiguration
from repro.samplers import AutoregressiveSampler

pytestmark = pytest.mark.obs

REPO = Path(__file__).resolve().parents[2]
CLI = REPO / "tools" / "trace.py"
WORLD = 4
STEPS = 4
PHASES = {"sample", "local_energy", "gradient", "sr_solve", "optimizer"}


def _worker(comm, rank, outdir):
    model = MADE(8, hidden=14, rng=np.random.default_rng(3))
    tracer = Tracer(rank=rank)
    metrics = Metrics()
    vqmc = VQMC(
        model,
        TransverseFieldIsing.random(8, seed=99),
        AutoregressiveSampler(),
        SGD(model.parameters(), lr=0.05),
        sr=StochasticReconfiguration(),
        comm=comm,
        seed=100 + rank,
        config=VQMCConfig(gradient_mode="per_sample"),
        tracer=tracer,
        metrics=metrics,
    )
    cb = ObsCallback(tracer, outdir, comm=comm, metrics=metrics)
    results = vqmc.run(STEPS, batch_size=64, callbacks=[cb])
    step_total = tracer.totals(depth=0)["step"]["total_s"]
    phase_sum = sum(v["total_s"] for v in tracer.totals(depth=1).values())
    return {
        "phase_names": sorted(tracer.totals(depth=1)),
        "phase_sum": phase_sum,
        "step_total": step_total,
        "measured_wall": sum(r.step_time for r in results),
        "open_spans": tracer.open_spans(),
        "skew": cb.skew,
    }


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    outdir = tmp_path_factory.mktemp("e2e_traces")
    reports = run_threaded(_worker, WORLD, args=(outdir,), timeout=300.0)
    return outdir, reports


class TestAcceptance:
    def test_every_rank_wrote_a_valid_chrome_trace(self, traced_run):
        outdir, _ = traced_run
        for rank in range(WORLD):
            path = outdir / trace_file_name(rank)
            assert path.exists(), f"missing trace for rank {rank}"
            doc = json.loads(path.read_text())  # raw-stdlib validity
            assert doc["metadata"]["rank"] == rank
            assert doc["metadata"]["dropped_events"] == 0
            spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
            assert all(e["pid"] == rank for e in spans)
            ts = [e["ts"] for e in spans]
            assert ts == sorted(ts), "timestamps must be monotone"
            names = {e["name"] for e in spans}
            assert PHASES <= names and "step" in names
            assert "comm.allreduce" in names, "collectives must be traced"

    def test_phase_spans_tile_the_step_span(self, traced_run):
        _, reports = traced_run
        for rank, report in enumerate(reports):
            assert report["open_spans"] == 0
            assert set(report["phase_names"]) == PHASES
            # acceptance: phases account for the step within 10 %
            ratio = report["phase_sum"] / report["step_total"]
            assert 0.9 <= ratio <= 1.001, (
                f"rank {rank}: phases cover {ratio:.1%} of the step span"
            )
            # The step span nests strictly inside the step_time window, so
            # it can only be smaller — but not by much. The slack is GIL
            # descheduling between span exit and the step_time clock read
            # (4 ranks share one interpreter here), so the lower bound is
            # looser than the in-span tiling bound above.
            assert report["step_total"] <= report["measured_wall"] * 1.02
            assert report["step_total"] >= report["measured_wall"] * 0.6

    def test_cross_rank_skew_report_present(self, traced_run):
        _, reports = traced_run
        for report in reports:
            skew = report["skew"]
            assert skew is not None and set(skew) == PHASES
            for info in skew.values():
                assert info["min"] <= info["median"] <= info["max"]
                assert info["skew"] >= 1.0

    def test_trace_cli_summary_renders_table(self, traced_run):
        outdir, _ = traced_run
        proc = subprocess.run(
            [sys.executable, str(CLI), "summary", str(outdir)],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        for phase in PHASES:
            assert phase in proc.stdout
        for rank in range(WORLD):
            assert f"rank{rank} [ms]" in proc.stdout

    def test_trace_cli_summary_json_mode(self, traced_run):
        outdir, _ = traced_run
        proc = subprocess.run(
            [sys.executable, str(CLI), "summary", str(outdir), "--json"],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        doc = json.loads(proc.stdout)
        assert doc["ranks"] == list(range(WORLD))
        assert PHASES <= set(doc["totals_ms"])
        assert doc["counts"]["step"] == WORLD * STEPS

    def test_trace_cli_validate_passes(self, traced_run):
        outdir, _ = traced_run
        proc = subprocess.run(
            [sys.executable, str(CLI), "validate", str(outdir)],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert f"{WORLD} file(s) valid" in proc.stdout

    def test_trace_cli_merge_produces_one_timeline(self, traced_run, tmp_path):
        outdir, _ = traced_run
        merged = tmp_path / "merged.json"
        proc = subprocess.run(
            [sys.executable, str(CLI), "merge", str(outdir), "-o", str(merged)],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        spans = [e for e in load_chrome_trace(merged) if e["ph"] == "X"]
        assert {e["pid"] for e in spans} == set(range(WORLD))

    def test_every_rank_wrote_metrics_snapshot(self, traced_run):
        outdir, _ = traced_run
        for rank in range(WORLD):
            path = outdir / metrics_file_name(rank)
            assert path.exists(), f"missing metrics snapshot for rank {rank}"
            snap = json.loads(path.read_text())
            assert snap["counters"]["sr.solves"] == STEPS

    def test_trace_cli_summary_folds_metrics(self, traced_run):
        outdir, _ = traced_run
        proc = subprocess.run(
            [sys.executable, str(CLI), "summary", str(outdir)],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert f"folded metrics ({WORLD} rank snapshot(s))" in proc.stdout
        assert "sr.solves" in proc.stdout

        proc = subprocess.run(
            [sys.executable, str(CLI), "summary", str(outdir), "--json"],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        doc = json.loads(proc.stdout)
        # counters add across ranks; gauges keep the worst rank
        assert doc["metrics"]["counters"]["sr.solves"] == WORLD * STEPS

    def test_trace_cli_merge_writes_folded_metrics(self, traced_run, tmp_path):
        outdir, _ = traced_run
        merged = tmp_path / "merged.json"
        proc = subprocess.run(
            [sys.executable, str(CLI), "merge", str(outdir), "-o", str(merged)],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        folded = json.loads((tmp_path / "merged.metrics.json").read_text())
        assert folded["counters"]["sr.solves"] == WORLD * STEPS
        assert "sr.cg_iterations" in folded["counters"]

    def test_trace_cli_summary_annotates_batch_ledger(self, traced_run, tmp_path):
        """A BatchLedger JSON log next to the traces adds the per-rank batch
        assignment row (auto-detected, and honoured by --json)."""
        import shutil

        outdir, _ = traced_run
        annotated = tmp_path / "annotated"
        annotated.mkdir()
        for f in outdir.glob("trace.rank*.json"):
            shutil.copy2(f, annotated / f.name)
        ledger = {
            "global_batch": 48,
            "world_size": WORLD,
            "min_chunk": 1,
            "alpha": 0.5,
            "hysteresis": 0.1,
            "rebalances": 2,
            "assignment": [15, 11, 11, 11],
            "history": [],
        }
        (annotated / "ledger.json").write_text(json.dumps(ledger))

        proc = subprocess.run(
            [sys.executable, str(CLI), "summary", str(annotated)],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "batch [samples]" in proc.stdout
        assert "15" in proc.stdout
        assert "global_batch=48" in proc.stdout

        proc = subprocess.run(
            [sys.executable, str(CLI), "summary", str(annotated), "--json"],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        doc = json.loads(proc.stdout)
        assert doc["ledger"]["assignment"] == [15, 11, 11, 11]

    def test_trace_cli_summary_explicit_ledger_flag(self, traced_run, tmp_path):
        outdir, _ = traced_run
        log = tmp_path / "my_ledger.json"
        log.write_text(json.dumps({
            "global_batch": 64, "world_size": WORLD, "rebalances": 0,
            "assignment": [16, 16, 16, 16], "history": [],
        }))
        proc = subprocess.run(
            [sys.executable, str(CLI), "summary", str(outdir),
             "--ledger", str(log)],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "batch [samples]" in proc.stdout
        assert "global_batch=64" in proc.stdout

    def test_trace_cli_missing_path_exits_two(self):
        proc = subprocess.run(
            [sys.executable, str(CLI), "summary", "/nonexistent/trace/dir"],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert proc.returncode == 2
        assert "error:" in proc.stderr
