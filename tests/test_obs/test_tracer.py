"""Tracer invariants: spans close on every exit path, buffers stay bounded.

The property tests drive randomly-shaped nesting trees (with a randomly
chosen node that raises) through the tracer and pin the invariants the
exporters rely on: the open-span stack unwinds to empty, every entered
span is recorded exactly once, and durations/depths are consistent.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import NULL_TRACER, Tracer

pytestmark = pytest.mark.obs


class Boom(RuntimeError):
    pass


# Nesting trees: each node is a list of children.
trees = st.recursive(
    st.just([]), lambda children: st.lists(children, max_size=3), max_leaves=12
)


def _count_nodes(tree) -> int:
    return sum(1 + _count_nodes(sub) for sub in tree)


def _run_tree(tracer, tree, counter, raise_at=None):
    """Enter one span per node (pre-order); raise at node ``raise_at``."""
    for sub in tree:
        with tracer.span(f"node{counter[0]}", idx=counter[0]):
            counter[0] += 1
            if raise_at is not None and counter[0] > raise_at:
                raise Boom()
            _run_tree(tracer, sub, counter, raise_at)


class TestSpanClosure:
    @given(tree=trees)
    @settings(max_examples=60, deadline=None)
    def test_nested_spans_all_close_and_record(self, tree):
        tracer = Tracer()
        counter = [0]
        _run_tree(tracer, tree, counter)
        assert tracer.open_spans() == 0
        assert len(tracer.events) == _count_nodes(tree)
        assert all(ev.dur_ns >= 0 for ev in tracer.events)
        assert all(ev.t0_ns >= 0 for ev in tracer.events)

    @given(tree=trees, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_exception_unwinds_every_open_span(self, tree, data):
        n = _count_nodes(tree)
        if n == 0:
            return
        raise_at = data.draw(st.integers(min_value=0, max_value=n - 1))
        tracer = Tracer()
        counter = [0]
        with pytest.raises(Boom):
            _run_tree(tracer, tree, counter, raise_at=raise_at)
        # However deep the raise, the with-form closes everything on unwind.
        assert tracer.open_spans() == 0
        # Every span *entered* before the raise is recorded, none invented.
        assert len(tracer.events) == counter[0]
        # The raising span and its ancestors carry the error annotation.
        errored = [ev for ev in tracer.events if (ev.attrs or {}).get("error")]
        assert errored, "the raising span must be annotated"
        assert all(ev.attrs["error"] == "Boom" for ev in errored)

    def test_nested_depths(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {ev.name: ev for ev in tracer.events}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        # children complete (and are recorded) before their parents
        assert tracer.events[0].name == "inner"

    def test_overlapping_begin_end_out_of_order(self):
        tracer = Tracer()
        a = tracer.begin("a")
        b = tracer.begin("b")
        tracer.end(a)  # out-of-order: a closed while b still open
        tracer.end(b)
        assert tracer.open_spans() == 0
        assert sorted(ev.name for ev in tracer.events) == ["a", "b"]

    def test_end_is_idempotent(self):
        tracer = Tracer()
        span = tracer.begin("once")
        tracer.end(span)
        tracer.end(span)
        assert len(tracer.events) == 1

    def test_end_merges_late_attrs(self):
        tracer = Tracer()
        span = tracer.begin("io", path="x")
        tracer.end(span, bytes=42)
        assert tracer.events[0].attrs == {"path": "x", "bytes": 42}


class TestBoundedBuffer:
    @given(
        n=st.integers(min_value=0, max_value=50),
        cap=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_buffer_never_exceeds_cap(self, n, cap):
        tracer = Tracer(max_events=cap)
        for i in range(n):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.events) == min(n, cap)
        assert tracer.dropped == max(0, n - cap)

    def test_clear_resets_buffer_and_drop_count(self):
        tracer = Tracer(max_events=1)
        for _ in range(3):
            with tracer.span("s"):
                pass
        tracer.clear()
        assert tracer.events == [] and tracer.dropped == 0

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError, match="max_events"):
            Tracer(max_events=0)


class TestDisabled:
    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b", x=1)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert tracer.events == [] and tracer.open_spans() == 0

    def test_disabled_begin_end_noop(self):
        tracer = Tracer(enabled=False)
        handle = tracer.begin("a")
        tracer.end(handle)
        tracer.instant("marker")
        assert tracer.events == []

    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False


class TestTotals:
    def test_totals_by_depth(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("step"):
                with tracer.span("phase"):
                    pass
        top = tracer.totals(depth=0)
        assert list(top) == ["step"] and top["step"]["count"] == 3
        inner = tracer.totals(depth=1)
        assert list(inner) == ["phase"]
        everything = tracer.totals()
        assert set(everything) == {"step", "phase"}
        assert everything["step"]["total_s"] >= everything["phase"]["total_s"]
        assert everything["step"]["mean_s"] == pytest.approx(
            everything["step"]["total_s"] / 3
        )


class TestThreads:
    def test_per_thread_stacks_do_not_interleave(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def worker(label):
            barrier.wait()
            for _ in range(20):
                with tracer.span(label):
                    with tracer.span(f"{label}.inner"):
                        pass

        threads = [threading.Thread(target=worker, args=(f"t{i}",)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tracer.open_spans() == 0
        assert len(tracer.events) == 80
        # each thread's spans sit on its own lane with its own depths
        tids = {ev.tid for ev in tracer.events}
        assert len(tids) == 2
        for tid in tids:
            lane = [ev for ev in tracer.events if ev.tid == tid]
            assert {ev.depth for ev in lane} == {0, 1}

    def test_instant_records_zero_duration_marker(self):
        tracer = Tracer()
        tracer.instant("mark", reason="test")
        (ev,) = tracer.events
        assert ev.dur_ns == 0 and ev.attrs == {"reason": "test"}
