"""Exporter contracts: Chrome trace round-trips, merging, cross-rank skew.

The Chrome trace-event format is consumed by external viewers we cannot
patch, so the tests pin the observable contract: the file is plain
``json.loads``-able, ``ts`` is monotone non-decreasing over the event
stream, spans carry ``pid`` = rank, and attribute values survive the trip
(numpy scalars included).
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distributed import run_threaded
from repro.obs import (
    Tracer,
    allgather_named_floats,
    chrome_trace_events,
    load_chrome_trace,
    merge_chrome_traces,
    skew_report,
    trace_file_name,
    write_chrome_trace,
)

pytestmark = pytest.mark.obs


def _trace_some_spans(tracer, count=3):
    for i in range(count):
        with tracer.span("step", idx=i, batch=np.int64(128)):
            with tracer.span("phase.inner", value=np.float64(0.5)):
                pass


class TestChromeTrace:
    def test_file_name_is_zero_padded(self):
        assert trace_file_name(3) == "trace.rank003.json"
        assert trace_file_name(123) == "trace.rank123.json"

    def test_round_trip_through_json_loads(self, tmp_path):
        tracer = Tracer(rank=2)
        _trace_some_spans(tracer)
        path = write_chrome_trace(tracer, tmp_path / trace_file_name(2))
        doc = json.loads(path.read_text())  # the raw-stdlib contract
        assert doc["displayTimeUnit"] == "ms"
        assert doc["metadata"] == {"rank": 2, "dropped_events": 0}
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert meta[0]["args"]["name"] == "rank 2"
        assert len(spans) == 6
        assert all(e["pid"] == 2 for e in spans)
        # numpy attribute values were converted, not repr'd
        step = next(e for e in spans if e["name"] == "step")
        assert step["args"]["batch"] == 128
        assert step["cat"] == "step"
        inner = next(e for e in spans if e["name"] == "phase.inner")
        assert inner["args"]["value"] == 0.5
        assert inner["cat"] == "phase"

    def test_timestamps_monotone_and_durations_nonnegative(self, tmp_path):
        tracer = Tracer()
        _trace_some_spans(tracer, count=10)
        path = write_chrome_trace(tracer, tmp_path / "t.json")
        spans = [e for e in load_chrome_trace(path) if e["ph"] == "X"]
        ts = [e["ts"] for e in spans]
        assert ts == sorted(ts)
        assert all(e["dur"] >= 0 for e in spans)

    @given(
        tree=st.lists(st.integers(min_value=0, max_value=3), min_size=0, max_size=8)
    )
    @settings(max_examples=40, deadline=None)
    def test_any_span_shape_round_trips(self, tmp_path_factory, tree):
        tracer = Tracer()
        for i, depth in enumerate(tree):
            handles = [tracer.begin(f"s{i}.{d}") for d in range(depth + 1)]
            for h in reversed(handles):
                tracer.end(h)
        out = tmp_path_factory.mktemp("trace") / "t.json"
        write_chrome_trace(tracer, out)
        spans = [e for e in load_chrome_trace(out) if e["ph"] == "X"]
        assert len(spans) == len(tracer.events)
        ts = [e["ts"] for e in spans]
        assert ts == sorted(ts)

    def test_unserialisable_attr_degrades_to_repr(self, tmp_path):
        tracer = Tracer()
        with tracer.span("odd", obj=object()):
            pass
        path = write_chrome_trace(tracer, tmp_path / "t.json")
        (span,) = [e for e in load_chrome_trace(path) if e["ph"] == "X"]
        assert span["args"]["obj"].startswith("<object object")

    def test_dropped_events_are_labelled(self, tmp_path):
        tracer = Tracer(max_events=1)
        _trace_some_spans(tracer)
        path = write_chrome_trace(tracer, tmp_path / "t.json")
        doc = json.loads(path.read_text())
        assert doc["metadata"]["dropped_events"] == 5

    def test_rank_override(self, tmp_path):
        tracer = Tracer(rank=0)
        _trace_some_spans(tracer, count=1)
        path = write_chrome_trace(tracer, tmp_path / "t.json", rank=7)
        spans = [e for e in load_chrome_trace(path) if e["ph"] == "X"]
        assert all(e["pid"] == 7 for e in spans)

    def test_load_accepts_bare_array_form(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps([{"name": "x", "ph": "X", "ts": 0, "dur": 1}]))
        assert load_chrome_trace(path)[0]["name"] == "x"
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": 17}))
        with pytest.raises(ValueError, match="not a Chrome trace"):
            load_chrome_trace(bad)


class TestMerge:
    def test_merge_keeps_ranks_separate_and_ts_monotone(self, tmp_path):
        paths = []
        for rank in range(3):
            tracer = Tracer(rank=rank)
            _trace_some_spans(tracer, count=2)
            paths.append(write_chrome_trace(tracer, tmp_path / trace_file_name(rank)))
        merged = merge_chrome_traces(paths, tmp_path / "merged.json")
        events = load_chrome_trace(merged)
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["pid"] for e in spans} == {0, 1, 2}
        ts = [e["ts"] for e in spans]
        assert ts == sorted(ts)
        # metadata events stay ahead of the data stream
        kinds = [e["ph"] for e in events]
        assert kinds[: kinds.count("M")] == ["M"] * kinds.count("M")


class TestCrossRank:
    def test_allgather_named_floats_agrees_across_ranks(self):
        def worker(comm, rank):
            mine = {"sample": float(rank), "gradient": 10.0 + rank}
            return allgather_named_floats(comm, mine)

        results = run_threaded(worker, 4)
        expected = [
            {"sample": float(r), "gradient": 10.0 + r} for r in range(4)
        ]
        for per_rank in results:
            assert per_rank == expected

    def test_schema_mismatch_raises_not_zips(self):
        def worker(comm, rank):
            keys = {"a": 1.0} if rank == 0 else {"b": 1.0}
            try:
                allgather_named_floats(comm, keys)
                return "no error"
            except ValueError as exc:
                return "schema" if "schema" in str(exc) else str(exc)

        assert run_threaded(worker, 2) == ["schema", "schema"]

    def test_skew_report_flags_the_straggler(self):
        per_rank = [
            {"sample": 1.0, "gradient": 2.0},
            {"sample": 1.0, "gradient": 2.0},
            {"sample": 4.0, "gradient": 2.0},
            {"sample": 1.0, "gradient": 2.0},
        ]
        report = skew_report(per_rank)
        assert report["sample"]["max_rank"] == 2
        assert report["sample"]["skew"] == pytest.approx(4.0)
        assert report["sample"]["min"] == 1.0 and report["sample"]["max"] == 4.0
        assert report["gradient"]["skew"] == pytest.approx(1.0)
        assert skew_report([]) == {}

    def test_chrome_events_from_empty_tracer(self):
        assert chrome_trace_events([]) == []
