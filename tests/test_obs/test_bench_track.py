"""Perf-regression observatory: ledger round trip and the PR gate.

``tools/bench_track.py`` turns the committed ``BENCH_*.json`` corpus into
an append-only trajectory ledger and gates changes against it. Pinned
here: ingest is idempotent for unchanged metrics, a regression beyond the
tolerance band exits 1 and names the metric, improvements and in-band
noise pass, and benchmarks with no headline spec are reported untracked
but never fail the gate.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

import pytest

pytestmark = pytest.mark.obs

TOOLS = pathlib.Path(__file__).resolve().parents[2] / "tools"

_spec = importlib.util.spec_from_file_location("bench_track", TOOLS / "bench_track.py")
bench_track = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("bench_track", bench_track)
_spec.loader.exec_module(bench_track)


def _write_bench(out_dir, name, payload):
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(
        {"benchmark": name, "schema_version": 2, "git_sha": "abc1234",
         "hostname": "unit", "unix_time": 1.0, **payload}
    ))
    return path


def _sr_doc(volume=10.0, err=1e-12):
    return {"headline": {"volume_reduction": volume,
                         "cg_rel_err_vs_serial_dense": err}}


class TestMetricExtraction:
    def test_dotted_path_with_trailing_index(self):
        m = bench_track.Metric("x", "results[-1].grad_speedup", "higher", 0.1)
        assert m.extract({"results": [{"grad_speedup": 1.0},
                                      {"grad_speedup": 3.5}]}) == 3.5

    def test_band_and_direction(self):
        higher = bench_track.Metric("x", "v", "higher", 0.10)
        assert not higher.regressed(10.0, 9.5)   # within 10% band
        assert higher.regressed(10.0, 8.5)       # below band -> bad
        assert not higher.regressed(10.0, 20.0)  # improvement never regresses
        lower = bench_track.Metric("x", "v", "lower", 0.10, abs_tol=5.0)
        assert not lower.regressed(1.0, 5.0)     # abs_tol dominates tiny base
        assert lower.regressed(1.0, 7.0)

    def test_direction_validated(self):
        with pytest.raises(ValueError, match="higher/lower"):
            bench_track.Metric("x", "v", "sideways", 0.1)

    def test_every_headline_spec_extracts_from_committed_corpus(self):
        out = TOOLS.parent / "benchmarks" / "out"
        seen = set()
        for path in out.glob("BENCH_*.json"):
            doc = bench_track._read_bench(path)
            values, missing = bench_track._headline_values(doc)
            if doc["benchmark"] in bench_track.HEADLINES:
                assert not missing, f"{doc['benchmark']}: missing {missing}"
                seen.add(doc["benchmark"])
        # the committed corpus must cover the declared specs
        assert seen == set(bench_track.HEADLINES)


class TestIngest:
    def test_ingest_then_unchanged_is_noop(self, tmp_path, capsys):
        _write_bench(tmp_path, "sr_distributed", _sr_doc())
        assert bench_track.main(["ingest", "--out-dir", str(tmp_path)]) == 0
        ledger = json.loads((tmp_path / "TRAJECTORY.json").read_text())
        assert ledger["schema"] == bench_track.LEDGER_SCHEMA
        assert len(ledger["entries"]) == 1
        entry = ledger["entries"][0]
        assert entry["git_sha"] == "abc1234"
        assert entry["metrics"]["volume_reduction"] == 10.0
        # second ingest with identical numbers appends nothing
        assert bench_track.main(["ingest", "--out-dir", str(tmp_path)]) == 0
        ledger = json.loads((tmp_path / "TRAJECTORY.json").read_text())
        assert len(ledger["entries"]) == 1
        # changed numbers append a second provenance-stamped entry
        _write_bench(tmp_path, "sr_distributed", _sr_doc(volume=12.0))
        bench_track.main(["ingest", "--out-dir", str(tmp_path)])
        ledger = json.loads((tmp_path / "TRAJECTORY.json").read_text())
        assert len(ledger["entries"]) == 2

    def test_untracked_benchmark_skipped(self, tmp_path, capsys):
        _write_bench(tmp_path, "mystery", {"value": 1})
        assert bench_track.main(["ingest", "--out-dir", str(tmp_path)]) == 0
        assert "1 untracked" in capsys.readouterr().out
        ledger = json.loads((tmp_path / "TRAJECTORY.json").read_text())
        assert ledger["entries"] == []


class TestCheckGate:
    def _ingest(self, tmp_path, **kw):
        _write_bench(tmp_path, "sr_distributed", _sr_doc(**kw))
        bench_track.main(["ingest", "--out-dir", str(tmp_path)])

    def test_within_band_passes(self, tmp_path):
        self._ingest(tmp_path)
        _write_bench(tmp_path, "sr_distributed", _sr_doc(volume=9.9))
        assert bench_track.main(["check", "--out-dir", str(tmp_path)]) == 0

    def test_regression_fails_and_names_metric(self, tmp_path, capsys):
        self._ingest(tmp_path)
        _write_bench(tmp_path, "sr_distributed", _sr_doc(volume=5.0))
        assert bench_track.main(["check", "--out-dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "sr_distributed.volume_reduction" in out

    def test_improvement_passes_and_is_reported(self, tmp_path, capsys):
        self._ingest(tmp_path)
        _write_bench(tmp_path, "sr_distributed", _sr_doc(volume=20.0))
        assert bench_track.main(["check", "--out-dir", str(tmp_path)]) == 0
        assert "improved" in capsys.readouterr().out

    def test_no_baseline_passes(self, tmp_path, capsys):
        _write_bench(tmp_path, "sr_distributed", _sr_doc())
        assert bench_track.main(["check", "--out-dir", str(tmp_path)]) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_untracked_never_fails(self, tmp_path, capsys):
        _write_bench(tmp_path, "mystery", {"value": 1})
        assert bench_track.main(["check", "--out-dir", str(tmp_path)]) == 0
        assert "untracked" in capsys.readouterr().out

    def test_bare_check_flag_alias(self, tmp_path):
        self._ingest(tmp_path)
        assert bench_track.main(["--check", "--out-dir", str(tmp_path)]) == 0

    def test_corrupt_ledger_fails_closed(self, tmp_path, capsys):
        _write_bench(tmp_path, "sr_distributed", _sr_doc())
        (tmp_path / "TRAJECTORY.json").write_text('{"schema": "other", "x": 1}')
        assert bench_track.main(["check", "--out-dir", str(tmp_path)]) == 1
        assert "not a repro.bench-trajectory/1" in capsys.readouterr().err

    def test_json_output(self, tmp_path, capsys):
        self._ingest(tmp_path)
        capsys.readouterr()  # drop the ingest banner
        _write_bench(tmp_path, "sr_distributed", _sr_doc(err=1.0))
        assert bench_track.main(
            ["check", "--out-dir", str(tmp_path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert any("cg_rel_err" in r for r in payload["regressions"])


class TestRepoLedgerIsCurrent:
    def test_committed_ledger_matches_corpus(self):
        """The gate the CI step runs must pass on the committed tree."""
        assert bench_track.main(["check"]) == 0
