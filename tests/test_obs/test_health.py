"""Health rule engine: every rule trips on its seeded anomaly, and only then.

The acceptance contract pinned here:

- each seeded synthetic anomaly flips its rule to CRIT within **5 steps**
  of onset;
- a clean 200-step stream produces **zero** CRIT verdicts on any rule;
- hysteresis: one bad step is WARN not CRIT, and recovery decays back to
  OK only after ``clear_after`` clean steps;
- ``tools/monitor.py health`` classifies a recorded stream with the same
  rules and exits non-zero on CRIT.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.obs import CRIT, OK, WARN, HealthMonitor, replay_frames, worst_verdict
from repro.obs.health import (
    AcceptanceCollapseRule,
    ArenaGrowthRule,
    CGStallRule,
    EnergyVarianceRule,
    NonFiniteEnergyRule,
    SNRDropRule,
    StragglerDriftRule,
)

pytestmark = pytest.mark.obs

REPO = Path(__file__).resolve().parents[2]
MONITOR = REPO / "tools" / "monitor.py"


def clean_frame(step, rng):
    """One step of a plausibly healthy run (gentle noise, no anomalies)."""
    return {
        "step": step,
        "energy": -8.0 + 0.05 * rng.standard_normal(),
        "std": 1.0 + 0.05 * rng.standard_normal(),
        "sem": 0.02 + 0.001 * rng.standard_normal(),
        "grad_norm": 1.5 + 0.1 * rng.standard_normal(),
        "step_time": 0.01 + 0.0005 * rng.standard_normal(),
        "acceptance": 0.45 + 0.02 * rng.standard_normal(),
        "sr": {"solver": "cg", "iterations": 12, "residual": 1e-8,
               "incomplete": False},
        "gauges": {"jit.arena_bytes": 32768.0},
    }


def run_stream(monitor, frames):
    for frame in frames:
        monitor.observe(frame)
    return monitor


def seeded_run(anomaly, onset=60, total=90, seed=1):
    """Clean stream with ``anomaly(frame)`` applied from ``onset`` on.
    Returns (monitor, step at which overall verdict first hit CRIT)."""
    rng = np.random.default_rng(seed)
    monitor = HealthMonitor()
    crit_at = None
    for step in range(1, total + 1):
        frame = clean_frame(step, rng)
        if step >= onset:
            anomaly(frame)
        monitor.observe(frame)
        if crit_at is None and monitor.verdict == CRIT:
            crit_at = step
    return monitor, crit_at


class TestCleanRunNoFalseAlarms:
    def test_200_clean_steps_zero_crits(self):
        rng = np.random.default_rng(42)
        monitor = HealthMonitor()
        for step in range(1, 201):
            monitor.observe(clean_frame(step, rng))
            assert monitor.verdict != CRIT, (
                f"false CRIT at step {step}: {monitor.rule_verdicts()}"
            )
        assert monitor.verdict == OK
        assert all(v == OK for v in monitor.rule_verdicts().values())


ANOMALIES = {
    "nan_energy": lambda f: f.update(energy=float("nan")),
    "energy_variance": lambda f: f.update(std=1e-6),
    "acceptance_collapse": lambda f: f.update(acceptance=0.001),
    "snr_drop": lambda f: f.update(sem=50.0),
    "cg_stall": lambda f: f["sr"].update(incomplete=True, iterations=200,
                                         residual=0.3),
    "straggler_drift": lambda f: f.update(step_time=0.05),
    "arena_growth": lambda f: f["gauges"].update(
        {"jit.arena_bytes": 32768.0 * (1 + f["step"])}
    ),
}


class TestEverySeededAnomalyTrips:
    @pytest.mark.parametrize("rule_name", sorted(ANOMALIES))
    def test_crit_within_five_steps(self, rule_name):
        monitor, crit_at = seeded_run(ANOMALIES[rule_name], onset=60, total=90)
        assert crit_at is not None, f"{rule_name} never reached CRIT"
        assert crit_at - 60 < 5, (
            f"{rule_name} took {crit_at - 60 + 1} steps to trip"
        )
        assert monitor.rule_verdicts()[rule_name] == CRIT, (
            f"CRIT came from the wrong rule: {monitor.rule_verdicts()}"
        )

    def test_variance_spike_also_trips(self):
        monitor, crit_at = seeded_run(lambda f: f.update(std=500.0))
        assert crit_at is not None
        assert monitor.rule_verdicts()["energy_variance"] == CRIT


class TestHysteresis:
    def test_single_bad_step_is_warn_not_crit(self):
        rng = np.random.default_rng(3)
        monitor = HealthMonitor()
        for step in range(1, 40):
            monitor.observe(clean_frame(step, rng))
        frame = clean_frame(40, rng)
        frame["acceptance"] = 0.001
        monitor.observe(frame)
        assert monitor.rule_verdicts()["acceptance_collapse"] == WARN

    def test_recovery_decays_to_ok_after_clear_after(self):
        rule = AcceptanceCollapseRule()
        monitor = HealthMonitor([rule])
        rng = np.random.default_rng(5)
        for step in range(1, 20):
            frame = clean_frame(step, rng)
            if step <= 5:
                frame["acceptance"] = 0.001
            monitor.observe(frame)
            if step == 5:
                assert monitor.verdict == CRIT
        # 14 clean steps > clear_after=10 -> back to OK, and the
        # transition log recorded the full round trip
        assert monitor.verdict == OK
        arcs = [(t["from"], t["to"]) for t in monitor.transitions]
        assert (OK, WARN) in arcs or (OK, CRIT) in arcs
        assert arcs[-1][1] == OK

    def test_nan_trips_immediately(self):
        assert NonFiniteEnergyRule.trip_after == 1
        monitor = HealthMonitor([NonFiniteEnergyRule()])
        monitor.observe({"step": 1, "energy": float("inf")})
        assert monitor.verdict == CRIT

    def test_baseline_freezes_while_bad(self):
        # A sustained collapse must not drag the rolling baseline down and
        # re-normalise itself into OK.
        rule = EnergyVarianceRule(min_samples=5)
        monitor = HealthMonitor([rule])
        rng = np.random.default_rng(7)
        for step in range(1, 20):
            monitor.observe(clean_frame(step, rng))
        for step in range(20, 120):
            frame = clean_frame(step, rng)
            frame["std"] = 1e-6
            monitor.observe(frame)
        assert monitor.verdict == CRIT  # still CRIT after 100 bad steps


class TestRuleUnits:
    def test_missing_keys_are_tolerated(self):
        rules = [
            NonFiniteEnergyRule(), EnergyVarianceRule(),
            AcceptanceCollapseRule(), SNRDropRule(), CGStallRule(),
            StragglerDriftRule(), ArenaGrowthRule(),
        ]
        for rule in rules:
            assert rule.check({"step": 1}) is None, rule.name

    def test_exact_sampler_never_trips_acceptance(self):
        rule = AcceptanceCollapseRule()
        assert rule.check({"acceptance": float("nan")}) is None
        assert rule.check({"acceptance": 1.0}) is None
        assert rule.check({"acceptance": 0.01}) is not None

    def test_arena_single_recompile_is_fine(self):
        rule = ArenaGrowthRule()
        assert rule.check({"gauges": {"jit.arena_bytes": 100.0}}) is None
        assert rule.check({"gauges": {"jit.arena_bytes": 200.0}}) is not None
        # plateau: growth stopped, no further complaints
        assert rule.check({"gauges": {"jit.arena_bytes": 200.0}}) is None

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate rule names"):
            HealthMonitor([CGStallRule(), CGStallRule()])

    def test_worst_verdict(self):
        assert worst_verdict([]) == OK
        assert worst_verdict([OK, WARN]) == WARN
        assert worst_verdict([WARN, CRIT, OK]) == CRIT


class TestReplayAndReport:
    def test_replay_matches_live(self):
        rng = np.random.default_rng(11)
        frames = [clean_frame(s, rng) for s in range(1, 50)]
        for f in frames[30:]:
            f["energy"] = float("nan")
        live = run_stream(HealthMonitor(), frames)
        replayed = replay_frames(frames)
        assert replayed.rule_verdicts() == live.rule_verdicts()
        assert replayed.report()["verdict"] == live.report()["verdict"]

    def test_report_shape(self):
        monitor, _ = seeded_run(ANOMALIES["cg_stall"])
        report = monitor.report()
        assert report["schema"] == "repro.health/1"
        assert report["verdict"] == CRIT
        info = report["rules"]["cg_stall"]
        assert info["verdict"] == CRIT
        assert info["tripped_step"] is not None and info["bad_steps"] > 0
        assert any(t["rule"] == "cg_stall" and t["to"] == CRIT
                   for t in report["transitions"])


class TestMonitorCLI:
    def _write_jsonl(self, path, frames):
        with path.open("w") as fh:
            fh.write(json.dumps({"event": "run_begin"}) + "\n")
            for f in frames:
                fh.write(json.dumps({"event": "step", **f}) + "\n")

    def test_clean_stream_exits_zero(self, tmp_path):
        rng = np.random.default_rng(2)
        self._write_jsonl(
            tmp_path / "run.jsonl", [clean_frame(s, rng) for s in range(1, 40)]
        )
        r = subprocess.run(
            [sys.executable, str(MONITOR), "health", str(tmp_path)],
            capture_output=True, text=True,
        )
        assert r.returncode == 0, r.stdout + r.stderr
        assert "OK" in r.stdout

    def test_anomalous_stream_exits_one_and_names_rule(self, tmp_path):
        rng = np.random.default_rng(2)
        frames = [clean_frame(s, rng) for s in range(1, 40)]
        for f in frames[20:]:
            f["sr"]["incomplete"] = True
        self._write_jsonl(tmp_path / "run.jsonl", frames)
        r = subprocess.run(
            [sys.executable, str(MONITOR), "health", str(tmp_path), "--json"],
            capture_output=True, text=True,
        )
        assert r.returncode == 1, r.stdout + r.stderr
        payload = json.loads(r.stdout)
        assert payload["sources"]["run.jsonl"]["rules"]["cg_stall"]["verdict"] == CRIT
