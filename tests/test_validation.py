"""The selfcheck battery itself."""

from __future__ import annotations

import pytest

from repro.validation import CHECKS, run_selfcheck


class TestSelfcheck:
    def test_all_checks_pass(self, capsys):
        results = run_selfcheck(verbose=False)
        failed = [r for r in results if not r.passed]
        assert not failed, f"selfcheck failures: {failed}"
        assert len(results) == len(CHECKS)

    def test_failures_are_reported_not_raised(self, monkeypatch):
        import repro.validation as v

        def broken():
            raise RuntimeError("injected failure")

        monkeypatch.setitem(v.CHECKS, "broken", broken)
        results = run_selfcheck(verbose=False)
        broken_result = [r for r in results if r.name == "broken"][0]
        assert not broken_result.passed
        assert "injected failure" in broken_result.detail

    def test_cli_exit_codes(self, capsys):
        from repro.cli import main

        assert main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "checks passed" in out
