"""MADE mask construction: the autoregressive property must hold exactly."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.masks import check_autoregressive, hidden_degrees, made_masks


class TestDegrees:
    def test_cycle_covers_all_degrees(self):
        deg = hidden_degrees(5, 12)
        assert set(deg) == {1, 2, 3, 4}

    def test_random_requires_rng(self):
        with pytest.raises(ValueError):
            hidden_degrees(5, 4, strategy="random")

    def test_random_in_range(self, rng):
        deg = hidden_degrees(6, 100, rng=rng, strategy="random")
        assert deg.min() >= 1 and deg.max() <= 5

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            hidden_degrees(5, 4, strategy="???")

    def test_n_one_is_degenerate_but_valid(self):
        m1, m2 = made_masks(1, 4)
        check_autoregressive((m1, m2))
        # Output 1 must be connected to nothing.
        assert (m2 @ m1).sum() == 0


class TestMasks:
    @pytest.mark.parametrize("n,h", [(2, 1), (3, 5), (8, 16), (20, 7), (50, 100)])
    def test_autoregressive_property(self, n, h):
        check_autoregressive(made_masks(n, h))

    def test_check_rejects_violation(self):
        m1 = np.ones((2, 3))
        m2 = np.ones((3, 2))
        with pytest.raises(ValueError):
            check_autoregressive((m1, m2))

    def test_first_output_disconnected(self):
        m1, m2 = made_masks(6, 20)
        conn = m2 @ m1
        assert np.all(conn[0] == 0)

    def test_last_output_sees_all_but_last_input(self):
        m1, m2 = made_masks(6, 24)
        conn = (m2 @ m1) > 0
        assert conn[5, :5].all()
        assert not conn[5, 5]

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 12), st.integers(1, 40))
    def test_autoregressive_property_hypothesis(self, n, h):
        m1, m2 = made_masks(n, h)
        conn = (m2 @ m1) > 0
        assert not np.any(np.triu(conn))  # upper triangle incl. diagonal empty

    def test_random_strategy_also_autoregressive(self, rng):
        check_autoregressive(made_masks(9, 30, rng=rng, strategy="random"))
