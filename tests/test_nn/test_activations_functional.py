"""Activation modules and the functional API wrappers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import LogSigmoid, ReLU, Sigmoid, Softplus, Tanh
from repro.tensor import Tensor
from repro.tensor import functional as F


@pytest.fixture
def x(rng):
    return rng.normal(size=(4, 6)) * 2


class TestActivationModules:
    @pytest.mark.parametrize(
        "module,ref",
        [
            (ReLU(), lambda a: np.maximum(a, 0)),
            (Sigmoid(), lambda a: 1 / (1 + np.exp(-a))),
            (Tanh(), np.tanh),
            (LogSigmoid(), lambda a: -np.log1p(np.exp(-a))),
            (Softplus(), lambda a: np.log1p(np.exp(a))),
        ],
    )
    def test_forward_matches_reference(self, module, ref, x):
        got = module(Tensor(x)).data
        assert np.allclose(got, ref(x), atol=1e-10)

    def test_modules_have_no_parameters(self):
        assert ReLU().parameters() == []


class TestFunctionalWrappers:
    @pytest.mark.parametrize(
        "name",
        ["relu", "sigmoid", "log_sigmoid", "softplus", "tanh", "exp",
         "log1p", "expm1", "sin", "cos"],
    )
    def test_wrapper_equals_method(self, name, x):
        xs = np.abs(x) + 0.1 if name == "log1p" else x  # log1p domain: > -1
        t = Tensor(xs)
        assert np.array_equal(getattr(F, name)(t).data, getattr(t, name)().data)

    def test_log_sqrt(self, rng):
        a = np.abs(rng.normal(size=5)) + 0.5
        assert np.allclose(F.log(Tensor(a)).data, np.log(a))
        assert np.allclose(F.sqrt(Tensor(a)).data, np.sqrt(a))

    def test_clip_logsumexp_softmax(self, x):
        t = Tensor(x)
        assert np.array_equal(F.clip(t, -1, 1).data, np.clip(x, -1, 1))
        assert np.allclose(F.softmax(t, axis=1).data.sum(axis=1), 1.0)
        assert F.logsumexp(t, axis=1).shape == (4,)

    def test_minimum_maximum(self, rng):
        a, b = rng.normal(size=5), rng.normal(size=5)
        assert np.array_equal(F.minimum(Tensor(a), Tensor(b)).data, np.minimum(a, b))
        assert np.array_equal(F.maximum(Tensor(a), Tensor(b)).data, np.maximum(a, b))

    def test_as_tensor_idempotent(self):
        t = Tensor(np.ones(3))
        assert F.as_tensor(t) is t
        assert isinstance(F.as_tensor([1.0, 2.0]), Tensor)

    def test_linear_and_masked_linear(self, rng):
        x = rng.normal(size=(3, 4))
        w = rng.normal(size=(2, 4))
        b = rng.normal(size=2)
        out = F.linear(Tensor(x), Tensor(w), Tensor(b)).data
        assert np.allclose(out, x @ w.T + b)
        mask = np.zeros((2, 4))
        masked = F.masked_linear(Tensor(x), Tensor(w), mask, Tensor(b)).data
        assert np.allclose(masked, np.broadcast_to(b, (3, 2)))

    def test_bernoulli_log_prob_sums_to_bernoulli(self, rng):
        logits = rng.normal(size=(5, 3))
        targets = (rng.random((5, 3)) < 0.5).astype(float)
        got = F.bernoulli_log_prob(Tensor(logits), targets).data
        p = 1 / (1 + np.exp(-logits))
        expect = targets * np.log(p) + (1 - targets) * np.log(1 - p)
        assert np.allclose(got, expect, atol=1e-10)
