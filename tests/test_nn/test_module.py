"""Module/Parameter registry, state dicts, flat views."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter


class TwoLayer(Module):
    def __init__(self, rng):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=rng)
        self.fc2 = Linear(8, 2, rng=rng)
        self.scale = Parameter(np.ones(1), name="scale")

    def forward(self, x):
        return self.fc2(self.fc1(x).relu()) * self.scale


@pytest.fixture
def model(rng):
    return TwoLayer(rng)


class TestRegistry:
    def test_named_parameters_order_is_deterministic(self, model):
        names = [n for n, _ in model.named_parameters()]
        assert names == [
            "scale",
            "fc1.weight",
            "fc1.bias",
            "fc2.weight",
            "fc2.bias",
        ]

    def test_num_parameters(self, model):
        assert model.num_parameters() == 1 + (4 * 8 + 8) + (8 * 2 + 2)

    def test_zero_grad_clears_all(self, model, rng):
        from repro.tensor import Tensor

        x = Tensor(rng.normal(size=(3, 4)))
        model(x).sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_roundtrip(self, model, rng):
        state = model.state_dict()
        for p in model.parameters():
            p.data += 1.0
        model.load_state_dict(state)
        for name, p in model.named_parameters():
            assert np.array_equal(p.data, state[name])

    def test_state_dict_is_a_copy(self, model):
        state = model.state_dict()
        state["scale"][0] = 99.0
        assert model.scale.data[0] != 99.0

    def test_missing_key_raises(self, model):
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_unexpected_key_raises(self, model):
        state = model.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self, model):
        state = model.state_dict()
        state["scale"] = np.zeros(2)
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestFlatViews:
    def test_flat_parameters_roundtrip(self, model, rng):
        flat = model.flat_parameters()
        assert flat.size == model.num_parameters()
        new = rng.normal(size=flat.size)
        model.set_flat_parameters(new)
        assert np.allclose(model.flat_parameters(), new)

    def test_set_flat_parameters_size_check(self, model):
        with pytest.raises(ValueError):
            model.set_flat_parameters(np.zeros(3))

    def test_flat_grad_zeros_for_missing(self, model):
        g = model.flat_grad()
        assert np.array_equal(g, np.zeros(model.num_parameters()))

    def test_flat_grad_matches_backward(self, model, rng):
        from repro.tensor import Tensor

        x = Tensor(rng.normal(size=(3, 4)))
        model(x).sum().backward()
        flat = model.flat_grad()
        offset = 0
        for p in model.parameters():
            seg = flat[offset : offset + p.size].reshape(p.shape)
            assert np.allclose(seg, p.grad if p.grad is not None else 0.0)
            offset += p.size

    def test_set_flat_grad(self, model, rng):
        g = rng.normal(size=model.num_parameters())
        model.set_flat_grad(g)
        assert np.allclose(model.flat_grad(), g)
