"""Sequential container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Linear, ReLU, Sequential
from repro.tensor import Tensor


@pytest.fixture
def net(rng):
    return Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))


class TestSequential:
    def test_forward_composes(self, net, rng):
        x = rng.normal(size=(3, 4))
        manual = net[2](net[1](net[0](Tensor(x)))).data
        assert np.allclose(net(Tensor(x)).data, manual)

    def test_parameters_collected_in_order(self, net):
        names = [n for n, _ in net.named_parameters()]
        assert names == ["0.weight", "0.bias", "2.weight", "2.bias"]

    def test_len_iter_getitem(self, net):
        assert len(net) == 3
        assert isinstance(net[1], ReLU)
        assert isinstance(net[-1], Linear)
        assert len(list(net)) == 3
        with pytest.raises(IndexError):
            net[3]

    def test_backward_reaches_all_layers(self, net, rng):
        net(Tensor(rng.normal(size=(2, 4)))).sum().backward()
        assert all(p.grad is not None for p in net.parameters())

    def test_rejects_non_modules(self):
        with pytest.raises(TypeError):
            Sequential(lambda x: x)

    def test_trains_on_regression(self, rng):
        """Tiny end-to-end check: fit y = x·w with MSE."""
        from repro.optim import Adam

        net = Sequential(Linear(3, 16, rng=rng), ReLU(), Linear(16, 1, rng=rng))
        w_true = np.array([1.0, -2.0, 0.5])
        x = rng.normal(size=(256, 3))
        y = (x @ w_true)[:, None]
        opt = Adam(net.parameters(), lr=0.01)
        for _ in range(300):
            net.zero_grad()
            pred = net(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2.0).mean()
            loss.backward()
            opt.step()
        assert float(loss.data) < 0.05
