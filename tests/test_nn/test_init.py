"""Weight initialisers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import init


class TestInitializers:
    def test_kaiming_uniform_bounds_and_shape(self, rng):
        w = init.kaiming_uniform(rng, 64, 100)
        assert w.shape == (64, 100)
        bound = np.sqrt(3.0 / 100)
        assert np.all(np.abs(w) <= bound)
        # Roughly uniform: mean near 0, variance near bound²/3.
        assert abs(w.mean()) < bound / 10
        assert w.var() == pytest.approx(bound**2 / 3, rel=0.15)

    def test_kaiming_gain_scales_bounds(self, rng):
        w1 = init.kaiming_uniform(rng, 50, 50, gain=1.0)
        w2 = init.kaiming_uniform(rng, 50, 50, gain=2.0)
        assert np.abs(w2).max() > np.abs(w1).max()

    def test_uniform_bias_bounds(self, rng):
        b = init.uniform_bias(rng, 32, 16)
        assert b.shape == (32,)
        assert np.all(np.abs(b) <= 1.0 / 4.0)

    def test_normal_std(self, rng):
        w = init.normal(rng, (200, 200), std=0.05)
        assert w.std() == pytest.approx(0.05, rel=0.05)

    def test_zeros(self):
        assert np.array_equal(init.zeros((3, 2)), np.zeros((3, 2)))

    def test_degenerate_fan_in(self, rng):
        # fan_in 0 must not divide by zero.
        w = init.kaiming_uniform(rng, 4, 0)
        assert w.shape == (4, 0)


class TestHarnessCli:
    def test_paper_flag_parses(self, monkeypatch):
        import sys

        sys.path.insert(0, "benchmarks")
        from _harness import parse_args

        monkeypatch.setattr(sys, "argv", ["bench", "--paper", "--iters", "7"])
        args = parse_args("test")
        assert args.paper is True
        assert args.iters == 7
        monkeypatch.setattr(sys, "argv", ["bench"])
        args = parse_args("test")
        assert args.paper is False and args.iters is None
