"""Linear / MaskedLinear layer behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Linear, MaskedLinear
from repro.tensor import Tensor, gradcheck


class TestLinear:
    def test_forward_matches_numpy(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        out = layer(Tensor(x)).data
        assert np.allclose(out, x @ layer.weight.data.T + layer.bias.data)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        x = rng.normal(size=(2, 4))
        assert np.allclose(layer(Tensor(x)).data, x @ layer.weight.data.T)

    def test_gradcheck_through_layer(self, rng):
        layer = Linear(3, 2, rng=rng)

        def f(w, b, x):
            from repro.tensor import functional as F

            return F.linear(x, w, b).tanh()

        assert gradcheck(
            f, [layer.weight.data, layer.bias.data, rng.normal(size=(4, 3))]
        )

    def test_weight_std_init(self, rng):
        layer = Linear(100, 100, rng=rng, weight_std=0.01)
        assert abs(layer.weight.data.std() - 0.01) < 0.002

    def test_repr(self, rng):
        assert "Linear(4, 3" in repr(Linear(4, 3, rng=rng))


class TestMaskedLinear:
    def test_mask_blocks_connections(self, rng):
        mask = np.zeros((3, 4))
        mask[0, 0] = 1.0
        layer = MaskedLinear(4, 3, mask, rng=rng, bias=False)
        x = rng.normal(size=(2, 4))
        out = layer(Tensor(x)).data
        assert np.allclose(out[:, 1:], 0.0)
        assert np.allclose(out[:, 0], x[:, 0] * layer.weight.data[0, 0])

    def test_masked_weights_get_zero_gradient(self, rng):
        mask = (rng.random((3, 4)) < 0.5).astype(float)
        layer = MaskedLinear(4, 3, mask, rng=rng)
        layer(Tensor(rng.normal(size=(5, 4)))).sum().backward()
        assert np.allclose(layer.weight.grad[mask == 0.0], 0.0)

    def test_mask_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            MaskedLinear(4, 3, np.ones((4, 3)), rng=rng)

    def test_effective_weight(self, rng):
        mask = np.eye(3)
        layer = MaskedLinear(3, 3, mask, rng=rng)
        assert np.allclose(layer.effective_weight(), layer.weight.data * mask)

    def test_repr_counts_live_weights(self, rng):
        layer = MaskedLinear(4, 3, np.ones((3, 4)), rng=rng)
        assert "12/12" in repr(layer)
