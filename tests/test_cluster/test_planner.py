"""Parallelism planner: feasibility and the DP-until-memory-binds rule."""

from __future__ import annotations

import pytest

from repro.cluster.device import ClusterSpec, DeviceSpec, NodeSpec
from repro.cluster.planner import ParallelPlan, plan_parallelism


class TestPlanner:
    def test_returns_sorted_feasible_plans(self):
        plans = plan_parallelism(500, global_batch=256)
        assert plans
        times = [p.iteration_time for p in plans]
        assert times == sorted(times)
        assert all(p.memory_ok for p in plans)

    def test_batch_divisibility_respected(self):
        plans = plan_parallelism(100, global_batch=96)
        for p in plans:
            assert 96 % p.data_ranks == 0
            assert p.mini_batch * p.data_ranks == 96

    def test_pure_data_parallel_wins_when_memory_is_plentiful(self):
        """The paper's regime: the model is tiny, so sharding only adds
        per-pass logit allreduces — never worth it."""
        best = plan_parallelism(1000, global_batch=512)[0]
        assert best.model_shards == 1
        assert best.data_ranks > 1

    def test_sharding_chosen_when_model_dominates_memory(self):
        """A fat-hidden-layer model on small-memory devices: only sharded
        plans fit, so the planner must pick model_shards > 1."""
        tiny = DeviceSpec("tiny", 15.7e12, mem_bytes=3.0e8)
        cluster = ClusterSpec(node=NodeSpec(device=tiny, gpus=4), nodes=1)
        plans = plan_parallelism(
            200, global_batch=1, hidden=100_000, cluster=cluster
        )
        best = plans[0]
        assert best.memory_ok
        assert best.model_shards > 1

    def test_infeasible_plans_returned_when_nothing_fits(self):
        nano = DeviceSpec("nano", 1e12, mem_bytes=1e6)
        cluster = ClusterSpec(node=NodeSpec(device=nano, gpus=2), nodes=1)
        plans = plan_parallelism(1000, global_batch=64, cluster=cluster)
        assert plans
        assert not any(p.memory_ok for p in plans)

    def test_gpu_budget_respected(self):
        plans = plan_parallelism(100, global_batch=1024)
        cluster_gpus = 24  # default 6 nodes × 4
        assert all(p.total_gpus <= cluster_gpus for p in plans)

    def test_mp_comm_zero_without_sharding(self):
        for p in plan_parallelism(100, global_batch=64):
            if p.model_shards == 1:
                assert p.mp_comm_time == 0.0
            else:
                assert p.mp_comm_time > 0.0

    def test_str_rendering(self):
        plan = plan_parallelism(50, global_batch=32)[0]
        s = str(plan)
        assert "DP" in s and "MP" in s and "ms/iter" in s

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_parallelism(0, global_batch=8)
        with pytest.raises(ValueError):
            plan_parallelism(10, global_batch=0)


class TestScalingReport:
    def test_report_contains_all_sections(self):
        from repro.cluster.report import scaling_report

        text = scaling_report(500, global_batch=256, iterations=100)
        for fragment in (
            "Scaling report", "Single device", "Recommended execution plans",
            "Speedup over one device", "Robustness", "straggler",
        ):
            assert fragment in text, fragment

    def test_report_validation(self):
        from repro.cluster.report import scaling_report

        with pytest.raises(ValueError):
            scaling_report(0)

    def test_cli_plan_command(self, capsys):
        from repro.cli import main

        assert main(["plan", "--n", "200", "--batch-size", "128",
                     "--iterations", "50"]) == 0
        out = capsys.readouterr().out
        assert "Recommended execution plans" in out
