"""Discrete-event simulator vs the closed-form model, plus stragglers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import MadeAutoCostModel
from repro.cluster.simulator import DataParallelSimulator


class TestHomogeneous:
    def test_matches_closed_form_model(self):
        """With no jitter and unit speeds, simulated wall time equals the
        closed-form iteration time up to the tiny update term."""
        sim = DataParallelSimulator(n=200, mini_batch=64, n_nodes=2,
                                    gpus_per_node=4)
        res = sim.run(iterations=3)
        model = MadeAutoCostModel()
        expect = model.iteration_time(200, 64, n_nodes=2, gpus_per_node=4)
        assert res.mean_iteration == pytest.approx(expect, rel=0.01)

    def test_no_idle_when_homogeneous(self):
        res = DataParallelSimulator(n=100, mini_batch=32, gpus_per_node=4).run(2)
        assert all(t.idle == pytest.approx(0.0, abs=1e-15) for t in res.timelines)
        assert np.allclose(res.utilization, 1.0)

    def test_deterministic_without_jitter(self):
        sim = DataParallelSimulator(n=50, mini_batch=16, gpus_per_node=2)
        a = sim.run(5).iteration_times
        b = sim.run(5).iteration_times
        assert np.array_equal(a, b)
        assert np.allclose(a, a[0])


class TestStragglers:
    def test_one_straggler_gates_the_job(self):
        base = DataParallelSimulator(n=100, mini_batch=32, n_nodes=2,
                                     gpus_per_node=4).run(3)
        factors = np.ones(8)
        factors[3] = 2.0  # one 2× slow GPU
        slow = DataParallelSimulator(
            n=100, mini_batch=32, n_nodes=2, gpus_per_node=4,
            speed_factors=factors,
        ).run(3)
        # Compute dominates this configuration, so the whole job runs ≈ 2×.
        assert slow.slowdown_vs(base) > 1.8

    def test_fast_ranks_idle_at_barrier(self):
        factors = np.array([1.0, 1.0, 1.0, 3.0])
        res = DataParallelSimulator(
            n=100, mini_batch=32, gpus_per_node=4, speed_factors=factors
        ).run(2)
        idles = [t.idle for t in res.timelines]
        assert idles[3] == pytest.approx(0.0, abs=1e-15)  # straggler never waits
        assert all(i > 0 for i in idles[:3])
        assert res.utilization[3] > res.utilization[0]

    def test_jitter_raises_mean_iteration_time(self):
        """Synchronous steps take the max over ranks, so zero-mean noise
        still *increases* expected wall time (the straggler effect of pure
        variance)."""
        quiet = DataParallelSimulator(n=100, mini_batch=32, gpus_per_node=8).run(20)
        noisy = DataParallelSimulator(
            n=100, mini_batch=32, gpus_per_node=8, jitter=0.3
        ).run(20, rng=np.random.default_rng(7))
        assert noisy.mean_iteration > quiet.mean_iteration

    def test_timeline_accounting_consistent(self):
        factors = np.array([1.0, 2.0])
        res = DataParallelSimulator(
            n=50, mini_batch=16, gpus_per_node=2, speed_factors=factors
        ).run(1)
        totals = {t.total for t in res.timelines}
        # Every rank's busy+idle must equal the same wall time.
        assert max(totals) - min(totals) < 1e-12


class TestValidation:
    def test_bad_args(self):
        with pytest.raises(ValueError):
            DataParallelSimulator(n=0, mini_batch=4)
        with pytest.raises(ValueError):
            DataParallelSimulator(n=10, mini_batch=4, speed_factors=np.ones(3))
        with pytest.raises(ValueError):
            DataParallelSimulator(
                n=10, mini_batch=4, speed_factors=np.array([0.0])
            )
        with pytest.raises(ValueError):
            DataParallelSimulator(n=10, mini_batch=4, jitter=-1.0)
        with pytest.raises(ValueError):
            DataParallelSimulator(n=10, mini_batch=4).run(0)
