"""Memory ladder (Table 7 row) and parallel-efficiency formulas (Eq. 14/15)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import MemoryModel, mcmc_parallel_efficiency, auto_parallel_efficiency
from repro.cluster.comm_model import allreduce_time, hierarchical_allreduce_time
from repro.cluster.device import DGX_NODE, ClusterSpec, DeviceSpec
from repro.cluster.efficiency import mcmc_slope
from repro.cluster.memory import PAPER_MBS_LADDER


class TestMemoryModel:
    def test_ladder_matches_paper_within_one_rung(self):
        mm = MemoryModel()
        pred = mm.ladder()
        exact = 0
        for n, paper in PAPER_MBS_LADDER.items():
            ratio = pred[n] / paper
            assert 0.5 <= ratio <= 2.0, f"n={n}: predicted {pred[n]}, paper {paper}"
            exact += pred[n] == paper
        assert exact >= 6  # most rungs land exactly

    def test_mbs_is_power_of_two(self):
        mm = MemoryModel()
        for n in (30, 77, 333, 4097):
            mbs = mm.max_mini_batch(n)
            assert mbs & (mbs - 1) == 0

    def test_mbs_monotone_decreasing_in_n(self):
        mm = MemoryModel()
        sizes = [mm.max_mini_batch(n) for n in (50, 100, 500, 1000, 5000)]
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))

    def test_too_large_problem_raises(self):
        tiny = DeviceSpec("tiny", 1e12, mem_bytes=1e4)
        mm = MemoryModel(device=tiny)
        with pytest.raises(ValueError):
            mm.max_mini_batch(10000)

    def test_model_memory_is_paper_formula(self):
        mm = MemoryModel()
        n, h = 100, 33
        assert mm.model_bytes(n, h) == 4.0 * (2 * h * n + h + n)


class TestEq14:
    def test_speedup_is_affine_in_L(self):
        k, ns, j = 400, 64, 1
        effs = [mcmc_parallel_efficiency(L, ns, k, j) for L in range(1, 9)]
        diffs = np.diff(effs)
        assert np.allclose(diffs, diffs[0])  # affine

    def test_slope_decays_with_burn_in(self):
        assert mcmc_slope(64, 0) > mcmc_slope(64, 100) > mcmc_slope(64, 10000)

    def test_no_burn_in_no_thin_is_ideal(self):
        # k=0, j=1: speedup = (nL)/(n) = L exactly.
        for L in (1, 2, 8):
            assert mcmc_parallel_efficiency(L, 32, 0, 1) == pytest.approx(L)

    def test_large_burn_in_kills_scaling(self):
        eff = mcmc_parallel_efficiency(100, 16, burn_in=10**6)
        assert eff < 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            mcmc_parallel_efficiency(0, 1, 1)


class TestEq15:
    def test_efficiency_close_to_L_for_large_n(self):
        eff = auto_parallel_efficiency(24, n=1000, hidden=200, mini_batch=512)
        assert eff == pytest.approx(24.0, rel=1e-3)

    def test_efficiency_degrades_only_for_tiny_work(self):
        small = auto_parallel_efficiency(8, n=2, hidden=2, mini_batch=1, comm_flops_equiv=1e6)
        assert small < 1.0

    def test_monotone_in_L(self):
        effs = [auto_parallel_efficiency(L, 100, 50, 64) for L in range(1, 10)]
        assert all(b > a for a, b in zip(effs, effs[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            auto_parallel_efficiency(0, 10, 10, 10)


class TestCommModel:
    def test_single_endpoint_free(self):
        assert allreduce_time(1000, 1, 1e9, 1e-6) == 0.0

    def test_bandwidth_term_scales_with_payload(self):
        t1 = allreduce_time(10_000, 4, 1e9, 0.0)
        t2 = allreduce_time(20_000, 4, 1e9, 0.0)
        assert t2 == pytest.approx(2 * t1)

    def test_latency_term_scales_with_endpoints(self):
        t4 = allreduce_time(1, 4, 1e20, 1e-6)
        t8 = allreduce_time(1, 8, 1e20, 1e-6)
        assert t8 > t4

    def test_hierarchical_combines_levels(self):
        cluster = ClusterSpec(node=DGX_NODE, nodes=6)
        single = hierarchical_allreduce_time(10_000, 1, 4, cluster)
        multi = hierarchical_allreduce_time(10_000, 6, 4, cluster)
        assert multi > single > 0.0
        assert hierarchical_allreduce_time(10_000, 1, 1, cluster) == 0.0
