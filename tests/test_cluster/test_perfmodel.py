"""Cluster performance model: calibration accuracy and scaling shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    MadeAutoCostModel,
    RbmMcmcCostModel,
    calibrate_to_table1,
)
from repro.cluster.perfmodel import TABLE1_MADE_SECONDS, TABLE1_RBM_SECONDS


@pytest.fixture(scope="module")
def calibrated():
    return calibrate_to_table1()


class TestCalibration:
    def test_made_within_20_percent_of_table1(self, calibrated):
        made, _ = calibrated
        for n, t in TABLE1_MADE_SECONDS.items():
            pred = made.training_time(n, 1024, 300)
            assert abs(pred - t) / t < 0.20, f"n={n}: {pred:.2f} vs {t}"

    def test_rbm_within_10_percent_of_table1(self, calibrated):
        _, rbm = calibrated
        for n, t in TABLE1_RBM_SECONDS.items():
            pred = rbm.training_time(n, 1024, 300)
            assert abs(pred - t) / t < 0.10, f"n={n}: {pred:.2f} vs {t}"

    def test_made_much_faster_than_rbm_everywhere(self, calibrated):
        """Table 1's headline: MADE+AUTO ≫ RBM+MCMC at every size."""
        made, rbm = calibrated
        for n in TABLE1_MADE_SECONDS:
            assert made.training_time(n, 1024) < rbm.training_time(n, 1024) / 5


class TestShapes:
    def test_made_time_roughly_linear_in_n(self, calibrated):
        made, _ = calibrated
        t100 = made.training_time(100, 1024)
        t200 = made.training_time(200, 1024)
        t400 = made.training_time(400, 1024)
        assert 1.5 < t200 / t100 < 3.0
        assert 1.5 < t400 / t200 < 3.0

    def test_mcmc_time_scales_with_chain_length(self, calibrated):
        _, rbm = calibrated
        base = rbm.training_time(100, 1024, burn_in=100)
        long = rbm.training_time(100, 1024, burn_in=1000)
        assert long > base
        # Thinning ×k scales the collection phase ≈ ×k (Table 4's time rows).
        t1 = rbm.sampling_time(100, 1024, thin=1)
        t10 = rbm.sampling_time(100, 1024, thin=10)
        assert 5 < t10 / t1 < 11

    def test_weak_scaling_is_flat(self, calibrated):
        """Fig. 3: normalised times ≈ 1 across GPU configurations."""
        made, _ = calibrated
        configs = [(1, 1), (1, 2), (1, 4), (2, 2), (2, 4), (4, 2), (4, 4), (8, 2), (6, 4)]
        table = made.weak_scaling_table(
            (1000, 2000), {1000: 512, 2000: 128}, configs
        )
        for n, times in table.items():
            values = np.array(list(times.values()))
            norm = values / values[-1]  # normalise by the 6×4 config
            assert np.all(np.abs(norm - 1.0) < 0.05), f"n={n}: {norm}"

    def test_allreduce_negligible_vs_sampling(self, calibrated):
        made, _ = calibrated
        samp = made.sampling_time(1000, 512)
        comm = made.allreduce_time(1000, 6, 4)
        assert comm < samp / 100

    def test_component_times_positive(self):
        model = MadeAutoCostModel()
        assert model.sampling_time(50, 16) > 0
        assert model.measurement_time(50, 16) > 0
        assert model.backward_time(50, 16) > 0
        assert model.allreduce_time(50, 1, 1) == 0.0

    def test_rbm_chain_steps_formula(self):
        model = RbmMcmcCostModel(chains=2)
        assert model.chain_steps(100, 1024) == 3 * 100 + 100 + 512
        assert model.chain_steps(100, 1024, burn_in=50, thin=3) == 50 + 3 * 512
