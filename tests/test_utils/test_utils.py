"""Utility modules: RNG management, timers, table formatting."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.utils import RngPool, Timer, WallClock, as_generator, format_table, spawn_generators
from repro.utils.rng import check_seeds_distinct
from repro.utils.tables import format_cell


class TestRng:
    def test_as_generator_accepts_all_forms(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g
        assert isinstance(as_generator(5), np.random.Generator)
        assert isinstance(as_generator(None), np.random.Generator)

    def test_spawn_streams_distinct(self):
        gens = spawn_generators(42, 4)
        draws = [g.random(100) for g in gens]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.allclose(draws[i], draws[j])

    def test_spawn_reproducible(self):
        a = spawn_generators(42, 3)
        b = spawn_generators(42, 3)
        for ga, gb in zip(a, b):
            assert np.array_equal(ga.random(10), gb.random(10))

    def test_spawn_from_generator(self):
        gens = spawn_generators(np.random.default_rng(1), 2)
        assert len(gens) == 2

    def test_spawn_validation(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_pool_streams_stable_by_name(self):
        pool = RngPool(7)
        first = pool["sampling"]
        assert pool["sampling"] is first

    def test_pool_names_independent_of_order(self):
        p1, p2 = RngPool(7), RngPool(7)
        a1 = p1["a"].random(5)
        _ = p2["b"].random(5)
        a2 = p2["a"].random(5)
        assert np.array_equal(a1, a2)

    def test_pool_spawn(self):
        pool = RngPool(3)
        gens = pool.spawn("workers", 3)
        assert len(gens) == 3

    def test_check_seeds_distinct(self):
        check_seeds_distinct([1, 2, 3])
        with pytest.raises(ValueError):
            check_seeds_distinct([1, 2, 1])


class TestTimers:
    def test_timer_measures(self):
        with Timer() as t:
            time.sleep(0.01)
        assert 0.005 < t.elapsed < 1.0

    def test_wallclock_accumulates(self):
        clock = WallClock()
        for _ in range(3):
            with clock.measure("work"):
                time.sleep(0.002)
        assert clock.counts["work"] == 3
        assert clock.totals["work"] >= 0.006
        assert clock.mean("work") >= 0.002
        assert "work" in clock.summary()

    def test_wallclock_snapshot_is_a_detached_copy(self):
        clock = WallClock()
        clock.add("sample", 0.5)
        clock.add("sample", 0.25)
        clock.add("update", 1.0)
        snap = clock.snapshot()
        assert list(snap) == ["sample", "update"]  # sorted by label
        assert snap["sample"] == {"total": 0.75, "count": 2.0, "mean": 0.375}
        clock.add("sample", 1.0)  # later accumulation must not mutate it
        assert snap["sample"]["total"] == 0.75

    def test_wallclock_reset_zeroes_everything(self):
        clock = WallClock()
        clock.add("work", 1.0)
        clock.reset()
        assert clock.snapshot() == {}
        assert clock.totals == {} and clock.counts == {}


class TestTables:
    def test_format_cell_variants(self):
        assert format_cell(None) == "-"
        assert format_cell((1.234, 0.5), precision=1) == "1.2 ± 0.5"
        assert format_cell(3.14159, precision=2) == "3.14"
        assert format_cell("abc") == "abc"
        assert format_cell(7) == "7"

    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [33, (1.0, 0.1)]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        header, sep, *data = lines[2:]
        assert "|" in header and all("|" in d for d in data)
        assert set(sep) <= {"-", "+"}

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])
