"""The benchmark harness infrastructure itself."""

from __future__ import annotations

import pathlib
import sys

import numpy as np
import pytest

BENCH_DIR = pathlib.Path(__file__).parent.parent / "benchmarks"
sys.path.insert(0, str(BENCH_DIR))


class TestHarnessHelpers:
    def test_mean_std(self):
        from _harness import mean_std

        m, s = mean_std([1.0, 2.0, 3.0])
        assert m == pytest.approx(2.0)
        assert s == pytest.approx(np.std([1, 2, 3]))

    def test_protocol_reexports(self):
        import _harness

        for name in ("build_model", "build_sampler", "build_optimizer",
                     "make_hamiltonian", "train_once", "format_table"):
            assert hasattr(_harness, name)

    def test_paper_dims(self):
        from _harness import PAPER_DIMS

        assert PAPER_DIMS == (20, 50, 100, 200, 500)

    def test_emit_json_envelope(self, tmp_path):
        import json

        from _harness import BENCH_SCHEMA_VERSION, emit_json

        path = emit_json(
            "unit_test", {"results": [{"n": 8, "seconds": 0.5}]}, out_dir=tmp_path
        )
        assert path == tmp_path / "BENCH_unit_test.json"
        doc = json.loads(path.read_text())
        assert doc["benchmark"] == "unit_test"
        assert doc["schema_version"] == BENCH_SCHEMA_VERSION == 2
        assert doc["results"] == [{"n": 8, "seconds": 0.5}]
        for key in ("unix_time", "python", "numpy", "git_sha", "hostname"):
            assert key in doc
        # Provenance stamps are real values in a git checkout.
        assert doc["hostname"]
        assert doc["git_sha"] is None or len(doc["git_sha"]) >= 7

    def test_read_bench_json_backfills_v1(self, tmp_path):
        import json

        from _harness import read_bench_json

        legacy = tmp_path / "BENCH_old.json"
        legacy.write_text(json.dumps({"unix_time": 1.0, "results": []}))
        doc = read_bench_json(legacy)
        assert doc["schema_version"] == 1
        assert doc["git_sha"] is None and doc["hostname"] is None
        assert doc["benchmark"] == "old"  # recovered from the file name

    def test_read_bench_json_passes_v2_through(self, tmp_path):
        from _harness import emit_json, read_bench_json

        path = emit_json("rt", {"results": [1]}, out_dir=tmp_path)
        doc = read_bench_json(path)
        assert doc["schema_version"] == 2
        assert doc["results"] == [1]


class TestKernelFastpathsHarness:
    def test_speedup_rows_are_machine_readable(self):
        """A tiny end-to-end run of the fast-path harness: the fused/
        incremental kernels must beat the naive paths even at toy scale."""
        import bench_kernel_fastpaths as bench

        (row,) = bench.run(dims=(24,), batch=64, repeats=1)
        assert row["n"] == 24
        assert row["sample_speedup"] > 1.0
        assert row["combined_speedup"] > 1.0
        assert 0.0 < row["sample_pass_equivalents"] < 24


class TestRunAll:
    def test_discovers_all_harnesses(self):
        import run_all

        names = [p.stem for p in run_all.discover()]
        # Every paper table/figure plus the ablations must be present.
        for required in (
            "bench_table1_training_time",
            "bench_table2_convergence",
            "bench_table3_latent_ablation",
            "bench_table4_mcmc_schemes",
            "bench_table5_hitting_time",
            "bench_table6_raw_scaling",
            "bench_table7_memory_saturated",
            "bench_fig1_sampling_cost",
            "bench_kernel_fastpaths",
            "bench_fig2_training_curves",
            "bench_fig3_weak_scaling",
            "bench_fig4_batch_convergence",
            "bench_eq14_parallel_efficiency",
        ):
            assert required in names, f"missing harness {required}"

    def test_run_one_executes_fast_harness(self, tmp_path, monkeypatch):
        import run_all

        monkeypatch.setattr(run_all, "OUT_DIR", tmp_path)
        path = BENCH_DIR / "bench_eq14_parallel_efficiency.py"
        ok, elapsed = run_all.run_one(path)
        assert ok
        out = (tmp_path / f"{path.stem}.txt").read_text()
        assert "Eq. 14/15" in out
        assert "AUTO" in out

    def test_main_filters(self, capsys, tmp_path, monkeypatch):
        import run_all

        monkeypatch.setattr(run_all, "OUT_DIR", tmp_path)
        rc = run_all.main(["nonexistent-harness"])
        assert rc == 1
