"""Warm-model cache (LRU + pinning) and the admission-controlled job queue."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.cache import WarmModelCache
from repro.serve.jobqueue import AdmissionError, JobQueue
from repro.serve.protocol import JobSpec, ModelKey


class FakeTrainer:
    """Just enough trainer for a CacheEntry: an eval RNG to fork from."""

    def __init__(self, seed=0):
        self.eval_rng = np.random.default_rng(seed)


def key(tag: str) -> ModelKey:
    return ModelKey(hamiltonian=("tim", 6, 0), ansatz=("made", 6, 8, hash(tag) % 97),
                    checkpoint=tag)


class TestWarmModelCache:
    def test_lru_eviction_order(self):
        cache = WarmModelCache(capacity=2)
        cache.get(key("a"), FakeTrainer)
        cache.get(key("b"), FakeTrainer)
        cache.get(key("a"))  # touch a: b becomes LRU
        cache.get(key("c"), FakeTrainer)
        assert cache.keys() == [key("a"), key("c")]
        assert cache.evictions == 1

    def test_hit_returns_same_entry(self):
        cache = WarmModelCache(capacity=2)
        first = cache.get(key("a"), FakeTrainer)
        again = cache.get(key("a"), FakeTrainer)
        assert again is first
        assert cache.hits == 1 and cache.misses == 1

    def test_miss_without_factory_is_none(self):
        assert WarmModelCache().get(key("absent")) is None

    def test_pinned_entry_is_never_evicted(self):
        """The acceptance property: a running job's model survives any
        amount of cache pressure."""
        cache = WarmModelCache(capacity=2)
        cache.get(key("job"), FakeTrainer)
        cache.pin(key("job"))
        for tag in "abcdefgh":
            cache.get(key(tag), FakeTrainer)
        assert key("job") in cache.keys()
        assert len(cache) <= cache.capacity

    def test_all_pinned_exceeds_capacity_rather_than_break_a_pin(self):
        cache = WarmModelCache(capacity=1)
        cache.get(key("a"), FakeTrainer, pin=True)
        cache.get(key("b"), FakeTrainer, pin=True)
        assert len(cache) == 2  # over capacity, both pins intact
        assert cache.stats()["pinned"] == 2

    def test_atomic_pin_survives_where_separate_pin_races(self):
        """With the cache full of pinned entries, an unpinned insert is
        evicted immediately — get(pin=True) is the only safe idiom."""
        cache = WarmModelCache(capacity=1)
        cache.get(key("a"), FakeTrainer, pin=True)
        cache.get(key("b"), FakeTrainer)  # evicted before pin() could land
        with pytest.raises(KeyError):
            cache.pin(key("b"))
        entry = cache.get(key("c"), FakeTrainer, pin=True)
        assert entry.pinned and key("c") in cache.keys()

    def test_unpin_restores_evictability(self):
        cache = WarmModelCache(capacity=1)
        cache.get(key("a"), FakeTrainer)
        cache.pin(key("a"))
        cache.get(key("b"), FakeTrainer)  # over capacity while a is pinned
        cache.unpin(key("a"))  # drops back to capacity
        assert len(cache) == 1

    def test_pin_absent_key_raises(self):
        with pytest.raises(KeyError):
            WarmModelCache().pin(key("ghost"))

    def test_entry_query_rng_is_independent_fork(self):
        cache = WarmModelCache()
        entry = cache.get(key("a"), FakeTrainer)
        before = entry.vqmc.eval_rng.bit_generator.state
        entry.query_rng.random(8)
        assert entry.vqmc.eval_rng.bit_generator.state == before


class _Job:
    def __init__(self, job_id, **spec):
        self.id = job_id
        self.spec = JobSpec.from_json(spec)
        self.estimated_seconds = 0.0


class TestJobQueue:
    def test_priority_then_fifo(self):
        queue = JobQueue(estimator=lambda spec: 1.0)
        queue.admit(_Job("low-1", priority=0))
        queue.admit(_Job("hi-1", priority=5))
        queue.admit(_Job("low-2", priority=0))
        queue.admit(_Job("hi-2", priority=5))
        order = [queue.get(timeout=0).id for _ in range(4)]
        assert order == ["hi-1", "hi-2", "low-1", "low-2"]

    def test_queue_full(self):
        queue = JobQueue(max_pending=1, estimator=lambda spec: 1.0)
        queue.admit(_Job("a"))
        with pytest.raises(AdmissionError, match="queue full"):
            queue.admit(_Job("b"))
        assert queue.rejected == 1

    def test_job_too_large(self):
        queue = JobQueue(max_job_seconds=10.0,
                         estimator=lambda spec: spec.iterations * 1.0)
        queue.admit(_Job("small", iterations=5))
        with pytest.raises(AdmissionError, match="job too large"):
            queue.admit(_Job("huge", iterations=50))

    def test_backlog_budget_scales_with_workers(self):
        one = JobQueue(max_backlog_seconds=10.0, workers=1,
                       estimator=lambda spec: 6.0)
        one.admit(_Job("a"))
        with pytest.raises(AdmissionError, match="backlog over budget"):
            one.admit(_Job("b"))
        two = JobQueue(max_backlog_seconds=10.0, workers=2,
                       estimator=lambda spec: 6.0)
        two.admit(_Job("a"))
        two.admit(_Job("b"))  # 12s / 2 workers = within budget

    def test_estimate_attached_and_backlog_released(self):
        queue = JobQueue(estimator=lambda spec: 3.5)
        job = _Job("a")
        assert queue.admit(job) == 3.5
        assert job.estimated_seconds == 3.5
        assert queue.stats()["backlog_seconds"] == 3.5
        queue.get(timeout=0)
        assert queue.stats()["backlog_seconds"] == 0.0

    def test_remove_queued_job(self):
        queue = JobQueue(estimator=lambda spec: 1.0)
        queue.admit(_Job("a"))
        queue.admit(_Job("b"))
        assert queue.remove("a")
        assert not queue.remove("a")
        assert queue.get(timeout=0).id == "b"

    def test_planner_estimator_is_monotone_in_iterations(self):
        small = JobSpec.from_json({"n": 10, "iterations": 10})
        large = JobSpec.from_json({"n": 10, "iterations": 1000})
        from repro.serve.jobqueue import estimate_job_seconds

        assert estimate_job_seconds(large) > estimate_job_seconds(small) > 0
