"""Wire-protocol validation: specs, vocabularies, canonical model keys."""

from __future__ import annotations

import pytest

from repro.serve.protocol import (
    MAX_QUERY_BATCH,
    JobSpec,
    JobState,
    ProtocolError,
    QuerySpec,
)


class TestJobSpec:
    def test_defaults_round_trip(self):
        spec = JobSpec.from_json({})
        assert spec.problem == "tim" and spec.arch == "made"
        assert JobSpec.from_json(spec.to_json()) == spec

    def test_unknown_fields_rejected(self):
        with pytest.raises(ProtocolError, match="unknown job spec fields"):
            JobSpec.from_json({"probem": "tim"})  # typo must 400, not default

    @pytest.mark.parametrize(
        "field,value",
        [
            ("problem", "sudoku"),
            ("arch", "transformer"),
            ("sampler", "exact"),
            ("optimizer", "lbfgs"),
            ("n", 1),
            ("n", "eight"),
            ("iterations", 0),
            ("batch_size", 0),
            ("hidden", 0),
            ("hidden", True),
            ("inject_fault_at", 0),
        ],
    )
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ProtocolError):
            JobSpec.from_json({field: value})

    def test_bool_is_not_an_integer(self):
        with pytest.raises(ProtocolError):
            JobSpec.from_json({"n": True})

    def test_model_key_identity(self):
        a = JobSpec.from_json({"n": 10, "arch": "made", "seed": 3})
        b = JobSpec.from_json(
            {"n": 10, "arch": "made", "seed": 3, "iterations": 999, "priority": 5}
        )
        # Training-schedule fields are not part of the model's identity.
        assert a.model_key() == b.model_key()
        assert hash(a.model_key()) == hash(b.model_key())
        assert a.model_key() != a.model_key(checkpoint="ckpt.npz")
        assert a.model_key() != JobSpec.from_json({"n": 10, "seed": 4}).model_key()

    def test_model_key_serialises(self):
        doc = JobSpec.from_json({}).model_key().as_json()
        assert set(doc) == {"hamiltonian", "ansatz", "checkpoint"}


class TestQuerySpec:
    def test_kind_argument_overrides_payload(self):
        spec = QuerySpec.from_json({"kind": "sample"}, kind="energy")
        assert spec.kind == "energy"  # the endpoint, not the body, decides

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError, match="unknown query kind"):
            QuerySpec.from_json({"kind": "gradient"})

    def test_batch_cap(self):
        QuerySpec.from_json({"batch_size": MAX_QUERY_BATCH})
        with pytest.raises(ProtocolError, match="capped"):
            QuerySpec.from_json({"batch_size": MAX_QUERY_BATCH + 1})

    def test_job_id_must_be_string(self):
        with pytest.raises(ProtocolError):
            QuerySpec.from_json({"job_id": 7})

    def test_query_and_job_keys_agree(self):
        job = JobSpec.from_json({"n": 12, "arch": "made", "hidden": 8, "seed": 2})
        query = QuerySpec.from_json(
            {"n": 12, "arch": "made", "hidden": 8, "seed": 2}
        )
        assert query.model_key() == job.model_key()


class TestJobState:
    def test_terminal_states_are_states(self):
        assert set(JobState.TERMINAL) < set(JobState.ALL)
        assert JobState.QUEUED not in JobState.TERMINAL
