"""End-to-end server tests: lifecycle, concurrency, cancel/resume, crashes.

Everything runs against a real :class:`VQMCServer` (worker threads, warm
cache, batcher); the HTTP tests additionally go through a real
``ThreadingHTTPServer`` on an ephemeral port via :class:`ServeClient`.
Jobs are tiny (n=6, tens of iterations) so the whole module stays in the
tier-1 budget.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core import load_checkpoint, verify_checkpoint

pytestmark = pytest.mark.serve
from repro.serve import (
    AdmissionError,
    ProtocolError,
    ServeAPIError,
    ServeClient,
    VQMCServer,
    build_trainer,
)

SPEC = {
    "problem": "tim", "n": 6, "arch": "made", "hidden": 8,
    "seed": 3, "iterations": 5, "batch_size": 16, "checkpoint_every": 2,
}

TOOLS = Path(__file__).resolve().parents[2] / "tools"


def wait_terminal(server: VQMCServer, job_id: str, timeout: float = 60.0):
    deadline = time.monotonic() + timeout
    job = server.job(job_id)
    while job.state not in ("completed", "failed", "cancelled"):
        if time.monotonic() > deadline:
            raise TimeoutError(f"job {job_id} stuck in {job.state}")
        time.sleep(0.01)
    return job


def wait_step(server: VQMCServer, job_id: str, step: int, timeout: float = 60.0):
    deadline = time.monotonic() + timeout
    job = server.job(job_id)
    while job.step < step and job.state not in ("completed", "failed", "cancelled"):
        if time.monotonic() > deadline:
            raise TimeoutError(f"job {job_id} stuck at step {job.step}")
        time.sleep(0.005)
    return job


@pytest.fixture
def server(tmp_path):
    srv = VQMCServer(tmp_path / "serve", workers=2, batch_window=4,
                     batch_linger_s=0.01)
    yield srv
    srv.shutdown()


class TestJobLifecycle:
    def test_submit_run_result(self, server):
        job = server.submit(dict(SPEC))
        assert job.id.startswith("job")
        done = wait_terminal(server, job.id)
        assert done.state == "completed", done.error
        assert done.step == SPEC["iterations"]
        assert done.result is not None and "mean" in done.result
        assert done.health == "OK"
        status = done.status_json()
        assert status["run_seconds"] is not None
        assert status["state"] == "completed"

    def test_server_side_training_matches_local_run(self, server):
        """A served job is bit-identical to the equivalent one-shot run."""
        job = server.submit(dict(SPEC))
        wait_terminal(server, job.id)
        local = build_trainer("tim", 6, 0, "made", 8, seed=3)
        local.run(SPEC["iterations"], batch_size=SPEC["batch_size"])
        entry = server.cache.get(job.spec.model_key())
        import numpy as np

        np.testing.assert_array_equal(
            local.model.flat_parameters(), entry.vqmc.model.flat_parameters()
        )

    def test_invalid_spec_rejected_before_queueing(self, server):
        with pytest.raises(ProtocolError):
            server.submit({"problem": "sudoku"})
        assert server.jobs() == []

    def test_admission_rejection_is_not_a_job(self, tmp_path):
        srv = VQMCServer(tmp_path / "s", workers=1, max_job_seconds=1e-12)
        try:
            with pytest.raises(AdmissionError, match="job too large"):
                srv.submit(dict(SPEC))
            assert srv.jobs() == []
        finally:
            srv.shutdown()


class TestCancelAndResume:
    def test_cancel_mid_run_leaves_restorable_checkpoint(self, server, tmp_path):
        spec = dict(SPEC, iterations=3000, checkpoint_every=1)
        job = server.submit(spec)
        wait_step(server, job.id, 2)
        server.cancel(job.id)
        done = wait_terminal(server, job.id)
        assert done.state == "cancelled"
        assert done.checkpoint_path is not None
        ckpt = Path(done.checkpoint_path)
        assert ckpt.exists()
        verify_checkpoint(ckpt)  # raises on corruption
        fresh = build_trainer("tim", 6, 0, "made", 8, seed=3)
        load_checkpoint(fresh, ckpt)
        assert fresh.global_step == done.step

    def test_resume_continues_from_cancelled_checkpoint(self, server):
        spec = dict(SPEC, iterations=3000, checkpoint_every=1)
        job = server.submit(spec)
        wait_step(server, job.id, 2)
        server.cancel(job.id)
        cancelled = wait_terminal(server, job.id)

        target = cancelled.step + 2
        resumed = server.submit(dict(spec, iterations=target, resume=True))
        done = wait_terminal(server, resumed.id)
        assert done.state == "completed", done.error
        assert done.step == target

    def test_cancel_while_queued_never_runs(self, tmp_path):
        srv = VQMCServer(tmp_path / "s", workers=1)
        try:
            blocker = srv.submit(dict(SPEC, iterations=2000))
            queued = srv.submit(dict(SPEC, seed=4, iterations=2000))
            srv.cancel(queued.id)
            assert wait_terminal(srv, queued.id).state == "cancelled"
            srv.cancel(blocker.id)
            wait_terminal(srv, blocker.id)
            assert queued._started is None  # never picked up by a worker
        finally:
            srv.shutdown()


class TestCachePinning:
    def test_running_jobs_model_survives_cache_pressure(self, tmp_path):
        """LRU must never evict the model under a running job."""
        srv = VQMCServer(tmp_path / "s", workers=1, cache_capacity=1,
                         batch_linger_s=0.0)
        try:
            job = srv.submit(dict(SPEC, iterations=600))
            wait_step(srv, job.id, 1)
            job_key = job.spec.model_key()
            # Hammer the 1-slot cache with queries for OTHER models while
            # the job trains.
            for seed in (11, 12, 13):
                reply = srv.query(
                    {"problem": "tim", "n": 6, "arch": "made", "hidden": 8,
                     "seed": seed, "batch_size": 4}, "energy")
                assert reply["count"] == 4
                assert job_key in srv.cache.keys()  # pinned: never evicted
            assert srv.cache.evictions > 0  # pressure was real
            srv.cancel(job.id)
            done = wait_terminal(srv, job.id)
            assert done.state in ("cancelled", "completed")
        finally:
            srv.shutdown()


class TestCrashPath:
    def test_injected_fault_fails_job_with_flight_dump(self, server):
        job = server.submit(dict(SPEC, iterations=50, inject_fault_at=3))
        done = wait_terminal(server, job.id)
        assert done.state == "failed"
        assert "injected server fault" in done.error
        assert done.flight_dump is not None
        dump = Path(done.flight_dump)
        assert dump.exists() and dump.name == "flight.rank000.json"

    def test_monitor_attributes_the_crash(self, server):
        """tools/monitor.py must name rank 0 and the injected cause."""
        job = server.submit(dict(SPEC, iterations=50, inject_fault_at=2))
        done = wait_terminal(server, job.id)
        proc = subprocess.run(
            [sys.executable, str(TOOLS / "monitor.py"), "flight",
             done.flight_dump, "--json"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 1, proc.stderr  # failed rank recorded
        doc = json.loads(proc.stdout)
        assert "0" in doc["failed_ranks"]
        assert doc["failed_ranks"]["0"]["cause"] == "RuntimeError"
        assert doc["failed_ranks"]["0"]["last_completed_step"] is not None

    def test_worker_survives_a_failed_job(self, server):
        bad = server.submit(dict(SPEC, inject_fault_at=1))
        wait_terminal(server, bad.id)
        good = server.submit(dict(SPEC, seed=5))
        assert wait_terminal(server, good.id).state == "completed"


class TestHTTP:
    @pytest.fixture
    def client(self, server):
        port = server.start_http()
        return ServeClient(f"http://127.0.0.1:{port}", timeout=30.0)

    def test_full_lifecycle_over_http(self, client):
        assert client.healthz()["status"] == "ok"
        reply = client.submit(dict(SPEC))
        status = client.wait(reply["id"], timeout=60.0)
        assert status["state"] == "completed"
        result = client.result(reply["id"])
        assert "mean" in result["result"]
        assert any(j["id"] == reply["id"] for j in client.jobs())

    def test_error_mapping(self, client):
        with pytest.raises(ServeAPIError) as exc_info:
            client.submit({"problem": "sudoku"})
        assert exc_info.value.status == 400
        with pytest.raises(ServeAPIError) as exc_info:
            client.status("job999999")
        assert exc_info.value.status == 404
        with pytest.raises(ServeAPIError) as exc_info:
            client.result("job999999")
        assert exc_info.value.status == 404

    def test_concurrent_clients_get_per_request_correct_results(
        self, server, client
    ):
        """The satellite e2e: B threaded HTTP clients, distinct batch
        sizes, every reply sliced from a coalesced forward is correct."""
        job = client.submit(dict(SPEC))
        client.wait(job["id"], timeout=60.0)
        before = server.batcher.forwards

        sizes = [2 + i for i in range(8)]
        replies: list[dict | None] = [None] * len(sizes)
        errors: list[BaseException] = []

        def fire(i: int) -> None:
            try:
                replies[i] = client.energy(
                    {"job_id": job["id"], "batch_size": sizes[i]}
                )
            except BaseException as exc:  # noqa: BLE001 — assert below
                errors.append(exc)

        threads = [threading.Thread(target=fire, args=(i,))
                   for i in range(len(sizes))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert [r["count"] for r in replies] == sizes
        # Coalescing happened through real concurrent HTTP requests: fewer
        # forwards than requests (the exact ceil(B/window) count is pinned
        # deterministically in test_batcher.py).
        assert server.batcher.forwards - before < len(sizes)

    def test_sample_endpoint_round_trips_configurations(self, client):
        reply = client.sample(
            {"problem": "tim", "n": 6, "arch": "made", "hidden": 8,
             "seed": 7, "batch_size": 3})
        assert len(reply["samples"]) == 3
        assert all(len(row) == 6 for row in reply["samples"])

    def test_queries_leave_training_bit_exact(self, server, client):
        """Acceptance: interleaved server-side queries must not perturb
        the training stream (same fix as VQMC.evaluate, server-scale)."""
        job = client.submit(dict(SPEC, iterations=40, batch_size=16))
        # Hammer the training model with queries while it runs.
        for _ in range(5):
            client.energy({"job_id": job["id"], "batch_size": 8})
        client.wait(job["id"], timeout=60.0)

        import numpy as np

        local = build_trainer("tim", 6, 0, "made", 8, seed=3)
        local.run(40, batch_size=16)
        entry = server.cache.get(server.job(job["id"]).spec.model_key())
        np.testing.assert_array_equal(
            local.model.flat_parameters(), entry.vqmc.model.flat_parameters()
        )
