"""Request batcher: the documented coalescing contract, counter-asserted."""

from __future__ import annotations

import math
import threading

import pytest

from repro.serve.batcher import BatcherClosed, RequestBatcher
from repro.serve.cache import CacheEntry
from repro.serve.protocol import JobSpec, QuerySpec
from repro.serve.server import build_trainer

N = 6
HIDDEN = 8


@pytest.fixture(scope="module")
def entry() -> CacheEntry:
    spec = JobSpec.from_json(
        {"problem": "tim", "n": N, "arch": "made", "hidden": HIDDEN, "seed": 3}
    )
    return CacheEntry(spec.model_key(), build_trainer("tim", N, 0, "made", HIDDEN, 3))


def query(kind="energy", batch_size=8, seed=3) -> QuerySpec:
    return QuerySpec.from_json(
        {"problem": "tim", "n": N, "arch": "made", "hidden": HIDDEN,
         "seed": seed, "batch_size": batch_size},
        kind=kind,
    )


def serve_staged(batcher: RequestBatcher, staged: list) -> list[dict]:
    """Start the (held) executor and wait out every staged future."""
    batcher.start()
    try:
        return [p.wait(timeout=30.0) for p in staged]
    finally:
        batcher.close()


@pytest.mark.parametrize("b,window", [(16, 8), (16, 16), (5, 2), (3, 4), (1, 1)])
def test_forward_count_is_ceil_b_over_window(entry, b, window):
    """THE acceptance criterion, asserted via the counter — never timing."""
    batcher = RequestBatcher(window=window, linger_s=0.0, autostart=False)
    staged = [batcher.submit(query(), entry) for _ in range(b)]
    results = serve_staged(batcher, staged)
    assert batcher.forwards == math.ceil(b / window)
    assert batcher.requests == b
    assert all(r["count"] == 8 for r in results)


def test_each_request_gets_exactly_its_own_slice(entry):
    sizes = [4, 9, 1, 16]
    batcher = RequestBatcher(window=8, linger_s=0.0, autostart=False)
    staged = [batcher.submit(query(batch_size=s), entry) for s in sizes]
    results = serve_staged(batcher, staged)
    assert batcher.forwards == 1
    assert [r["count"] for r in results] == sizes
    assert batcher.samples == sum(sizes)
    assert all(r["coalesced"] == len(sizes) for r in results)


def test_sample_queries_return_configurations(entry):
    batcher = RequestBatcher(window=4, linger_s=0.0, autostart=False)
    staged = [
        batcher.submit(query(kind="sample", batch_size=5), entry)
        for _ in range(2)
    ]
    a, b = serve_staged(batcher, staged)
    for reply in (a, b):
        assert len(reply["samples"]) == 5
        assert all(len(row) == N and set(row) <= {0, 1} for row in reply["samples"])
    assert a["samples"] != b["samples"]  # distinct slices of the union batch


def test_mixed_kinds_share_one_forward(entry):
    batcher = RequestBatcher(window=4, linger_s=0.0, autostart=False)
    staged = [
        batcher.submit(query(kind="sample", batch_size=4), entry),
        batcher.submit(query(kind="energy", batch_size=4), entry),
    ]
    sample_reply, energy_reply = serve_staged(batcher, staged)
    assert batcher.forwards == 1
    assert "samples" in sample_reply and "mean" in energy_reply


def test_different_model_keys_never_share_a_forward(entry):
    other_spec = JobSpec.from_json(
        {"problem": "tim", "n": N, "arch": "made", "hidden": HIDDEN, "seed": 4}
    )
    other = CacheEntry(
        other_spec.model_key(), build_trainer("tim", N, 0, "made", HIDDEN, 4)
    )
    batcher = RequestBatcher(window=8, linger_s=0.0, autostart=False)
    staged = [
        batcher.submit(query(seed=3), entry),
        batcher.submit(query(seed=4), other),
        batcher.submit(query(seed=3), entry),
    ]
    serve_staged(batcher, staged)
    assert batcher.forwards == 2  # one per key despite window room


def test_forward_failure_rejects_the_whole_group(entry):
    batcher = RequestBatcher(window=4, linger_s=0.0, autostart=False)
    bad_spec = JobSpec.from_json({"problem": "tim", "n": N, "arch": "made",
                                  "hidden": HIDDEN, "seed": 99})

    class Broken:
        eval_rng = entry.vqmc.eval_rng
        model = None

        class sampler:  # noqa: N801 — minimal stub
            @staticmethod
            def sample(model, n, rng):
                raise RuntimeError("sampler exploded")

    broken = CacheEntry(bad_spec.model_key(), Broken())
    staged = [batcher.submit(query(seed=99), broken) for _ in range(3)]
    batcher.start()
    for p in staged:
        with pytest.raises(RuntimeError, match="sampler exploded"):
            p.wait(timeout=30.0)
    batcher.close()


def test_closed_batcher_refuses_submissions(entry):
    batcher = RequestBatcher(window=2, linger_s=0.0)
    batcher.close()
    with pytest.raises(BatcherClosed):
        batcher.submit(query(), entry)


def test_concurrent_submitters_all_get_correct_slices(entry):
    """Thread-hammered version of the slice contract (autostarted executor)."""
    batcher = RequestBatcher(window=4, linger_s=0.005)
    sizes = [1 + (i % 7) for i in range(20)]
    results: list[dict | None] = [None] * len(sizes)

    def fire(i: int) -> None:
        pending = batcher.submit(query(batch_size=sizes[i]), entry)
        results[i] = pending.wait(timeout=30.0)

    threads = [threading.Thread(target=fire, args=(i,)) for i in range(len(sizes))]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    batcher.close()
    assert [r["count"] for r in results] == sizes
    assert batcher.requests == len(sizes)
    assert batcher.forwards <= len(sizes)  # some coalescing happened or not —
    # correctness never depends on timing; the deterministic count is pinned
    # by test_forward_count_is_ceil_b_over_window.
