"""Mean-field wavefunction: closed forms and the NES equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.nes import NaturalEvolutionStrategies
from repro.core.energy import grad_from_per_sample, local_energies
from repro.models import MeanField


@pytest.fixture
def mf(rng):
    m = MeanField(6, rng=rng)
    m.logits.data[...] = rng.normal(0.0, 0.7, size=6)
    return m


class TestMeanField:
    def test_normalised(self, mf):
        assert mf.exact_distribution().sum() == pytest.approx(1.0, abs=1e-12)

    def test_log_prob_closed_form(self, mf, rng):
        x = (rng.random((8, 6)) < 0.5).astype(float)
        p = mf.probabilities()
        expect = (x * np.log(p) + (1 - x) * np.log(1 - p)).sum(axis=1)
        assert np.allclose(mf.log_prob(x).data, expect, atol=1e-10)

    def test_autograd_matches_per_sample(self, mf, rng):
        x = (rng.random((4, 6)) < 0.5).astype(float)
        _, o = mf.log_psi_and_grads(x)
        for b in range(4):
            mf.zero_grad()
            mf.log_psi(x[b : b + 1]).sum().backward()
            assert np.allclose(o[b], mf.flat_grad(), atol=1e-12)

    def test_score_is_half_centred_x(self, mf, rng):
        x = (rng.random((5, 6)) < 0.5).astype(float)
        _, o = mf.log_psi_and_grads(x)
        assert np.allclose(o, 0.5 * (x - mf.probabilities()), atol=1e-12)

    def test_sampling_matches_probabilities(self, mf, rng):
        x = mf.sample(40000, rng)
        assert np.allclose(x.mean(axis=0), mf.probabilities(), atol=0.01)

    def test_exact_fisher_is_population_covariance(self, mf, rng):
        """S = ¼ diag(p(1−p)) equals cov of the per-sample score under π."""
        x = mf.sample(200000, rng)
        _, o = mf.log_psi_and_grads(x)
        oc = o - o.mean(axis=0)
        empirical = oc.T @ oc / x.shape[0]
        assert np.allclose(empirical, mf.exact_fisher(), atol=2e-3)


class TestNESEquivalence:
    def test_vqmc_gradient_equals_nes_gradient(self, mf, rng, small_maxcut):
        """Paper §2.4: VQMC on a diagonal H with a mean-field ansatz *is*
        NES — gradients agree sample-for-sample, not just in expectation."""
        mf8 = MeanField(8, rng=rng)
        x = mf8.sample(64, rng)
        local = local_energies(mf8, small_maxcut, x)
        _, o = mf8.log_psi_and_grads(x)
        g_vqmc = grad_from_per_sample(o, local)
        g_nes = NaturalEvolutionStrategies(natural=False).gradient(
            mf8.logits.data, x, local
        )
        assert np.allclose(g_vqmc, g_nes, atol=1e-14)

    def test_nes_solves_small_maxcut(self, small_maxcut):
        from repro.exact import brute_force_max_cut

        opt, _ = brute_force_max_cut(small_maxcut.adjacency)
        res = NaturalEvolutionStrategies(lr=0.5, batch_size=128).minimize(
            lambda x: small_maxcut.diagonal(x), 8, iterations=150, seed=5
        )
        assert -res.best_value == pytest.approx(opt)

    def test_natural_preconditioning_accelerates(self, small_maxcut):
        def run(natural):
            res = NaturalEvolutionStrategies(
                lr=0.2, batch_size=128, natural=natural
            ).minimize(lambda x: small_maxcut.diagonal(x), 8, iterations=60, seed=1)
            return np.mean(res.mean_values[-10:])

        assert run(True) <= run(False) + 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            NaturalEvolutionStrategies(lr=0.0)
        with pytest.raises(ValueError):
            NaturalEvolutionStrategies(batch_size=1)
