"""Unified validation: every model's fast per-sample-gradient path equals
the generic tape-based per-sample Jacobian."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import MADE, RBM, MeanField, RNNWaveFunction
from repro.tensor import per_sample_jacobian

MODELS = [
    ("MADE", lambda rng: MADE(6, hidden=9, rng=rng)),
    ("deep MADE", lambda rng: MADE(6, hidden=[8, 7], rng=rng)),
    ("RBM", lambda rng: RBM(6, hidden=5, rng=rng, init_std=0.3)),
    ("MeanField", lambda rng: MeanField(6, rng=rng)),
    ("RNN", lambda rng: RNNWaveFunction(6, hidden=7, rng=rng)),
]


@pytest.mark.parametrize("name,factory", MODELS, ids=[m[0] for m in MODELS])
def test_fast_path_matches_tape_jacobian(name, factory, rng):
    model = factory(rng)
    x = (rng.random((5, 6)) < 0.5).astype(float)
    _, fast = model.log_psi_and_grads(x)
    slow = per_sample_jacobian(model, x)
    assert fast.shape == slow.shape == (5, model.num_parameters())
    assert np.allclose(fast, slow, atol=1e-9), name


def test_jacobian_shape_validation(rng):
    model = MADE(4, rng=rng)
    with pytest.raises(ValueError):
        per_sample_jacobian(model, np.zeros(4))


def test_rnn_available_in_experiment_protocol(rng):
    from repro.experiments import build_model

    model = build_model("rnn", 10, seed=0, hidden=8)
    assert isinstance(model, RNNWaveFunction)
    assert model.hidden == 8
