"""RBM wavefunction: closed-form log ψ, per-sample gradients, stability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import RBM


@pytest.fixture
def rbm(rng):
    return RBM(6, hidden=4, rng=rng, init_std=0.3)


class TestLogPsi:
    def test_matches_closed_form(self, rbm, rng):
        x = (rng.random((9, 6)) < 0.5).astype(float)
        w = rbm.fc.weight.data
        c = rbm.fc.bias.data
        a = rbm.visible.weight.data.ravel()
        a0 = rbm.visible.bias.data[0]
        expect = np.log(np.cosh(x @ w.T + c)).sum(axis=1) + x @ a + a0
        assert np.allclose(rbm.log_psi(x).data, expect, atol=1e-10)

    def test_not_normalised_flag(self, rbm):
        assert not rbm.is_normalized

    def test_default_hidden_equals_n(self, rng):
        assert RBM(7, rng=rng).hidden == 7

    def test_stable_for_large_couplings(self, rng):
        rbm = RBM(6, hidden=4, rng=rng)
        rbm.fc.weight.data[...] = 300.0
        x = np.ones((2, 6))
        out = rbm.log_psi(x).data
        assert np.all(np.isfinite(out))

    def test_exact_distribution_normalised(self, rbm):
        p = rbm.exact_distribution()
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p >= 0)


class TestPerSampleGrads:
    def test_log_psi_agrees(self, rbm, rng):
        x = (rng.random((5, 6)) < 0.5).astype(float)
        lp_manual, _ = rbm.log_psi_and_grads(x)
        assert np.allclose(lp_manual, rbm.log_psi(x).data, atol=1e-10)

    def test_grads_match_autograd(self, rbm, rng):
        x = (rng.random((4, 6)) < 0.5).astype(float)
        _, o = rbm.log_psi_and_grads(x)
        for b in range(4):
            rbm.zero_grad()
            rbm.log_psi(x[b : b + 1]).sum().backward()
            assert np.allclose(o[b], rbm.flat_grad(), atol=1e-10), f"sample {b}"

    def test_visible_bias_gradient_is_one(self, rbm, rng):
        x = (rng.random((3, 6)) < 0.5).astype(float)
        _, o = rbm.log_psi_and_grads(x)
        assert np.allclose(o[:, -1], 1.0)  # a0 is the last flat parameter


class TestSamplingInterface:
    def test_exact_sampler_rejects_rbm(self, rbm, rng):
        from repro.samplers import AutoregressiveSampler

        with pytest.raises(TypeError):
            AutoregressiveSampler().sample(rbm, 8, rng)

    def test_psi_ratio(self, rbm, rng):
        x = (rng.random((5, 6)) < 0.5).astype(float)
        y = x.copy()
        y[:, 0] = 1.0 - y[:, 0]
        ratios = rbm.psi_ratio(y, x)
        expect = np.exp(rbm.log_psi(y).data - rbm.log_psi(x).data)
        assert np.allclose(ratios, expect)
