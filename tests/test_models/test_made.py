"""MADE wavefunction: normalisation, autoregressive property, exact sampling,
per-sample gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import MADE
from repro.models.made import default_hidden_size
from tests.conftest import enumerate_states


@pytest.fixture
def made(rng):
    return MADE(5, hidden=12, rng=rng)


class TestNormalisation:
    def test_probabilities_sum_to_one(self, made):
        probs = made.exact_distribution()
        assert probs.sum() == pytest.approx(1.0, abs=1e-10)

    def test_normalised_after_random_parameter_change(self, made, rng):
        # Normalisation is structural — it must survive arbitrary weights.
        for p in made.parameters():
            p.data[...] = rng.normal(size=p.shape) * 3.0
        assert made.exact_distribution().sum() == pytest.approx(1.0, abs=1e-10)

    def test_log_psi_is_half_log_prob(self, made, rng):
        x = (rng.random((7, 5)) < 0.5).astype(float)
        lp = made.log_prob(x).data
        lpsi = made.log_psi(x).data
        assert np.allclose(lpsi, lp / 2.0)


class TestAutoregressiveProperty:
    def test_conditional_i_independent_of_later_inputs(self, made, rng):
        """p(x_i | x_<i) must not change when x_{≥i} changes."""
        x = (rng.random((1, 5)) < 0.5).astype(float)
        base = made.conditionals(x)
        for i in range(5):
            x2 = x.copy()
            x2[0, i:] = 1.0 - x2[0, i:]
            cond2 = made.conditionals(x2)
            assert np.allclose(cond2[0, i], base[0, i]), f"site {i} leaked"

    def test_chain_rule_consistency(self, made):
        """log π(x) must equal the sum of conditional log-probs computed
        site by site (the factorisation of Eq. 7)."""
        states = enumerate_states(5)
        lp = made.log_prob(states).data
        cond = made.conditionals(states)
        manual = (
            states * np.log(cond) + (1.0 - states) * np.log1p(-cond)
        ).sum(axis=1)
        assert np.allclose(lp, manual, atol=1e-8)


class TestSampling:
    def test_sample_shape_and_binary(self, made, rng):
        x = made.sample(64, rng)
        assert x.shape == (64, 5)
        assert set(np.unique(x)) <= {0.0, 1.0}

    def test_sampling_is_exact(self, made, rng):
        """Empirical frequencies match the exact distribution (χ² sanity)."""
        probs = made.exact_distribution()
        n_samples = 20000
        x = made.sample(n_samples, rng)
        codes = (x @ (2 ** np.arange(4, -1, -1))).astype(int)
        counts = np.bincount(codes, minlength=32)
        tv = 0.5 * np.abs(counts / n_samples - probs).sum()
        # Plug-in TV of a 32-cell multinomial at 20k samples is ~0.02.
        assert tv < 0.05

    def test_sampler_respects_rng(self, made):
        a = made.sample(16, np.random.default_rng(0))
        b = made.sample(16, np.random.default_rng(0))
        assert np.array_equal(a, b)


class TestPerSampleGrads:
    def test_log_psi_agrees_with_autograd_path(self, made, rng):
        x = (rng.random((6, 5)) < 0.5).astype(float)
        lp_manual, _ = made.log_psi_and_grads(x)
        lp_auto = made.log_psi(x).data
        assert np.allclose(lp_manual, lp_auto, atol=1e-10)

    def test_grads_match_autograd_per_sample(self, made, rng):
        x = (rng.random((4, 5)) < 0.5).astype(float)
        _, o = made.log_psi_and_grads(x)
        for b in range(4):
            made.zero_grad()
            made.log_psi(x[b : b + 1]).sum().backward()
            assert np.allclose(o[b], made.flat_grad(), atol=1e-10), f"sample {b}"

    def test_grad_matrix_shape(self, made, rng):
        x = (rng.random((3, 5)) < 0.5).astype(float)
        _, o = made.log_psi_and_grads(x)
        assert o.shape == (3, made.num_parameters())


class TestConfig:
    def test_default_hidden_size_formula(self):
        assert default_hidden_size(100) == round(5 * np.log(100) ** 2)

    def test_parameter_count_matches_paper(self, rng):
        n, h = 10, 17
        made = MADE(n, hidden=h, rng=rng)
        assert made.num_parameters() == 2 * h * n + h + n

    def test_invalid_inputs_rejected(self, made):
        with pytest.raises(ValueError):
            made.log_psi(np.ones((2, 4)))  # wrong width
        with pytest.raises(ValueError):
            made.log_psi(np.full((2, 5), 0.5))  # non-binary

    def test_n_must_be_positive(self, rng):
        with pytest.raises(ValueError):
            MADE(0, rng=rng)
