"""Deep (multi-hidden-layer) MADE — extension beyond the paper's 2-matrix
architecture; the autoregressive guarantees must hold at any depth."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models import MADE
from repro.nn.masks import check_autoregressive_deep, made_masks_deep
from tests.conftest import enumerate_states


@pytest.fixture
def deep_made(rng):
    return MADE(5, hidden=[12, 9, 7], rng=rng)


class TestDeepMasks:
    @pytest.mark.parametrize("widths", [[4], [8, 8], [10, 6, 12], [3, 3, 3, 3]])
    def test_autoregressive_at_any_depth(self, widths):
        masks = made_masks_deep(6, widths)
        check_autoregressive_deep(masks)

    def test_mask_shapes_chain(self):
        masks = made_masks_deep(5, [7, 11])
        assert masks[0].shape == (7, 5)
        assert masks[1].shape == (11, 7)
        assert masks[2].shape == (5, 11)

    def test_single_layer_matches_shallow_construction(self):
        from repro.nn.masks import made_masks

        m1, m2 = made_masks(6, 10)
        deep = made_masks_deep(6, [10])
        assert np.array_equal(deep[0], m1)
        assert np.array_equal(deep[1], m2)

    def test_empty_widths_rejected(self):
        with pytest.raises(ValueError):
            made_masks_deep(5, [])

    def test_violation_detected(self):
        masks = [np.ones((4, 5)), np.ones((5, 4))]
        with pytest.raises(ValueError):
            check_autoregressive_deep(masks)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(2, 8),
        st.lists(st.integers(2, 16), min_size=1, max_size=4),
    )
    def test_autoregressive_hypothesis(self, n, widths):
        check_autoregressive_deep(made_masks_deep(n, widths))


class TestDeepModel:
    def test_normalised(self, deep_made):
        assert deep_made.exact_distribution().sum() == pytest.approx(1.0, abs=1e-10)

    def test_autoregressive_conditionals(self, deep_made, rng):
        x = (rng.random((1, 5)) < 0.5).astype(float)
        base = deep_made.conditionals(x)
        for i in range(5):
            x2 = x.copy()
            x2[0, i:] = 1.0 - x2[0, i:]
            assert np.allclose(deep_made.conditionals(x2)[0, i], base[0, i])

    def test_per_sample_grads_match_autograd(self, deep_made, rng):
        x = (rng.random((3, 5)) < 0.5).astype(float)
        _, o = deep_made.log_psi_and_grads(x)
        assert o.shape == (3, deep_made.num_parameters())
        for b in range(3):
            deep_made.zero_grad()
            deep_made.log_psi(x[b : b + 1]).sum().backward()
            assert np.allclose(o[b], deep_made.flat_grad(), atol=1e-10), f"sample {b}"

    def test_sampling_exact(self, deep_made, rng):
        from repro.samplers.diagnostics import total_variation_distance

        x = deep_made.sample(20000, rng)
        codes = (x @ (2 ** np.arange(4, -1, -1))).astype(int)
        tv = total_variation_distance(codes, deep_made.exact_distribution())
        assert tv < 0.05

    def test_hidden_attribute_reports_tuple(self, deep_made):
        assert deep_made.hidden == (12, 9, 7)
        assert len(deep_made.fc_layers) == 4

    def test_trains_on_small_tim(self, deep_made, small_tim, rng):
        """Deep MADE plugs into the standard pipeline unchanged."""
        # deep_made has n=5; build a matching deep model for n=6.
        from repro.core import VQMC
        from repro.exact import ground_state
        from repro.optim import Adam
        from repro.samplers import AutoregressiveSampler

        model = MADE(6, hidden=[16, 12], rng=rng)
        vqmc = VQMC(
            model, small_tim, AutoregressiveSampler(),
            Adam(model.parameters(), lr=0.02), seed=3,
        )
        vqmc.run(150, batch_size=256)
        exact = ground_state(small_tim).energy
        final = vqmc.evaluate(1024)
        assert final.mean < exact + 0.1 * abs(exact)
