"""RNN wavefunction (paper ref. [18]): normalisation, exact sampling,
backprop-through-time per-sample gradients, end-to-end training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import RNNWaveFunction
from repro.samplers import AutoregressiveSampler
from repro.samplers.diagnostics import total_variation_distance


@pytest.fixture
def rnn(rng):
    model = RNNWaveFunction(5, hidden=7, rng=rng)
    # Push away from init so conditionals are non-trivial.
    for p in model.parameters():
        p.data += rng.normal(size=p.shape) * 0.4
    return model


class TestStructure:
    def test_normalised(self, rnn):
        assert rnn.exact_distribution().sum() == pytest.approx(1.0, abs=1e-10)

    def test_parameter_count_independent_of_n(self, rng):
        small = RNNWaveFunction(5, hidden=8, rng=rng)
        large = RNNWaveFunction(500, hidden=8, rng=rng)
        assert small.num_parameters() == large.num_parameters()

    def test_numpy_and_tape_recurrences_agree(self, rnn, rng):
        x = (rng.random((6, 5)) < 0.5).astype(float)
        _, _, z_np = rnn._forward_states(x)
        z_tape = rnn.logits(x).data
        assert np.allclose(z_np, z_tape, atol=1e-12)

    def test_autoregressive_property(self, rnn, rng):
        """Conditional i must not depend on x_{≥i} (causality of the RNN)."""
        x = (rng.random((1, 5)) < 0.5).astype(float)
        base = rnn.conditionals(x)
        for i in range(5):
            x2 = x.copy()
            x2[0, i:] = 1.0 - x2[0, i:]
            assert np.allclose(rnn.conditionals(x2)[0, i], base[0, i]), f"site {i}"

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            RNNWaveFunction(5, hidden=0, rng=rng)


class TestSampling:
    def test_exact_sampling(self, rnn, rng):
        x = rnn.sample(30000, rng)
        codes = (x @ (2 ** np.arange(4, -1, -1))).astype(int)
        tv = total_variation_distance(codes, rnn.exact_distribution())
        assert tv < 0.03

    def test_sampler_integration(self, rnn, rng):
        x = AutoregressiveSampler().sample(rnn, 64, rng)
        assert x.shape == (64, 5)


class TestBPTT:
    def test_per_sample_grads_match_autograd(self, rnn, rng):
        x = (rng.random((4, 5)) < 0.5).astype(float)
        lp_manual, o = rnn.log_psi_and_grads(x)
        assert np.allclose(lp_manual, rnn.log_psi(x).data, atol=1e-10)
        assert o.shape == (4, rnn.num_parameters())
        for b in range(4):
            rnn.zero_grad()
            rnn.log_psi(x[b : b + 1]).sum().backward()
            assert np.allclose(o[b], rnn.flat_grad(), atol=1e-9), f"sample {b}"

    def test_longer_sequences_stay_consistent(self, rng):
        model = RNNWaveFunction(12, hidden=5, rng=rng)
        x = (rng.random((2, 12)) < 0.5).astype(float)
        _, o = model.log_psi_and_grads(x)
        for b in range(2):
            model.zero_grad()
            model.log_psi(x[b : b + 1]).sum().backward()
            assert np.allclose(o[b], model.flat_grad(), atol=1e-8)


class TestTraining:
    def test_reaches_ground_state_with_sr(self, small_tim, rng):
        from repro.core import VQMC
        from repro.exact import ground_state
        from repro.optim import SGD, StochasticReconfiguration

        model = RNNWaveFunction(6, hidden=16, rng=rng)
        vqmc = VQMC(
            model, small_tim, AutoregressiveSampler(),
            SGD(model.parameters(), lr=0.05),
            sr=StochasticReconfiguration(), seed=2,
        )
        vqmc.run(250, batch_size=256)
        exact = ground_state(small_tim).energy
        final = vqmc.evaluate(1024)
        assert abs(final.mean - exact) / abs(exact) < 0.05
