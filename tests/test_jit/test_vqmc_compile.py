"""VQMC.step compiled-path integration: parity, fallback, spans, config."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import VQMC, VQMCConfig
from repro.hamiltonians import TransverseFieldIsing
from repro.jit import TraceError
from repro.models import MADE
from repro.obs import Metrics, Tracer
from repro.optim import SGD, StochasticReconfiguration
from repro.samplers import AutoregressiveSampler


def _driver(compile_mode: str, *, sr: bool = False, metrics=None, tracer=None):
    ham = TransverseFieldIsing.random(6, seed=99)
    model = MADE(6, hidden=8, rng=np.random.default_rng(7))
    vqmc = VQMC(
        model,
        ham,
        AutoregressiveSampler(),
        SGD(model.parameters(), lr=0.05),
        sr=StochasticReconfiguration() if sr else None,
        seed=11,
        config=VQMCConfig(compile=compile_mode),
        metrics=metrics,
        tracer=tracer,
    )
    return vqmc, model


class TestParity:
    @pytest.mark.parametrize("sr", [False, True], ids=["autograd", "per_sample"])
    def test_compiled_matches_interpreted_over_steps(self, sr):
        vq_on, m_on = _driver("on", sr=sr)
        vq_off, m_off = _driver("off", sr=sr)
        for _ in range(5):
            vq_on.step(batch_size=64)
            vq_off.step(batch_size=64)
        np.testing.assert_allclose(
            m_on.flat_parameters(), m_off.flat_parameters(), rtol=1e-9, atol=1e-10
        )

    def test_per_step_override_wins(self):
        vq, _ = _driver("on")
        vq.step(batch_size=32, compile="off")
        assert vq._compiler is None  # 'off' never touched the compiler
        vq.step(batch_size=32)
        assert vq._compiler is not None


class TestAutoFallback:
    def test_override_model_falls_back_sticky(self):
        metrics = Metrics()
        vq, model = _driver("auto", metrics=metrics)
        model.log_psi = model.log_psi  # instance override → untraceable
        for _ in range(3):
            vq.step(batch_size=32)
        assert "autograd" in vq._jit_fallback
        assert "overrides" in vq._jit_fallback["autograd"]
        # Fallback decided once, then sticky — one counter bump, not three.
        assert metrics.snapshot()["counters"]["jit.fallback"] == 1

    def test_compile_on_surfaces_trace_error(self):
        vq, model = _driver("on")
        model.log_psi = model.log_psi
        with pytest.raises(TraceError):
            vq.step(batch_size=32)


class TestObservability:
    def test_replay_spans_carry_interpreted_phase(self):
        tracer = Tracer()
        vq, _ = _driver("on", tracer=tracer)
        vq.step(batch_size=32)
        replays = [e for e in tracer._events if e.name == "jit.replay"]
        assert replays, "compiled step should emit jit.replay spans"
        assert all(e.attrs.get("phase") == "gradient" for e in replays)
        assert {e.attrs.get("stage") for e in replays} <= {
            "forward", "backward", "per_sample"
        }

    def test_compiled_run_bumps_cache_counters(self):
        metrics = Metrics()
        vq, _ = _driver("on", metrics=metrics)
        for _ in range(3):
            vq.step(batch_size=32)
        counters = metrics.snapshot()["counters"]
        assert counters["jit.trace"] == 1
        assert counters["jit.cache_hit"] == 2
        assert metrics.snapshot()["gauges"]["jit.arena_bytes"] > 0


class TestConfig:
    def test_config_rejects_unknown_compile_mode(self):
        with pytest.raises(ValueError, match="compile"):
            VQMCConfig(compile="sometimes")

    def test_step_rejects_unknown_compile_mode(self):
        vq, _ = _driver("auto")
        with pytest.raises(ValueError, match="compile"):
            vq.step(batch_size=32, compile="bogus")
