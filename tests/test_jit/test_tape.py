"""Tape capture: structure, leaf classification, and untraceable programs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.jit import TraceError
from repro.jit.tape import trace
from repro.models import MADE
from repro.tensor import Tensor


def _batch(n: int, b: int = 4, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=(b, n)).astype(np.float64)


class TestCapture:
    def test_tape_records_ops_and_output_slot(self):
        model = MADE(6, hidden=8, rng=np.random.default_rng(0))
        x = _batch(6)
        tape = trace(model.log_psi, x)
        assert len(tape.ops) > 0
        assert tape.out_slot == tape.ops[-1].slot
        assert tape.input_shape == x.shape
        # The traced output carries the live graph until release_refs().
        assert tape.out is not None and tape.out.data.shape == (4,)

    def test_param_leaves_cover_all_parameters(self):
        model = MADE(6, hidden=8, rng=np.random.default_rng(0))
        tape = trace(model.log_psi, _batch(6))
        traced = {id(p) for p in tape.params}
        assert traced == {id(p) for p in model.parameters()}

    def test_input_leaf_aliases_traced_batch(self):
        model = MADE(6, hidden=8, rng=np.random.default_rng(0))
        tape = trace(model.log_psi, _batch(6))
        inputs = [leaf for leaf in tape.leaves if leaf.kind == "input"]
        assert inputs, "whole-batch alias should be classified as an input leaf"
        assert all(leaf.shape == (4, 6) for leaf in inputs)

    def test_call_sites_point_at_model_code(self):
        model = MADE(6, hidden=8, rng=np.random.default_rng(0))
        tape = trace(model.log_psi, _batch(6))
        # Every op records file:line of the code that created it; the hot
        # path lives under the repro package, not the tape machinery.
        assert all(":" in op.call_site for op in tape.ops)
        assert any("repro" in op.call_site for op in tape.ops)

    def test_release_refs_drops_activations_and_graph(self):
        model = MADE(6, hidden=8, rng=np.random.default_rng(0))
        tape = trace(model.log_psi, _batch(6))
        tape.release_refs()
        assert tape.out is None
        assert all(op.ref is None for op in tape.ops)


class TestUntraceable:
    def test_nested_trace_raises(self):
        model = MADE(4, hidden=6, rng=np.random.default_rng(0))
        x = _batch(4)

        def nested(batch):
            trace(model.log_psi, batch)
            return model.log_psi(batch)

        with pytest.raises(TraceError, match="nested"):
            trace(nested, x)

    def test_non_tensor_return_raises(self):
        with pytest.raises(TraceError, match="not a Tensor"):
            trace(lambda x: np.sum(x), _batch(4))

    def test_constant_tensor_return_raises(self):
        with pytest.raises(TraceError, match="no traced op|no tensor ops"):
            trace(lambda x: Tensor(np.zeros(3)), _batch(4))
