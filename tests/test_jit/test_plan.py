"""Compiled replay correctness: plan vs interpreter, fusion, zero-alloc."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.jit import StepCompiler, TraceError
from repro.jit.fuse import FusedLinear
from repro.models import MADE, RBM, MeanField
from repro.tensor import no_grad
from repro.tensor.tensor import set_tape_recorder, tape_recorder_state

TOL = dict(rtol=1e-9, atol=1e-10)  # the ISSUE's 1e-10 agreement bound


def _batch(n: int, b: int, seed: int = 1) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=(b, n)).astype(np.float64)


def _interp_gradient(model, x, seed_vec):
    model.zero_grad()
    out = model.log_psi(x)
    out.backward(seed_vec, free_graph=True)
    grad = model.flat_grad()
    model.zero_grad()
    return out.data, grad


@st.composite
def made_cases(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    depth = draw(st.integers(min_value=1, max_value=2))
    widths = tuple(
        draw(st.integers(min_value=2, max_value=12)) for _ in range(depth)
    )
    batch = draw(st.integers(min_value=1, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return n, widths, batch, seed


class TestReplayMatchesInterpreter:
    @settings(max_examples=25, deadline=None)
    @given(made_cases())
    def test_random_made_shapes_batches_and_perturbations(self, case):
        n, widths, batch, seed = case
        rng = np.random.default_rng(seed)
        model = MADE(n, hidden=widths, rng=rng)
        x = rng.integers(0, 2, size=(batch, n)).astype(np.float64)
        compiler = StepCompiler(model)
        plan = compiler.plan_for(x)

        # Two rounds: trace-time parameters, then an optimizer-style
        # in-place perturbation that must be picked up on cache hit.
        for round_ in range(2):
            seed_vec = rng.standard_normal(batch)
            want_f, want_g = _interp_gradient(model, x, seed_vec)
            got_f = plan.forward(x)
            got_g = plan.gradient(seed_vec).copy()
            np.testing.assert_allclose(got_f, want_f, **TOL)
            np.testing.assert_allclose(got_g, want_g, **TOL)

            lp_m, o_m = model.log_psi_and_grads(x)
            lp_c, o_c = compiler.per_sample_plan(x).per_sample(x)
            np.testing.assert_allclose(lp_c, lp_m, **TOL)
            np.testing.assert_allclose(o_c, o_m, **TOL)

            if round_ == 0:
                for p in model.parameters():
                    p.data += 0.05 * rng.standard_normal(p.data.shape)
                    p.bump_version()
        assert compiler.stats["traces"] == 1  # perturbation stayed a cache hit

    def test_rbm_per_sample_matches_hand_vectorised(self):
        model = RBM(8, hidden=12, rng=np.random.default_rng(3))
        x = _batch(8, 16)
        plan = StepCompiler(model).per_sample_plan(x)
        lp_m, o_m = model.log_psi_and_grads(x)
        lp_c, o_c = plan.per_sample(x)
        np.testing.assert_allclose(lp_c, lp_m, **TOL)
        np.testing.assert_allclose(o_c, o_m, **TOL)

    def test_forward_accepts_fresh_batches(self):
        model = MADE(6, hidden=8, rng=np.random.default_rng(0))
        x0 = _batch(6, 4, seed=1)
        plan = StepCompiler(model).plan_for(x0)
        for seed in (2, 3, 4):
            x = _batch(6, 4, seed=seed)
            with no_grad():
                want = model.log_psi(x).data
            np.testing.assert_allclose(plan.forward(x), want, **TOL)


class TestPlanMechanics:
    def test_fusion_produces_fused_linear_nodes(self):
        model = MADE(6, hidden=8, rng=np.random.default_rng(0))
        plan = StepCompiler(model).plan_for(_batch(6, 4))
        fused = [n for n in plan._nodes if isinstance(n, FusedLinear)]
        # MADE is masked-linear stacks: every layer should fuse.
        assert len(fused) == len(model.fc_layers)

    def test_selftest_passes_on_fresh_plan(self):
        model = MADE(6, hidden=8, rng=np.random.default_rng(0))
        plan = StepCompiler(model).plan_for(_batch(6, 4))
        plan.selftest()

    def test_arena_is_preallocated(self):
        model = MADE(6, hidden=8, rng=np.random.default_rng(0))
        plan = StepCompiler(model).plan_for(_batch(6, 4))
        assert plan.arena_bytes > 0

    def test_bad_input_shape_rejected(self):
        model = MADE(6, hidden=8, rng=np.random.default_rng(0))
        plan = StepCompiler(model).plan_for(_batch(6, 4))
        with pytest.raises(ValueError):
            plan.forward(_batch(6, 8))

    def test_gradient_seed_shape_checked(self):
        model = MADE(6, hidden=8, rng=np.random.default_rng(0))
        plan = StepCompiler(model).plan_for(_batch(6, 4))
        plan.forward(_batch(6, 4))
        with pytest.raises(ValueError, match="seed shape"):
            plan.gradient(np.ones(7))

    def test_mean_field_compiles_scalar_path(self):
        model = MeanField(6, rng=np.random.default_rng(0))
        x = _batch(6, 4)
        compiler = StepCompiler(model)
        plan = compiler.plan_for(x)
        with no_grad():
            want = model.log_psi(x).data
        np.testing.assert_allclose(plan.forward(x), want, **TOL)


class _CountingRecorder:
    """Duck-typed tape recorder: counts every graph node the engine builds."""

    def __init__(self):
        self.count = 0

    def on_op(self, out, parents, op, attrs, recorded):
        self.count += 1


class TestZeroAllocationReplay:
    def test_steady_state_replay_builds_no_graph_nodes(self):
        model = MADE(8, hidden=10, rng=np.random.default_rng(0))
        x = _batch(8, 16)
        compiler = StepCompiler(model)
        plan = compiler.per_sample_plan(x)
        seed_vec = np.random.default_rng(2).standard_normal(16)
        # Warm up: lazy per-sample buffers are part of the build, not replay.
        plan.forward(x)
        plan.gradient(seed_vec)
        plan.per_sample(x)

        assert tape_recorder_state() is None
        rec = _CountingRecorder()
        set_tape_recorder(rec)
        try:
            for _ in range(3):
                plan.forward(x)
                plan.gradient(seed_vec)
                plan.per_sample(x)
        finally:
            set_tape_recorder(None)
        assert rec.count == 0, (
            f"steady-state replay constructed {rec.count} graph nodes"
        )

    def test_steady_state_replay_allocates_no_arena(self):
        model = MADE(8, hidden=10, rng=np.random.default_rng(0))
        x = _batch(8, 16)
        plan = StepCompiler(model).per_sample_plan(x)
        seed_vec = np.random.default_rng(2).standard_normal(16)
        plan.forward(x)
        plan.gradient(seed_vec)
        plan.per_sample(x)
        before = plan.arena_bytes
        for _ in range(5):
            plan.forward(x)
            plan.gradient(seed_vec)
            plan.per_sample(x)
        assert plan.arena_bytes == before


class TestPerSampleFallback:
    def test_untraceable_per_sample_raises_trace_error(self):
        # MeanField's scalar path compiles, but its per-sample sweep hits an
        # op family the batched adjoint does not support — the compiler must
        # surface that as TraceError so 'auto' mode can fall back cleanly.
        model = MeanField(6, rng=np.random.default_rng(0))
        x = _batch(6, 4)
        compiler = StepCompiler(model)
        compiler.plan_for(x)  # scalar path is fine
        with pytest.raises(TraceError):
            compiler.per_sample_plan(x)
