"""Guard semantics: cache hits, guard misses, overrides, replay divergence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.jit import StepCompiler, TapeDivergenceError, TraceError
from repro.models import MADE
from repro.nn import Module, Parameter
from repro.obs import Metrics
from repro.tensor import Tensor, no_grad


def _batch(n: int, b: int, seed: int = 1) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=(b, n)).astype(np.float64)


def _made(n: int = 6) -> MADE:
    return MADE(n, hidden=8, rng=np.random.default_rng(0))


class TestGuards:
    def test_same_batch_shape_is_cache_hit(self):
        model = _made()
        compiler = StepCompiler(model)
        plan1 = compiler.plan_for(_batch(6, 4, seed=1))
        plan2 = compiler.plan_for(_batch(6, 4, seed=2))
        assert plan1 is plan2
        assert compiler.stats == {"traces": 1, "cache_hits": 1, "guard_misses": 0}

    def test_batch_shape_change_retraces(self):
        model = _made()
        compiler = StepCompiler(model)
        plan1 = compiler.plan_for(_batch(6, 4))
        plan2 = compiler.plan_for(_batch(6, 8))
        assert plan1 is not plan2
        assert compiler.stats["guard_misses"] == 1
        assert compiler.stats["traces"] == 2
        # The re-traced plan is correct for the new shape.
        x = _batch(6, 8, seed=7)
        with no_grad():
            want = model.log_psi(x).data
        np.testing.assert_allclose(plan2.forward(x), want, rtol=1e-9, atol=1e-10)

    def test_dtype_change_retraces_and_matches_float_result(self):
        model = _made()
        compiler = StepCompiler(model)
        xf = _batch(6, 4)
        plan_f = compiler.plan_for(xf)
        want = plan_f.forward(xf)
        xi = xf.astype(np.int64)
        plan_i = compiler.plan_for(xi)
        assert compiler.stats["guard_misses"] == 1
        # Tracing normalises to float64, so the numbers agree exactly.
        np.testing.assert_allclose(plan_i.forward(xi), want, rtol=0, atol=0)

    def test_parameter_replacement_is_guard_miss(self):
        model = _made()
        compiler = StepCompiler(model)
        x = _batch(6, 4)
        compiler.plan_for(x)
        layer = model.fc_layers[0]
        layer.weight = Parameter(layer.weight.data.copy())
        plan = compiler.plan_for(x)
        assert compiler.stats["guard_misses"] == 1
        with no_grad():
            want = model.log_psi(x).data
        np.testing.assert_allclose(plan.forward(x), want, rtol=1e-9, atol=1e-10)

    def test_inplace_param_update_stays_cached_and_tracks_values(self):
        model = _made()
        compiler = StepCompiler(model)
        x = _batch(6, 4)
        plan = compiler.plan_for(x)
        rng = np.random.default_rng(5)
        for p in model.parameters():
            p.data += 0.1 * rng.standard_normal(p.data.shape)
            p.bump_version()
        assert compiler.plan_for(x) is plan  # values are not in the guard key
        assert compiler.stats["cache_hits"] == 1
        with no_grad():
            want = model.log_psi(x).data
        np.testing.assert_allclose(plan.forward(x), want, rtol=1e-9, atol=1e-10)

    def test_metrics_counters_and_arena_gauge(self):
        model = _made()
        metrics = Metrics()
        compiler = StepCompiler(model, metrics=metrics)
        compiler.plan_for(_batch(6, 4))
        compiler.plan_for(_batch(6, 4))
        compiler.plan_for(_batch(6, 8))
        snap = metrics.snapshot()
        assert snap["counters"]["jit.trace"] == 2
        assert snap["counters"]["jit.cache_hit"] == 1
        assert snap["counters"]["jit.guard_miss"] == 1
        assert snap["gauges"]["jit.arena_bytes"] > 0


class TestOverrides:
    def test_instance_override_refused(self):
        model = _made()
        model.log_psi_and_grads = lambda x: (None, None)  # ablation monkeypatch
        with pytest.raises(TraceError, match="overrides 'log_psi_and_grads'"):
            StepCompiler(model).plan_for(_batch(6, 4))

    def test_override_refused_even_on_cached_plan(self):
        model = _made()
        compiler = StepCompiler(model)
        x = _batch(6, 4)
        compiler.plan_for(x)
        model.log_psi = model.log_psi  # binds into the instance dict
        with pytest.raises(TraceError, match="overrides 'log_psi'"):
            compiler.plan_for(x)


class _Branchy(Module):
    """Data-dependent control flow: the canonical tape-unsafe model."""

    def __init__(self, n: int):
        super().__init__()
        rng = np.random.default_rng(0)
        self.w = Parameter(0.1 * rng.standard_normal((n, 1)))

    def log_psi(self, x):
        h = Tensor(x) @ self.w  # (B, 1)
        if float(x[0, 0]) > 0.5:
            h = h * 2.0
        return h.sum(axis=1)


class TestReplayVerification:
    def test_divergence_reports_op_index_and_call_site(self):
        model = _Branchy(4)
        compiler = StepCompiler(model, verify_replay=True)
        x_hot = np.ones((3, 4))
        compiler.plan_for(x_hot)  # traces the `* 2.0` branch
        x_cold = np.ones((3, 4))
        x_cold[0, 0] = 0.0  # interpreter skips the branch; the replay cannot
        with pytest.raises(TapeDivergenceError) as excinfo:
            compiler.plan_for(x_cold)  # same guard key, different branch
        err = excinfo.value
        assert err.op_index is not None
        assert "op #" in str(err)

    def test_verify_replay_passes_for_straight_line_models(self):
        model = _made()
        compiler = StepCompiler(model, verify_replay=True)
        for seed in (1, 2, 3):
            plan = compiler.plan_for(_batch(6, 4, seed=seed))
            plan.forward(_batch(6, 4, seed=seed))
        assert compiler.stats["traces"] == 1
