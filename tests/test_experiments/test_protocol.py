"""Experiment protocol builders (the §5.1 settings as code)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    build_model,
    build_optimizer,
    build_sampler,
    make_hamiltonian,
    train_once,
)
from repro.hamiltonians import LatticeTFIM, MaxCut, TransverseFieldIsing
from repro.models import MADE, RBM, MeanField
from repro.models.made import default_hidden_size
from repro.optim import SGD, Adam
from repro.samplers import AutoregressiveSampler, MetropolisSampler, ParallelTemperingSampler


class TestBuilders:
    def test_made_default_hidden_is_papers(self):
        model = build_model("made", 100, seed=0)
        assert isinstance(model, MADE)
        assert model.hidden == default_hidden_size(100)

    def test_rbm_default_hidden_is_n(self):
        model = build_model("rbm", 37, seed=0)
        assert isinstance(model, RBM)
        assert model.hidden == 37

    def test_mean_field(self):
        assert isinstance(build_model("mean_field", 10, seed=0), MeanField)

    def test_unknown_arch(self):
        with pytest.raises(ValueError):
            build_model("transformer", 10, seed=0)

    def test_sampler_kinds(self):
        assert isinstance(build_sampler("auto", 10), AutoregressiveSampler)
        mcmc = build_sampler("mcmc", 10)
        assert isinstance(mcmc, MetropolisSampler)
        assert mcmc.n_chains == 2
        assert mcmc.burn_in_steps(10) == 130  # 3n + 100
        assert isinstance(build_sampler("tempering", 10), ParallelTemperingSampler)
        with pytest.raises(ValueError):
            build_sampler("hmc", 10)

    def test_optimizer_settings(self):
        model = build_model("made", 10, seed=0)
        sgd, sr = build_optimizer("sgd", model)
        assert isinstance(sgd, SGD) and sgd.lr == 0.1 and sr is None
        adam, sr = build_optimizer("adam", model)
        assert isinstance(adam, Adam) and adam.lr == 0.01 and sr is None
        sgd2, sr2 = build_optimizer("sgd+sr", model)
        assert sr2 is not None and sr2.diag_shift == 1e-3
        with pytest.raises(ValueError):
            build_optimizer("lbfgs", model)

    def test_hamiltonian_factory(self):
        assert isinstance(make_hamiltonian("tim", 8, seed=1), TransverseFieldIsing)
        assert isinstance(make_hamiltonian("maxcut", 8, seed=1), MaxCut)
        assert isinstance(make_hamiltonian("chain", 8), LatticeTFIM)
        grid = make_hamiltonian("grid", 6, lx=2, ly=3)
        assert isinstance(grid, LatticeTFIM) and grid.shape == (2, 3)
        with pytest.raises(ValueError):
            make_hamiltonian("grid", 6, lx=2, ly=2)
        with pytest.raises(ValueError):
            make_hamiltonian("heisenberg", 8)

    def test_instances_reproducible(self):
        a = make_hamiltonian("tim", 10, seed=5)
        b = make_hamiltonian("tim", 10, seed=5)
        assert np.array_equal(a.couplings, b.couplings)


class TestTrainOnce:
    def test_maxcut_reports_cut(self):
        ham = make_hamiltonian("maxcut", 10, seed=2)
        out = train_once(ham, "made", "auto", "adam", 15, 64, seed=0)
        assert out.best_cut is not None and out.best_cut > 0
        assert out.train_seconds > 0
        assert len(out.history) == 15

    def test_tim_has_no_cut(self):
        ham = make_hamiltonian("tim", 8, seed=2)
        out = train_once(ham, "made", "auto", "sgd", 10, 64, seed=0)
        assert out.best_cut is None
        assert np.isfinite(out.final_energy)
