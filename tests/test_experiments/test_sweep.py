"""Sweep expansion, execution and aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import Sweep, TrialSpec, aggregate


@pytest.fixture
def tiny_sweep():
    return Sweep(
        base=TrialSpec(problem="maxcut", n=8, iterations=8, batch_size=32),
        grid={"seed": [0, 1], "optimizer": ["sgd", "adam"]},
    )


class TestExpansion:
    def test_cartesian_product(self, tiny_sweep):
        trials = tiny_sweep.trials()
        assert len(trials) == 4
        combos = {(t.seed, t.optimizer) for t in trials}
        assert combos == {(0, "sgd"), (0, "adam"), (1, "sgd"), (1, "adam")}

    def test_base_fields_preserved(self, tiny_sweep):
        for t in tiny_sweep.trials():
            assert t.problem == "maxcut" and t.n == 8 and t.iterations == 8

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            Sweep(TrialSpec(), {"temperature": [1, 2]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            Sweep(TrialSpec(), {"seed": []})


class TestExecution:
    def test_sequential_run(self, tiny_sweep):
        records = tiny_sweep.run()
        assert len(records) == 4
        assert all(np.isfinite(r.final_energy) for r in records)
        assert all(r.best_cut is not None for r in records)
        assert all(r.energy_curve.shape == (8,) for r in records)

    def test_process_pool_run_matches_sequential_structure(self):
        sweep = Sweep(
            base=TrialSpec(problem="tim", n=6, iterations=4, batch_size=16),
            grid={"seed": [0, 1]},
        )
        seq = sweep.run(workers=1)
        par = sweep.run(workers=2)
        # Same specs in the same order; results deterministic per spec.
        for a, b in zip(seq, par):
            assert a.spec == b.spec
            assert a.final_energy == pytest.approx(b.final_energy)

    def test_trial_record_metric_access(self, tiny_sweep):
        rec = tiny_sweep.trials()[0].run()
        assert rec.value("final_energy") == rec.final_energy
        with pytest.raises(KeyError):
            rec.value("loss")


class TestAggregation:
    def test_group_by_optimizer(self, tiny_sweep):
        records = tiny_sweep.run()
        table = aggregate(records, by=("optimizer",), metric="best_cut")
        assert set(table) == {("sgd",), ("adam",)}
        for mean, std in table.values():
            assert mean > 0 and std >= 0

    def test_mean_std_values(self, tiny_sweep):
        records = tiny_sweep.run()
        table = aggregate(records, by=("optimizer",), metric="final_energy")
        for (opt,), (mean, std) in table.items():
            vals = [r.final_energy for r in records if r.spec.optimizer == opt]
            assert mean == pytest.approx(np.mean(vals))
            assert std == pytest.approx(np.std(vals))

    def test_none_metric_rejected(self):
        sweep = Sweep(
            base=TrialSpec(problem="tim", n=6, iterations=3, batch_size=16),
            grid={"seed": [0]},
        )
        records = sweep.run()
        with pytest.raises(ValueError):
            aggregate(records, by=("n",), metric="best_cut")  # TIM has no cut
