"""Classical Max-Cut baselines: approximation guarantees and orderings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BurerMonteiro,
    GoemansWilliamson,
    one_opt_local_search,
    random_cut,
)
from repro.baselines.result import CutResult, cut_of_partition
from repro.exact import brute_force_max_cut
from repro.hamiltonians import bernoulli_adjacency


@pytest.fixture
def graph():
    return bernoulli_adjacency(14, seed=3)


class TestCutOfPartition:
    def test_matches_hamiltonian(self, graph, rng):
        from repro.hamiltonians import MaxCut

        mc = MaxCut(graph)
        x = (rng.random((6, 14)) < 0.5).astype(float)
        for row in x:
            assert cut_of_partition(graph, row) == pytest.approx(
                mc.cut_value(row[None])[0]
            )

    def test_complement_partition_same_cut(self, graph, rng):
        bits = (rng.random(14) < 0.5).astype(float)
        assert cut_of_partition(graph, bits) == cut_of_partition(graph, 1.0 - bits)


class TestRandomCut:
    def test_expectation_is_half_total(self, graph):
        """E[random cut] = |E|/2 — check to Monte-Carlo accuracy."""
        vals = [random_cut(graph, seed=s).value for s in range(300)]
        expect = np.triu(graph, 1).sum() / 2.0
        assert np.mean(vals) == pytest.approx(expect, rel=0.1)

    def test_best_of_trials_monotone(self, graph):
        one = random_cut(graph, seed=0, trials=1).value
        many = random_cut(graph, seed=0, trials=64).value
        assert many >= one

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            random_cut(graph, trials=0)


class TestGoemansWilliamson:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_approximation_ratio(self, graph, seed):
        opt, _ = brute_force_max_cut(graph)
        res = GoemansWilliamson(rounds=50).solve(graph, seed=seed)
        assert res.value >= 0.878 * opt - 1e-9
        assert res.value <= opt + 1e-9

    def test_sdp_bound_upper_bounds_optimum(self, graph):
        opt, _ = brute_force_max_cut(graph)
        res = GoemansWilliamson().solve(graph, seed=0)
        assert res.info["sdp_bound"] >= opt - 1e-6

    def test_bits_consistent_with_value(self, graph):
        res = GoemansWilliamson().solve(graph, seed=1)
        assert cut_of_partition(graph, res.bits) == pytest.approx(res.value)

    def test_beats_random_on_average(self, graph):
        gw = GoemansWilliamson(rounds=50).solve(graph, seed=0).value
        rc = np.mean([random_cut(graph, seed=s).value for s in range(50)])
        assert gw > rc

    def test_local_search_option(self, graph):
        plain = GoemansWilliamson(rounds=10).solve(graph, seed=5)
        polished = GoemansWilliamson(rounds=10, local_search=True).solve(graph, seed=5)
        assert polished.value >= plain.value


class TestBurerMonteiro:
    def test_reaches_optimum_on_small_graph(self, graph):
        opt, _ = brute_force_max_cut(graph)
        res = BurerMonteiro(restarts=2).solve(graph, seed=0)
        assert res.value == pytest.approx(opt)

    def test_restarts_never_hurt(self, graph):
        one = BurerMonteiro(restarts=1, rounds=5).solve(graph, seed=3).value
        three = BurerMonteiro(restarts=3, rounds=5).solve(graph, seed=3).value
        assert three >= one - 1e-9

    def test_info_fields(self, graph):
        res = BurerMonteiro(restarts=2).solve(graph, seed=0)
        assert res.info["restarts"] == 2
        assert res.info["rank"] >= int(np.ceil(np.sqrt(2 * 14)))

    def test_validation(self):
        with pytest.raises(ValueError):
            BurerMonteiro(restarts=0)


class TestLocalSearch:
    def test_never_decreases_cut(self, graph, rng):
        for _ in range(10):
            bits = (rng.random(14) < 0.5).astype(float)
            before = cut_of_partition(graph, bits)
            _, after = one_opt_local_search(graph, bits)
            assert after >= before - 1e-12

    def test_result_is_one_opt(self, graph, rng):
        bits = (rng.random(14) < 0.5).astype(float)
        final, val = one_opt_local_search(graph, bits)
        # No single flip may improve.
        for i in range(14):
            flipped = final.copy()
            flipped[i] = 1.0 - flipped[i]
            assert cut_of_partition(graph, flipped) <= val + 1e-9

    def test_already_optimal_unchanged(self, graph):
        opt, bits = brute_force_max_cut(graph)
        _, val = one_opt_local_search(graph, bits)
        assert val == pytest.approx(opt)


class TestTable2Ordering:
    def test_baseline_ordering_random_lt_gw_le_bm(self):
        """Table 2's qualitative ordering on a fresh instance."""
        w = bernoulli_adjacency(30, seed=17)
        rc = random_cut(w, seed=0).value
        gw = GoemansWilliamson(rounds=30).solve(w, seed=0).value
        bm = BurerMonteiro(rounds=30, restarts=2).solve(w, seed=0).value
        assert rc < gw
        assert gw <= bm + 1e-9
