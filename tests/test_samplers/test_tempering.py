"""Parallel tempering: exactness of the β=1 marginal and mixing benefits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import RBM
from repro.samplers import MetropolisSampler, ParallelTemperingSampler, geometric_temperatures
from repro.samplers.diagnostics import total_variation_distance


@pytest.fixture
def rugged_rbm(rng):
    """An RBM with stronger couplings — a more multimodal |ψ|²."""
    model = RBM(5, hidden=4, rng=rng, init_std=0.8)
    return model


class TestLadder:
    def test_geometric_ladder(self):
        betas = geometric_temperatures(4, 0.125)
        assert betas[0] == 1.0
        assert betas[-1] == pytest.approx(0.125)
        ratios = betas[1:] / betas[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            geometric_temperatures(1)
        with pytest.raises(ValueError):
            geometric_temperatures(4, beta_min=1.5)
        with pytest.raises(ValueError):
            ParallelTemperingSampler(swap_every=0)
        with pytest.raises(ValueError):
            ParallelTemperingSampler(chains_per_replica=0)


class TestExactness:
    def test_beta1_marginal_is_target_distribution(self, rugged_rbm, rng):
        """Swap moves must not bias the cold rung: long-run samples still
        follow |ψ|²/Z."""
        target = rugged_rbm.exact_distribution()
        sampler = ParallelTemperingSampler(
            n_replicas=4, beta_min=0.3, swap_every=3, burn_in=300,
            chains_per_replica=4,
        )
        x = sampler.sample(rugged_rbm, 20000, rng)
        codes = (x @ (2 ** np.arange(4, -1, -1))).astype(int)
        tv = total_variation_distance(codes, target)
        assert tv < 0.06

    def test_swaps_actually_happen(self, rugged_rbm, rng):
        sampler = ParallelTemperingSampler(
            n_replicas=4, beta_min=0.2, swap_every=2, burn_in=100
        )
        sampler.sample(rugged_rbm, 500, rng)
        assert sampler.last_stats.extras.get("swaps", 0) > 0

    def test_stats_bookkeeping(self, rugged_rbm, rng):
        sampler = ParallelTemperingSampler(n_replicas=3, burn_in=50)
        sampler.sample(rugged_rbm, 64, rng)
        stats = sampler.last_stats
        assert stats.forward_passes > 50
        assert 0.0 < stats.acceptance_rate <= 1.0


class TestMixing:
    def test_tempering_beats_plain_mh_on_bimodal_target(self, rng):
        """Construct a deliberately bimodal |ψ|² (two far-apart modes);
        tempering must estimate the mode balance better than plain MH with
        the same total budget."""
        model = RBM(8, hidden=6, rng=rng)
        # Strong ferromagnetic-style couplings → modes at 000… and 111…
        model.fc.weight.data[...] = 0.0
        model.fc.bias.data[...] = 0.0
        model.visible.weight.data[...] = 0.0
        w = np.full((6, 8), 0.6)
        model.fc.weight.data[...] = w
        model.fc.bias.data[...] = -0.5 * w.sum(axis=1)  # symmetric double well

        target = model.exact_distribution()
        budget_batch = 4000

        plain = MetropolisSampler(n_chains=4, burn_in=200)
        x_plain = plain.sample(model, budget_batch, rng)
        pt = ParallelTemperingSampler(
            n_replicas=4, beta_min=0.2, swap_every=2, burn_in=200,
            chains_per_replica=4,
        )
        x_pt = pt.sample(model, budget_batch, rng)

        def tv(x):
            codes = (x @ (2 ** np.arange(7, -1, -1))).astype(int)
            return total_variation_distance(codes, target, n_states=256)

        # PT should not be worse; usually substantially better on this target.
        assert tv(x_pt) <= tv(x_plain) + 0.05
