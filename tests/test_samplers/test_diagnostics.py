"""MCMC diagnostics: autocorrelation, ESS, R̂, TV distance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.samplers.diagnostics import (
    autocorrelation,
    effective_sample_size,
    gelman_rubin,
    integrated_autocorr_time,
    total_variation_distance,
)


def ar1(rng, phi: float, t: int) -> np.ndarray:
    """AR(1) series with known integrated autocorrelation (1+φ)/(1−φ)."""
    x = np.zeros(t)
    noise = rng.normal(size=t)
    for i in range(1, t):
        x[i] = phi * x[i - 1] + noise[i]
    return x


class TestAutocorrelation:
    def test_lag_zero_is_one(self, rng):
        acf = autocorrelation(rng.normal(size=500))
        assert acf[0] == pytest.approx(1.0)

    def test_iid_series_decorrelates_fast(self, rng):
        acf = autocorrelation(rng.normal(size=5000), max_lag=20)
        assert np.all(np.abs(acf[1:]) < 0.1)

    def test_ar1_matches_theory(self, rng):
        phi = 0.8
        acf = autocorrelation(ar1(rng, phi, 200000), max_lag=10)
        theory = phi ** np.arange(11)
        assert np.allclose(acf, theory, atol=0.05)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            autocorrelation(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            autocorrelation(np.zeros(1))

    def test_constant_series(self):
        acf = autocorrelation(np.ones(100))
        assert np.all(acf == 0.0)


class TestTauAndESS:
    def test_iid_tau_near_one(self, rng):
        tau = integrated_autocorr_time(rng.normal(size=20000))
        assert 0.8 < tau < 1.5

    def test_ar1_tau_matches_theory(self, rng):
        phi = 0.9
        tau = integrated_autocorr_time(ar1(rng, phi, 400000))
        theory = (1 + phi) / (1 - phi)  # = 19
        assert abs(tau - theory) / theory < 0.25

    def test_ess_less_than_length_for_correlated(self, rng):
        series = ar1(rng, 0.95, 50000)
        ess = effective_sample_size(series)
        assert ess < 50000 / 10

    def test_ess_close_to_length_for_iid(self, rng):
        ess = effective_sample_size(rng.normal(size=10000))
        assert ess > 10000 / 2


class TestGelmanRubin:
    def test_mixed_chains_rhat_near_one(self, rng):
        chains = rng.normal(size=(4, 5000))
        assert gelman_rubin(chains) == pytest.approx(1.0, abs=0.05)

    def test_unmixed_chains_rhat_large(self, rng):
        chains = rng.normal(size=(4, 1000)) + np.arange(4)[:, None] * 10.0
        assert gelman_rubin(chains) > 3.0

    def test_requires_multiple_chains(self, rng):
        with pytest.raises(ValueError):
            gelman_rubin(rng.normal(size=(1, 100)))

    def test_degenerate_chains(self):
        assert gelman_rubin(np.ones((3, 50))) == 1.0


class TestTV:
    def test_perfect_match(self):
        probs = np.array([0.5, 0.5])
        samples = np.array([0] * 50 + [1] * 50)
        assert total_variation_distance(samples, probs) == pytest.approx(0.0)

    def test_disjoint_support(self):
        probs = np.array([1.0, 0.0])
        samples = np.ones(100, dtype=int)
        assert total_variation_distance(samples, probs) == pytest.approx(1.0)

    def test_bounds(self, rng):
        probs = np.full(8, 1 / 8)
        samples = rng.integers(0, 8, size=1000)
        tv = total_variation_distance(samples, probs)
        assert 0.0 <= tv <= 1.0
