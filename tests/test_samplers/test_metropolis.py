"""Metropolis–Hastings sampler: detailed balance, convergence, schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import RBM, MADE
from repro.samplers import MetropolisSampler, default_burn_in
from repro.samplers.diagnostics import total_variation_distance


@pytest.fixture
def rbm(rng):
    m = RBM(4, hidden=3, rng=rng, init_std=0.4)
    return m


class TestCorrectness:
    def test_converges_to_born_distribution(self, rbm, rng):
        """Long chains must sample |ψ|²/Z (asymptotic exactness)."""
        target = rbm.exact_distribution()
        sampler = MetropolisSampler(n_chains=4, burn_in=500, thin=2)
        x = sampler.sample(rbm, 20000, rng)
        codes = (x @ (2 ** np.arange(3, -1, -1))).astype(int)
        tv = total_variation_distance(codes, target)
        assert tv < 0.05

    def test_detailed_balance_on_enumerable_space(self, rbm, rng):
        """Empirical transition flux i→j vs j→i on a tiny chain."""
        # Run one chain, record transitions.
        sampler = MetropolisSampler(n_chains=1, burn_in=200, thin=1)
        x = sampler.sample(rbm, 40000, rng)
        codes = (x @ (2 ** np.arange(3, -1, -1))).astype(int)
        flux = np.zeros((16, 16))
        np.add.at(flux, (codes[:-1], codes[1:]), 1.0)
        # π_i P_ij = π_j P_ji ⇒ symmetric empirical flux (up to noise).
        sym_err = np.abs(flux - flux.T) / (flux + flux.T + 1.0)
        assert sym_err.max() < 0.35  # loose: Monte-Carlo noise

    def test_acceptance_rate_sane(self, rbm, rng):
        sampler = MetropolisSampler(n_chains=2)
        sampler.sample(rbm, 256, rng)
        acc = sampler.last_stats.acceptance_rate
        assert 0.05 < acc <= 1.0

    def test_works_with_made_too(self, rng):
        """MCMC is model-agnostic — MADE+MCMC is a valid (ablation) pairing."""
        made = MADE(4, hidden=6, rng=rng)
        sampler = MetropolisSampler(n_chains=2, burn_in=200)
        x = sampler.sample(made, 5000, rng)
        codes = (x @ (2 ** np.arange(3, -1, -1))).astype(int)
        tv = total_variation_distance(codes, made.exact_distribution())
        assert tv < 0.08


class TestCostModel:
    def test_default_burn_in_is_papers(self):
        assert default_burn_in(100) == 400
        assert default_burn_in(500) == 1600

    def test_forward_passes_match_prediction(self, rbm, rng):
        sampler = MetropolisSampler(n_chains=2, burn_in=50, thin=3)
        sampler.sample(rbm, 100, rng)
        assert sampler.last_stats.forward_passes == sampler.predicted_forward_passes(
            rbm.n, 100
        )

    def test_more_chains_fewer_collection_steps(self, rbm, rng):
        s1 = MetropolisSampler(n_chains=1, burn_in=10)
        s4 = MetropolisSampler(n_chains=4, burn_in=10)
        s1.sample(rbm, 64, rng)
        f1 = s1.last_stats.forward_passes
        s4.sample(rbm, 64, rng)
        f4 = s4.last_stats.forward_passes
        assert f4 < f1


class TestSchemes:
    def test_scheme1_burn_in_values(self, rbm, rng):
        """§6.2 Scheme 1: discard the first {n, 10n} samples."""
        for k in (rbm.n, 10 * rbm.n):
            sampler = MetropolisSampler(n_chains=2, burn_in=k)
            sampler.sample(rbm, 32, rng)
            assert sampler.burn_in_steps(rbm.n) == k

    def test_scheme2_thinning(self, rbm, rng):
        """§6.2 Scheme 2: keep every {2,5,10}-th sample."""
        base = MetropolisSampler(n_chains=2, burn_in=10, thin=1)
        base.sample(rbm, 64, rng)
        f_base = base.last_stats.forward_passes
        for j in (2, 5, 10):
            s = MetropolisSampler(n_chains=2, burn_in=10, thin=j)
            s.sample(rbm, 64, rng)
            assert s.last_stats.forward_passes - 10 - 1 == j * (
                f_base - 10 - 1
            )

    def test_persistent_chains_skip_burn_in(self, rbm, rng):
        sampler = MetropolisSampler(n_chains=2, burn_in=100, persistent=True)
        sampler.sample(rbm, 16, rng)
        first = sampler.last_stats.forward_passes
        sampler.sample(rbm, 16, rng)
        second = sampler.last_stats.forward_passes
        assert second < first  # no burn-in, no init pass on the second call

    def test_reset_forgets_state(self, rbm, rng):
        sampler = MetropolisSampler(n_chains=2, burn_in=50, persistent=True)
        sampler.sample(rbm, 16, rng)
        sampler.reset()
        sampler.sample(rbm, 16, rng)
        assert sampler.last_stats.forward_passes > 50


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            MetropolisSampler(n_chains=0)
        with pytest.raises(ValueError):
            MetropolisSampler(thin=0)
        with pytest.raises(ValueError):
            MetropolisSampler(burn_in=-5).burn_in_steps(4)

    def test_bad_batch_size(self, rbm, rng):
        with pytest.raises(ValueError):
            MetropolisSampler().sample(rbm, 0, rng)

    def test_batch_not_multiple_of_chains(self, rbm, rng):
        x = MetropolisSampler(n_chains=3, burn_in=5).sample(rbm, 10, rng)
        assert x.shape == (10, 4)
