"""Enumeration sampler and MADE conditional (clamped) sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import MADE, RBM
from repro.samplers import AutoregressiveSampler, EnumerationSampler
from repro.samplers.diagnostics import total_variation_distance


class TestEnumerationSampler:
    def test_matches_made_exact_distribution(self, rng):
        model = MADE(5, hidden=8, rng=rng)
        sampler = EnumerationSampler()
        probs = sampler.probabilities(model)
        assert np.allclose(probs, model.exact_distribution(), atol=1e-12)

    def test_works_for_unnormalised_models(self, rng):
        model = RBM(5, hidden=4, rng=rng, init_std=0.5)
        sampler = EnumerationSampler()
        x = sampler.sample(model, 30000, rng)
        codes = (x @ (2 ** np.arange(4, -1, -1))).astype(int)
        tv = total_variation_distance(codes, model.exact_distribution())
        assert tv < 0.03

    def test_agrees_with_autoregressive_sampler(self, rng):
        """The two exact samplers must produce the same distribution."""
        model = MADE(4, hidden=6, rng=rng)
        x_auto = AutoregressiveSampler().sample(model, 30000, np.random.default_rng(1))
        x_enum = EnumerationSampler().sample(model, 30000, np.random.default_rng(2))
        weights = 2 ** np.arange(3, -1, -1)
        counts_a = np.bincount((x_auto @ weights).astype(int), minlength=16)
        counts_e = np.bincount((x_enum @ weights).astype(int), minlength=16)
        tv = 0.5 * np.abs(counts_a / 30000 - counts_e / 30000).sum()
        assert tv < 0.03

    def test_cache_invalidated_on_parameter_change(self, rng):
        model = MADE(4, hidden=6, rng=rng)
        sampler = EnumerationSampler()
        p1 = sampler.probabilities(model).copy()
        model.fc1.weight.data += 1.0
        p2 = sampler.probabilities(model)
        assert not np.allclose(p1, p2)

    def test_size_limit(self, rng):
        model = MADE(6, hidden=4, rng=rng)
        with pytest.raises(ValueError):
            EnumerationSampler(max_sites=5).sample(model, 4, rng)

    def test_bad_batch_size(self, rng):
        model = MADE(4, rng=rng)
        with pytest.raises(ValueError):
            EnumerationSampler().sample(model, 0, rng)


class TestConditionalSampling:
    def test_clamped_sites_are_fixed(self, rng):
        model = MADE(6, hidden=10, rng=rng)
        clamp = np.array([1.0, np.nan, 0.0, np.nan, np.nan, np.nan])
        x = model.sample(200, rng, clamp=clamp)
        assert np.all(x[:, 0] == 1.0)
        assert np.all(x[:, 2] == 0.0)
        assert set(np.unique(x[:, 1])) <= {0.0, 1.0}

    def test_prefix_clamp_matches_true_conditional(self, rng):
        """Clamping a prefix must sample the exact Bayesian conditional."""
        model = MADE(5, hidden=8, rng=rng)
        for p in model.parameters():
            p.data += rng.normal(size=p.shape) * 0.5
        clamp = np.array([1.0, 0.0, np.nan, np.nan, np.nan])
        x = model.sample(30000, rng, clamp=clamp)

        probs = model.exact_distribution()
        states = ((np.arange(32)[:, None] >> np.arange(4, -1, -1)) & 1).astype(float)
        mask = (states[:, 0] == 1.0) & (states[:, 1] == 0.0)
        cond = np.where(mask, probs, 0.0)
        cond /= cond.sum()
        codes = (x @ (2 ** np.arange(4, -1, -1))).astype(int)
        tv = total_variation_distance(codes, cond)
        assert tv < 0.03

    def test_clamp_validation(self, rng):
        model = MADE(4, rng=rng)
        with pytest.raises(ValueError):
            model.sample(4, rng, clamp=np.array([1.0, 0.0]))  # wrong length
        with pytest.raises(ValueError):
            model.sample(4, rng, clamp=np.array([0.5, np.nan, np.nan, np.nan]))
