"""Exact autoregressive sampling (AUTO)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import MADE
from repro.samplers import AutoregressiveSampler
from repro.samplers.diagnostics import total_variation_distance


@pytest.fixture
def made(rng):
    m = MADE(4, hidden=10, rng=rng)
    # Push weights away from init so the distribution is non-trivial.
    for p in m.parameters():
        p.data += rng.normal(size=p.shape) * 0.8
    return m


class TestExactness:
    def test_samples_match_model_distribution(self, made, rng):
        sampler = AutoregressiveSampler()
        x = sampler.sample(made, 20000, rng)
        codes = (x @ (2 ** np.arange(3, -1, -1))).astype(int)
        tv = total_variation_distance(codes, made.exact_distribution())
        assert tv < 0.03

    def test_forward_pass_count_is_n(self, made, rng):
        sampler = AutoregressiveSampler()
        sampler.sample(made, 128, rng)
        assert sampler.last_stats.forward_passes == made.n

    def test_forward_pass_count_independent_of_batch(self, made, rng):
        sampler = AutoregressiveSampler()
        sampler.sample(made, 1, rng)
        small = sampler.last_stats.forward_passes
        sampler.sample(made, 4096, rng)
        large = sampler.last_stats.forward_passes
        assert small == large == made.n

    def test_exact_flag(self):
        assert AutoregressiveSampler.exact is True


class TestValidation:
    def test_rejects_unnormalised_model(self, rng):
        from repro.models import RBM

        with pytest.raises(TypeError):
            AutoregressiveSampler().sample(RBM(4, rng=rng), 8, rng)

    def test_rejects_bad_batch_size(self, made, rng):
        with pytest.raises(ValueError):
            AutoregressiveSampler().sample(made, 0, rng)
