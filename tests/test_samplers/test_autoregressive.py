"""Exact autoregressive sampling (AUTO) — incremental and naive paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import MADE
from repro.samplers import AutoregressiveSampler
from repro.samplers.diagnostics import total_variation_distance


@pytest.fixture
def made(rng):
    m = MADE(4, hidden=10, rng=rng)
    # Push weights away from init so the distribution is non-trivial.
    for p in m.parameters():
        p.data += rng.normal(size=p.shape) * 0.8
    return m


class TestExactness:
    def test_samples_match_model_distribution(self, made, rng):
        sampler = AutoregressiveSampler()
        x = sampler.sample(made, 20000, rng)
        codes = (x @ (2 ** np.arange(3, -1, -1))).astype(int)
        tv = total_variation_distance(codes, made.exact_distribution())
        assert tv < 0.03

    def test_incremental_matches_naive_bitwise(self, made):
        fast = AutoregressiveSampler(method="incremental")
        slow = AutoregressiveSampler(method="naive")
        x_fast = fast.sample(made, 256, np.random.default_rng(7))
        x_slow = slow.sample(made, 256, np.random.default_rng(7))
        assert np.array_equal(x_fast, x_slow)

    def test_exact_flag(self):
        assert AutoregressiveSampler.exact is True


class TestStats:
    def test_incremental_is_default_and_cheaper_than_n(self, made, rng):
        sampler = AutoregressiveSampler()
        sampler.sample(made, 128, rng)
        stats = sampler.last_stats
        assert stats.extras["fast_path"] == "incremental"
        # The measured cost is the point of the fast path: well below the
        # naive sampler's n full passes.
        assert 0.0 < stats.forward_pass_equivalents < made.n
        assert stats.forward_passes == int(np.ceil(stats.forward_pass_equivalents))
        assert stats.pass_equivalents == stats.forward_pass_equivalents

    def test_naive_path_reports_n_passes(self, made, rng):
        sampler = AutoregressiveSampler(method="naive")
        sampler.sample(made, 128, rng)
        stats = sampler.last_stats
        assert stats.extras["fast_path"] == "naive"
        assert stats.forward_passes == made.n
        assert stats.pass_equivalents == float(made.n)

    def test_incremental_cost_independent_of_batch(self, made, rng):
        sampler = AutoregressiveSampler()
        sampler.sample(made, 1, rng)
        small = sampler.last_stats.forward_pass_equivalents
        sampler.sample(made, 4096, rng)
        large = sampler.last_stats.forward_pass_equivalents
        # Per-batch cost in pass units stays O(1) whatever the batch size:
        # for a single hidden layer it is bounded by ~1.5 passes (one output
        # row + at most one rank-1 column update per site), never the naive n.
        assert 0.0 < small < 1.5
        assert 0.0 < large < 1.5


class TestValidation:
    def test_rejects_unnormalised_model(self, rng):
        from repro.models import RBM

        with pytest.raises(TypeError):
            AutoregressiveSampler().sample(RBM(4, rng=rng), 8, rng)

    def test_rejects_bad_batch_size(self, made, rng):
        with pytest.raises(ValueError):
            AutoregressiveSampler().sample(made, 0, rng)

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            AutoregressiveSampler(method="warp")

    def test_incremental_method_requires_made(self, rng):
        from repro.models import MeanField

        with pytest.raises(TypeError):
            AutoregressiveSampler(method="incremental").sample(
                MeanField(4, rng=rng), 8, rng
            )


class TestFallback:
    def test_non_made_models_use_model_sample_silently(self, rng, recwarn):
        from repro.models import MeanField

        sampler = AutoregressiveSampler()
        x = sampler.sample(MeanField(4, rng=rng), 16, rng)
        assert x.shape == (16, 4)
        assert sampler.last_stats.extras["fast_path"] == "naive"
        assert not any(
            isinstance(w.message, RuntimeWarning) for w in recwarn.list
        )

    def test_made_fallback_warns(self, made, rng, monkeypatch):
        import repro.samplers.autoregressive as auto_mod

        def broken(*args, **kwargs):
            raise NotImplementedError("simulated unsupported stack")

        monkeypatch.setattr(auto_mod, "incremental_sample", broken)
        sampler = AutoregressiveSampler()
        with pytest.warns(RuntimeWarning, match="falling back"):
            x = sampler.sample(made, 16, rng)
        assert x.shape == (16, 4)
        assert sampler.last_stats.extras["fast_path"] == "naive"
