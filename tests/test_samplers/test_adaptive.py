"""Adaptive (R̂-controlled) burn-in sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import RBM
from repro.samplers import AdaptiveBurnInSampler
from repro.samplers.diagnostics import total_variation_distance


@pytest.fixture
def rbm(rng):
    return RBM(5, hidden=4, rng=rng, init_std=0.4)


class TestAdaptiveBurnIn:
    def test_samples_correct_distribution(self, rbm, rng):
        sampler = AdaptiveBurnInSampler(n_chains=4, rhat_threshold=1.05,
                                        check_every=100)
        x = sampler.sample(rbm, 20000, rng)
        codes = (x @ (2 ** np.arange(4, -1, -1))).astype(int)
        tv = total_variation_distance(codes, rbm.exact_distribution())
        assert tv < 0.05

    def test_reports_burn_in_and_rhat(self, rbm, rng):
        sampler = AdaptiveBurnInSampler(n_chains=4, check_every=50)
        sampler.sample(rbm, 64, rng)
        assert sampler.burn_in_used is not None
        assert sampler.burn_in_used % 50 == 0
        assert sampler.final_rhat is not None
        extras = sampler.last_stats.extras
        assert extras["burn_in_used"] == sampler.burn_in_used
        assert not extras["capped"]

    def test_easy_target_burns_in_fast(self, rng):
        """A near-uniform |ψ|² mixes immediately — one adaptation round."""
        easy = RBM(5, hidden=4, rng=rng, init_std=1e-4)
        sampler = AdaptiveBurnInSampler(n_chains=4, check_every=50)
        sampler.sample(easy, 32, rng)
        assert sampler.burn_in_used == 50

    def test_cap_flag_when_chains_frozen_apart(self, rng):
        """Chains frozen in different modes (huge couplings → acceptance 0,
        within-chain variance 0, between-chain variance > 0) give R̂ = ∞;
        the sampler must stop at the cap and flag it."""
        rbm = RBM(6, hidden=5, rng=rng, init_std=50.0)
        sampler = AdaptiveBurnInSampler(
            n_chains=4, rhat_threshold=1.01, check_every=50, max_burn_in=100
        )
        sampler.sample(rbm, 16, rng)
        assert sampler.burn_in_used == 100
        assert sampler.last_stats.extras["capped"]
        assert not np.isfinite(sampler.final_rhat) or sampler.final_rhat > 1.01

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveBurnInSampler(n_chains=1)
        with pytest.raises(ValueError):
            AdaptiveBurnInSampler(rhat_threshold=0.9)
        with pytest.raises(ValueError):
            AdaptiveBurnInSampler(check_every=5)

    def test_vqmc_integration(self, small_tim, rng):
        from repro.core import VQMC
        from repro.optim import Adam

        model = RBM(6, rng=rng)
        vqmc = VQMC(
            model, small_tim,
            AdaptiveBurnInSampler(n_chains=4, check_every=50),
            Adam(model.parameters(), lr=0.02), seed=4,
        )
        first = vqmc.step(batch_size=128).stats.mean
        vqmc.run(25, batch_size=128)
        assert vqmc.evaluate(256).mean < first + 0.5
