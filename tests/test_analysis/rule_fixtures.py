"""Canonical positive/negative fixtures, one pair per registered rule.

``FIXTURES[rule_id] = (bad, good)`` — ``bad`` must produce at least one
finding of exactly that rule, ``good`` must lint clean under it. The
meta-test in ``test_rule_fixture_coverage.py`` keeps this registry in
lockstep with the live catalogue: adding a rule without a fixture pair
(or retiring one and leaving its fixtures behind) fails the suite.

These are *smoke* fixtures — the minimal canonical trigger and its
minimal fix. Edge-case coverage lives in ``test_lint_rules.py`` and
``test_dataflow_rules.py``.
"""

from __future__ import annotations

FIXTURES: dict[str, tuple[str, str]] = {
    "ag-float-eq": (
        "def check(x):\n    return compute(x) == 1.5\n",
        "def check(x):\n    return abs(compute(x) - 1.5) < 1e-9\n",
    ),
    "ag-tensor-mutation": (
        "def init(w):\n    w.data[...] = 0.0\n",
        "import numpy as np\ndef init(w):\n    w.data = np.zeros(3)\n",
    ),
    "det-global-rng": (
        "import numpy as np\nnp.random.seed(0)\nx = np.random.rand(3)\n",
        "import numpy as np\nrng = np.random.default_rng(0)\nx = rng.random(3)\n",
    ),
    "det-stdlib-random": (
        "import random\nx = random.random()\n",
        "import numpy as np\nx = np.random.default_rng(0).random()\n",
    ),
    "det-unseeded-rng": (
        "import numpy as np\nrng = np.random.default_rng()\n",
        "import numpy as np\nrng = np.random.default_rng(7)\n",
    ),
    "det-wall-clock": (
        "import time\nstamp = time.time()\n",
        "import time\nstart = time.perf_counter()\n",
    ),
    "dist-collective-order": (
        # arms reach different collective *orders* through helpers
        "def head(comm, x):\n"
        "    comm.allreduce(x)\n"
        "    comm.broadcast(x, root=0)\n"
        "def tail(comm, x):\n"
        "    comm.broadcast(x, root=0)\n"
        "    comm.allreduce(x)\n"
        "def step(comm, x):\n"
        "    if comm.rank == 0:\n"
        "        head(comm, x)\n"
        "    else:\n"
        "        tail(comm, x)\n",
        "def head(comm, x):\n"
        "    comm.allreduce(x)\n"
        "    comm.broadcast(x, root=0)\n"
        "def step(comm, x):\n"
        "    if comm.rank == 0:\n"
        "        head(comm, x)\n"
        "    else:\n"
        "        head(comm, x)\n",
    ),
    "dist-epoch-tag": (
        "import numpy as np\n"
        "def ping(comm, peer):\n"
        "    comm.send_ctrl(peer, np.array([1.0, 2.0]))\n",
        "import numpy as np\n"
        "def ping(comm, peer, epoch):\n"
        "    comm.send_ctrl(peer, np.array([1.0, float(epoch)]))\n",
    ),
    "dist-rank-collective": (
        "def step(comm, x):\n"
        "    if comm.rank == 0:\n"
        "        comm.allreduce(x)\n",
        "def step(comm, x):\n"
        "    out = comm.allreduce(x)\n"
        "    if comm.rank == 0:\n"
        "        print(out)\n",
    ),
    "dist-rank-divergent-collective": (
        # the issue's acceptance shape: two call levels under a rank branch
        "def deep(comm, x):\n"
        "    comm.allreduce(x)\n"
        "def helper(comm, x):\n"
        "    deep(comm, x)\n"
        "def step(comm, x):\n"
        "    rank = comm.rank\n"
        "    if rank == 0:\n"
        "        helper(comm, x)\n",
        "def deep(comm, x):\n"
        "    comm.allreduce(x)\n"
        "def helper(comm, x):\n"
        "    deep(comm, x)\n"
        "def step(comm, x):\n"
        "    rank = comm.rank\n"
        "    if rank == 0:\n"
        "        helper(comm, x)\n"
        "    else:\n"
        "        deep(comm, x)\n",
    ),
    "dist-recv-timeout": (
        "def pull(comm):\n    return comm.recv(0)\n",
        "def pull(comm):\n    return comm.recv(0, timeout=5.0)\n",
    ),
    "jit-tape-unsafe": (
        "class Model:\n"
        "    def forward(self, x):\n"
        "        if x > 0:\n"
        "            return x\n"
        "        return -x\n",
        "class Model:\n"
        "    def forward(self, x):\n"
        "        return x * 2\n",
    ),
    "obs-span-leak": (
        "def timed(tracer, work):\n"
        "    span = tracer.begin('phase')\n"
        "    work()\n"
        "    tracer.end(span)\n",
        "def timed(tracer, work):\n"
        "    with tracer.span('phase'):\n"
        "        work()\n",
    ),
}
