"""tools/lint.py CLI: exit codes, output format, JSON mode."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.analysis

REPO = Path(__file__).resolve().parents[2]
CLI = REPO / "tools" / "lint.py"

BAD_SOURCE = (
    "import random\n"
    "import time\n"
    "stamp = time.time()\n"
)


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(CLI), *args],
        capture_output=True,
        text=True,
        cwd=REPO,
    )


@pytest.fixture
def bad_tree(tmp_path):
    (tmp_path / "bad.py").write_text(BAD_SOURCE)
    return tmp_path


@pytest.fixture
def clean_tree(tmp_path):
    (tmp_path / "good.py").write_text(
        "import numpy as np\nrng = np.random.default_rng(3)\n"
    )
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_tree):
        proc = run_cli(str(clean_tree))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_findings_exit_one(self, bad_tree):
        proc = run_cli(str(bad_tree))
        assert proc.returncode == 1

    def test_usage_error_exits_two(self, tmp_path):
        proc = run_cli(str(tmp_path / "does-not-exist"))
        assert proc.returncode == 2

    def test_unknown_rule_select_exits_two(self, clean_tree):
        proc = run_cli("--select", "no-such-rule", str(clean_tree))
        assert proc.returncode == 2


class TestHumanOutput:
    def test_findings_use_path_line_rule_format(self, bad_tree):
        proc = run_cli(str(bad_tree))
        lines = [l for l in proc.stdout.splitlines() if "bad.py" in l]
        assert len(lines) == 2
        bad_path = str(bad_tree / "bad.py")
        assert any(
            l.startswith(f"{bad_path}:1:") and "det-stdlib-random" in l
            for l in lines
        )
        assert any(
            l.startswith(f"{bad_path}:3:") and "det-wall-clock" in l
            for l in lines
        )

    def test_suppressed_count_reported(self, tmp_path):
        (tmp_path / "m.py").write_text(
            "import time\n"
            "t = time.time()  # repro-lint: disable=det-wall-clock -- stamp\n"
        )
        proc = run_cli(str(tmp_path))
        assert proc.returncode == 0
        assert "1 suppressed" in proc.stdout

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in ("det-global-rng", "ag-tensor-mutation", "dist-recv-timeout"):
            assert rule_id in proc.stdout


class TestJsonOutput:
    def test_json_payload_machine_readable(self, bad_tree):
        proc = run_cli("--json", str(bad_tree))
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["files_scanned"] == 1
        assert payload["finding_count"] == 2
        rules = {f["rule"] for f in payload["findings"]}
        assert rules == {"det-stdlib-random", "det-wall-clock"}

    def test_select_narrows_findings(self, bad_tree):
        proc = run_cli("--json", "--select", "det-wall-clock", str(bad_tree))
        payload = json.loads(proc.stdout)
        assert {f["rule"] for f in payload["findings"]} == {"det-wall-clock"}

    def test_format_json_equals_json_flag(self, bad_tree):
        legacy = run_cli("--json", str(bad_tree))
        modern = run_cli("--format", "json", str(bad_tree))
        assert legacy.stdout == modern.stdout
        assert legacy.returncode == modern.returncode == 1


class TestSarifOutput:
    def test_sarif_envelope_and_results(self, bad_tree):
        proc = run_cli("--format", "sarif", str(bad_tree))
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "det-wall-clock" in rule_ids
        assert "dist-rank-divergent-collective" in rule_ids
        results = run["results"]
        assert {r["ruleId"] for r in results} == {
            "det-stdlib-random",
            "det-wall-clock",
        }
        loc = results[0]["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("bad.py")
        assert loc["region"]["startLine"] >= 1
        assert loc["region"]["startColumn"] >= 1  # SARIF columns are 1-based

    def test_sarif_marks_suppressed_results(self, tmp_path):
        (tmp_path / "m.py").write_text(
            "import time\n"
            "t = time.time()  # repro-lint: disable=det-wall-clock -- stamp\n"
        )
        proc = run_cli("--format", "sarif", str(tmp_path))
        assert proc.returncode == 0
        results = json.loads(proc.stdout)["runs"][0]["results"]
        assert len(results) == 1
        assert results[0]["suppressions"] == [{"kind": "inSource"}]


class TestGithubOutput:
    def test_workflow_command_lines(self, bad_tree):
        proc = run_cli("--format", "github", str(bad_tree))
        assert proc.returncode == 1
        lines = [l for l in proc.stdout.splitlines() if l]
        assert len(lines) == 2
        assert all(l.startswith("::error file=") for l in lines)
        assert any("title=det-wall-clock" in l and "line=3" in l for l in lines)

    def test_clean_tree_emits_nothing(self, clean_tree):
        proc = run_cli("--format", "github", str(clean_tree))
        assert proc.returncode == 0
        assert proc.stdout.strip() == ""


class TestExploreSubcommand:
    def test_list_scenarios(self):
        proc = run_cli("explore", "--list-scenarios")
        assert proc.returncode == 0
        for name in ("allreduce", "shrink", "recv-livelock", "grow-double-sync"):
            assert name in proc.stdout

    def test_unknown_scenario_exits_two(self):
        proc = run_cli("explore", "--scenario", "no-such-scenario")
        assert proc.returncode == 2
        assert "unknown scenario" in proc.stderr

    def test_seeded_bug_trace_and_replay_roundtrip(self, tmp_path):
        trace = tmp_path / "trace.json"
        proc = run_cli(
            "explore",
            "--scenario",
            "recv-livelock",
            "--seed-bug",
            "--schedules",
            "4",
            "--trace-out",
            str(trace),
        )
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "livelock" in proc.stdout
        assert trace.exists()
        replay = run_cli("explore", "--replay", str(trace))
        assert replay.returncode == 0, replay.stdout + replay.stderr
        assert "bit-identically" in replay.stdout

    def test_clean_scenario_exits_zero(self):
        proc = run_cli(
            "explore", "--scenario", "allreduce", "--schedules", "3", "--json"
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload[0]["scenario"] == "allreduce"
        assert payload[0]["failure"] is None
