"""Meta-test: the fixture registry tracks the rule catalogue exactly.

Every registered rule id must have one positive (flags) and one negative
(clean) fixture in ``rule_fixtures.FIXTURES`` — so no rule can ship
without demonstrating both that it fires and that its recommended fix
silences it.
"""

from __future__ import annotations

import pytest

from repro.analysis import iter_rules
from repro.analysis.lint import get_rule, lint_file

from .rule_fixtures import FIXTURES

pytestmark = pytest.mark.analysis


def _lint(tmp_path, rule_id: str, source: str):
    # repro/models/ is outside every rule's module whitelist, so fixtures
    # exercise each rule's default behaviour.
    path = tmp_path / "repro" / "models" / "fixture.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return lint_file(path, rules=[get_rule(rule_id)])


def test_registry_matches_catalogue_exactly():
    registered = {rule.id for rule in iter_rules()}
    missing = registered - set(FIXTURES)
    stale = set(FIXTURES) - registered
    assert not missing, f"rules without fixtures: {sorted(missing)}"
    assert not stale, f"fixtures for unregistered rules: {sorted(stale)}"


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_positive_fixture_flags(rule_id, tmp_path):
    bad, _good = FIXTURES[rule_id]
    report = _lint(tmp_path, rule_id, bad)
    hits = [f for f in report.findings if f.rule_id == rule_id]
    assert hits, f"{rule_id}: positive fixture produced no finding"
    assert all(f.rule_id == rule_id for f in report.findings), (
        f"{rule_id}: stray findings "
        f"{[f.format() for f in report.findings if f.rule_id != rule_id]}"
    )


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_negative_fixture_clean(rule_id, tmp_path):
    _bad, good = FIXTURES[rule_id]
    report = _lint(tmp_path, rule_id, good)
    assert report.ok, (
        f"{rule_id}: negative fixture not clean: "
        f"{[f.format() for f in report.findings]}"
    )
