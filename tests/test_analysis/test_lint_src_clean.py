"""Tier-1 gate: the shipped trees must lint clean.

This is the in-process twin of ``python tools/lint.py src tools
benchmarks`` — plain pytest enforces the same invariant CI does, and a
failure prints the exact ``path:line:col rule-id message`` lines to fix
(or suppress with a justification, see docs/static_analysis.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_paths

pytestmark = pytest.mark.analysis

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"
GATED_TREES = (SRC, REPO / "tools", REPO / "benchmarks")


def test_src_tree_lints_clean():
    report = lint_paths([SRC])
    assert report.files_scanned > 50, "lint walked an unexpectedly small tree"
    assert report.ok, "lint findings in src/:\n" + "\n".join(
        f.format() for f in report.findings
    )


def test_tools_and_benchmarks_lint_clean():
    report = lint_paths([REPO / "tools", REPO / "benchmarks"])
    assert report.files_scanned > 10, "lint walked an unexpectedly small tree"
    assert report.ok, "lint findings in tools//benchmarks/:\n" + "\n".join(
        f.format() for f in report.findings
    )


def test_suppressions_in_src_are_audited():
    # Suppressed findings stay visible in the report: a rule being silenced
    # cannot disappear without trace. Guard against suppression creep by
    # requiring every suppression to carry a justification.
    report = lint_paths(list(GATED_TREES))
    for finding in report.suppressed:
        source = Path(finding.path).read_text().splitlines()
        file_text = "\n".join(source)
        assert "repro-lint:" in file_text
    # Every suppression comment in the gated trees must have a `--`
    # justification.
    for tree in GATED_TREES:
        for path in tree.rglob("*.py"):
            for lineno, line in enumerate(path.read_text().splitlines(), start=1):
                if "# repro-lint:" in line:
                    assert "--" in line.split("# repro-lint:", 1)[1], (
                        f"{path}:{lineno} suppression without justification"
                    )
