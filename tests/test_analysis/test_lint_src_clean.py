"""Tier-1 gate: the shipped source tree must lint clean.

This is the in-process twin of ``python tools/lint.py src`` — plain pytest
enforces the same invariant CI does, and a failure prints the exact
``path:line:col rule-id message`` lines to fix (or suppress with a
justification, see docs/static_analysis.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_paths

pytestmark = pytest.mark.analysis

SRC = Path(__file__).resolve().parents[2] / "src"


def test_src_tree_lints_clean():
    report = lint_paths([SRC])
    assert report.files_scanned > 50, "lint walked an unexpectedly small tree"
    assert report.ok, "lint findings in src/:\n" + "\n".join(
        f.format() for f in report.findings
    )


def test_suppressions_in_src_are_audited():
    # Suppressed findings stay visible in the report: a rule being silenced
    # cannot disappear without trace. Guard against suppression creep by
    # requiring every suppression to carry a justification.
    report = lint_paths([SRC])
    for finding in report.suppressed:
        source = Path(finding.path).read_text().splitlines()
        file_text = "\n".join(source)
        assert "repro-lint:" in file_text
    # Every suppression comment in src/ must have a `--` justification.
    for path in SRC.rglob("*.py"):
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if "# repro-lint:" in line:
                assert "--" in line.split("# repro-lint:", 1)[1], (
                    f"{path}:{lineno} suppression without justification"
                )
