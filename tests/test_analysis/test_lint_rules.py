"""Per-rule coverage: bad fixtures are flagged, good fixtures pass clean."""

from __future__ import annotations

import pytest

from repro.analysis.lint import lint_file

pytestmark = pytest.mark.analysis


def run_rule(tmp_path, rule_id: str, source: str, rel: str = "repro/models/mod.py"):
    """Lint ``source`` as if it lived at ``rel``, with only ``rule_id`` active."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    from repro.analysis.lint import get_rule

    return lint_file(path, rules=[get_rule(rule_id)])


def assert_flags(tmp_path, rule_id, source, count=1, **kwargs):
    report = run_rule(tmp_path, rule_id, source, **kwargs)
    assert [f.rule_id for f in report.findings] == [rule_id] * count, (
        f"expected {count} {rule_id} finding(s), got "
        f"{[f.format() for f in report.findings]}"
    )
    return report.findings


def assert_clean(tmp_path, rule_id, source, **kwargs):
    report = run_rule(tmp_path, rule_id, source, **kwargs)
    assert report.ok, f"unexpected findings: {[f.format() for f in report.findings]}"


class TestGlobalNumpyRandom:
    def test_flags_legacy_global_api(self, tmp_path):
        findings = assert_flags(
            tmp_path,
            "det-global-rng",
            "import numpy as np\nx = np.random.rand(3)\n",
        )
        assert findings[0].line == 2

    def test_flags_seed_and_full_module_name(self, tmp_path):
        assert_flags(
            tmp_path,
            "det-global-rng",
            "import numpy\nnumpy.random.seed(0)\n",
        )

    def test_flags_importfrom_of_global_api(self, tmp_path):
        assert_flags(
            tmp_path,
            "det-global-rng",
            "from numpy.random import shuffle\n",
        )

    def test_allows_generator_construction_surface(self, tmp_path):
        assert_clean(
            tmp_path,
            "det-global-rng",
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"
            "gen = np.random.Generator(np.random.PCG64(7))\n"
            "from numpy.random import default_rng, SeedSequence\n",
        )


class TestStdlibRandom:
    def test_flags_import_random(self, tmp_path):
        assert_flags(tmp_path, "det-stdlib-random", "import random\n")

    def test_flags_from_random_import(self, tmp_path):
        assert_flags(tmp_path, "det-stdlib-random", "from random import shuffle\n")

    def test_allows_other_modules(self, tmp_path):
        assert_clean(tmp_path, "det-stdlib-random", "import secrets\nimport math\n")


class TestUnseededDefaultRng:
    def test_flags_unseeded_construction(self, tmp_path):
        assert_flags(
            tmp_path,
            "det-unseeded-rng",
            "import numpy as np\nrng = np.random.default_rng()\n",
        )

    def test_allows_seeded_construction(self, tmp_path):
        assert_clean(
            tmp_path,
            "det-unseeded-rng",
            "import numpy as np\n"
            "a = np.random.default_rng(0)\n"
            "b = np.random.default_rng(seed=42)\n",
        )

    def test_ignores_unrelated_default_rng_methods(self, tmp_path):
        assert_clean(
            tmp_path,
            "det-unseeded-rng",
            "pool = factory.default_rng()\n",
        )


class TestWallClock:
    def test_flags_time_time(self, tmp_path):
        findings = assert_flags(
            tmp_path,
            "det-wall-clock",
            "import time\nstamp = time.time()\n",
        )
        assert "wall clock" in findings[0].message

    def test_flags_datetime_now(self, tmp_path):
        assert_flags(
            tmp_path,
            "det-wall-clock",
            "from datetime import datetime\nd = datetime.now()\n",
        )

    def test_allows_duration_clocks(self, tmp_path):
        assert_clean(
            tmp_path,
            "det-wall-clock",
            "import time\nt0 = time.perf_counter()\nt1 = time.monotonic()\n",
        )


class TestTensorBufferMutation:
    def test_flags_augassign_on_data(self, tmp_path):
        assert_flags(tmp_path, "ag-tensor-mutation", "w.data += g\n")

    def test_flags_subscript_assignment_on_grad(self, tmp_path):
        assert_flags(tmp_path, "ag-tensor-mutation", "w.grad[0] = 0.0\n")

    def test_flags_mutating_method_call(self, tmp_path):
        assert_flags(tmp_path, "ag-tensor-mutation", "w.data.fill(0.0)\n")

    def test_whitelisted_modules_exempt(self, tmp_path):
        for rel in ("repro/optim/mod.py", "repro/tensor/mod.py", "repro/perf/mod.py"):
            assert_clean(tmp_path, "ag-tensor-mutation", "w.data += g\n", rel=rel)

    def test_allows_rebinding_and_reads(self, tmp_path):
        assert_clean(
            tmp_path,
            "ag-tensor-mutation",
            "y = w.data + 1.0\nz = w.grad[0]\nw = w.detach()\n",
        )


class TestFloatEquality:
    def test_flags_computed_vs_float_literal(self, tmp_path):
        assert_flags(tmp_path, "ag-float-eq", "ok = np.dot(a, b) == 0.0\n")
        assert_flags(tmp_path, "ag-float-eq", "bad = 1.0 != (a * b)\n")

    def test_flags_negative_literal(self, tmp_path):
        assert_flags(tmp_path, "ag-float-eq", "ok = f(x) == -1.0\n")

    def test_allows_integer_and_sentinel_comparisons(self, tmp_path):
        assert_clean(
            tmp_path,
            "ag-float-eq",
            "n_zero = count(a) == 0\n"   # int literal: exact by contract
            "same = stored == 0.0\n"      # plain name: stored sentinel
            "close = np.isclose(f(x), 0.0)\n",
        )

    def test_allows_ordering_comparisons(self, tmp_path):
        assert_clean(tmp_path, "ag-float-eq", "big = f(x) > 0.0\n")


class TestRankDependentCollective:
    def test_flags_collective_under_rank_branch(self, tmp_path):
        findings = assert_flags(
            tmp_path,
            "dist-rank-collective",
            "def step(comm, x):\n"
            "    if comm.rank == 0:\n"
            "        return comm.allreduce(x)\n"
            "    return x\n",
        )
        assert ".allreduce()" in findings[0].message

    def test_flags_nested_while_on_rank(self, tmp_path):
        assert_flags(
            tmp_path,
            "dist-rank-collective",
            "def f(comm, rank):\n"
            "    while rank > 0:\n"
            "        comm.barrier()\n",
        )

    def test_allows_collective_outside_branch(self, tmp_path):
        assert_clean(
            tmp_path,
            "dist-rank-collective",
            "def step(comm, x):\n"
            "    g = comm.allreduce(x, op='mean')\n"
            "    if comm.rank == 0:\n"
            "        print(g)\n"
            "    return g\n",
        )

    def test_allows_p2p_under_rank_branch(self, tmp_path):
        assert_clean(
            tmp_path,
            "dist-rank-collective",
            "def f(comm, x):\n"
            "    if comm.rank == 0:\n"
            "        comm.send(1, x)\n",
        )


class TestCtrlFrameWithoutEpoch:
    def test_flags_untagged_ctrl_send(self, tmp_path):
        findings = assert_flags(
            tmp_path,
            "dist-epoch-tag",
            "import numpy as np\n"
            "def ping(comm, peer):\n"
            "    comm.send_ctrl(peer, np.array([1.0, 2.0]))\n",
        )
        assert "epoch" in findings[0].message

    def test_allows_epoch_in_payload_expression(self, tmp_path):
        assert_clean(
            tmp_path,
            "dist-epoch-tag",
            "import numpy as np\n"
            "def ping(comm, peer, epoch):\n"
            "    comm.send_ctrl(peer, np.array([1.0, float(epoch)]))\n",
        )

    def test_resolves_bare_name_payload_to_assignment(self, tmp_path):
        # the heartbeat idiom: payload built once, sent in a loop
        assert_clean(
            tmp_path,
            "dist-epoch-tag",
            "import numpy as np\n"
            "def beat(comm, peers, epoch):\n"
            "    hb = np.array([1.0, float(epoch), float(comm.rank)])\n"
            "    for peer in peers:\n"
            "        comm.send_ctrl(peer, hb)\n",
        )

    def test_flags_bare_name_payload_without_epoch(self, tmp_path):
        assert_flags(
            tmp_path,
            "dist-epoch-tag",
            "import numpy as np\n"
            "def beat(comm, peer):\n"
            "    frame = np.array([1.0, 2.0])\n"
            "    comm.send_ctrl(peer, frame)\n",
        )

    def test_allows_epoch_attribute(self, tmp_path):
        assert_clean(
            tmp_path,
            "dist-epoch-tag",
            "import numpy as np\n"
            "def ping(self, comm, peer):\n"
            "    comm.send_ctrl(peer, np.array([4.0, float(self.epoch)]))\n",
        )


class TestRecvWithoutTimeout:
    def test_flags_recv_with_source_only(self, tmp_path):
        findings = assert_flags(tmp_path, "dist-recv-timeout", "x = comm.recv(0)\n")
        assert "timeout" in findings[0].message

    def test_allows_explicit_timeout(self, tmp_path):
        assert_clean(
            tmp_path,
            "dist-recv-timeout",
            "x = comm.recv(0, timeout=5.0)\ny = comm.recv(1, 5.0)\n",
        )

    def test_allows_zero_arg_connection_recv(self, tmp_path):
        assert_clean(tmp_path, "dist-recv-timeout", "msg = conn.recv()\n")


class TestSpanLeak:
    def test_flags_bare_begin(self, tmp_path):
        findings = assert_flags(
            tmp_path,
            "obs-span-leak",
            "def f(tracer, comm, x):\n"
            "    span = tracer.begin('allreduce')\n"
            "    comm.allreduce(x)\n"
            "    tracer.end(span)\n",
        )
        assert "with tracer.span" in findings[0].message

    def test_flags_begin_on_tracer_attribute(self, tmp_path):
        assert_flags(
            tmp_path,
            "obs-span-leak",
            "def f(self, x):\n"
            "    s = self.tracer.begin('phase')\n"
            "    self.tracer.end(s)\n",
        )

    def test_allows_begin_with_finally_paired_end(self, tmp_path):
        assert_clean(
            tmp_path,
            "obs-span-leak",
            "def f(tracer, work):\n"
            "    span = tracer.begin('phase')\n"
            "    try:\n"
            "        work()\n"
            "    finally:\n"
            "        tracer.end(span)\n",
        )

    def test_except_handler_does_not_count_as_protection(self, tmp_path):
        assert_flags(
            tmp_path,
            "obs-span-leak",
            "def f(tracer, work):\n"
            "    span = tracer.begin('phase')\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        tracer.end(span)\n",
        )

    def test_begin_inside_finally_is_not_protected(self, tmp_path):
        assert_flags(
            tmp_path,
            "obs-span-leak",
            "def f(tracer, work):\n"
            "    try:\n"
            "        work()\n"
            "    finally:\n"
            "        s = tracer.begin('cleanup')\n",
        )

    def test_allows_span_context_manager(self, tmp_path):
        assert_clean(
            tmp_path,
            "obs-span-leak",
            "def f(tracer, comm, x):\n"
            "    with tracer.span('allreduce', bytes=x.nbytes):\n"
            "        comm.allreduce(x)\n",
        )

    def test_allows_unrelated_begin_methods(self, tmp_path):
        assert_clean(
            tmp_path,
            "obs-span-leak",
            "def f(transaction):\n"
            "    transaction.begin('tx')\n",
        )

    def test_obs_package_is_whitelisted(self, tmp_path):
        assert_clean(
            tmp_path,
            "obs-span-leak",
            "def f(tracer):\n"
            "    tracer.begin('internal')\n",
            rel="repro/obs/tracer.py",
        )
