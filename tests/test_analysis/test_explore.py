"""Schedule explorer coverage: determinism, bug rediscovery, replay.

The two seeded scenarios re-introduce the historical elastic bugs via
their fault hooks; the explorer must find each deterministically and the
recorded trace must replay bit-identically (same event fingerprint).
These are the issue's acceptance criteria for the dynamic prong.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.explore import (
    ReplayDivergence,
    explore,
    load_trace,
    replay_trace,
    run_schedule,
)
from repro.analysis.scenarios import SCENARIOS, get_scenario, scenario_names

pytestmark = [pytest.mark.analysis, pytest.mark.faults]


class TestDeterminism:
    def test_default_schedule_fingerprint_is_stable(self):
        sc = get_scenario("allreduce")
        a = run_schedule(sc)
        b = run_schedule(sc)
        assert a.status == "ok"
        assert a.fingerprint == b.fingerprint
        assert a.steps == b.steps

    def test_clean_scenarios_pass_under_bounded_exploration(self):
        # The CI smoke: every registered scenario, un-seeded, survives a
        # bounded exploration of its schedule space.
        for name in scenario_names():
            report = explore(get_scenario(name), max_schedules=4)
            assert not report.found_bug, (
                f"{name} failed clean exploration: "
                f"{report.failure.status} — {report.failure.detail}"
            )
            assert report.schedules >= 1


class TestRecvLivelockRediscovery:
    def test_seeded_bug_found_and_replays_bit_identically(self):
        sc = get_scenario("recv-livelock")
        report = explore(sc, seed_bug=True, max_schedules=10)
        assert report.found_bug
        assert report.failure.status == "livelock"
        assert report.failure_schedule == 1  # deterministic: always schedule 1
        # the waits-for explanation names both stuck ranks
        assert set(report.failure.waits_for) == {0, 1}
        assert "recv" in report.failure.waits_for[0]
        trace = report.failure.to_trace(sc.name, seed_bug=True)
        replayed = replay_trace(trace)
        assert replayed.fingerprint == report.failure.fingerprint
        assert replayed.status == "livelock"

    def test_unseeded_protocol_is_clean(self):
        report = explore(get_scenario("recv-livelock"), max_schedules=6)
        assert not report.found_bug


class TestDoubleSyncRediscovery:
    def test_seeded_bug_found_and_replays_bit_identically(self):
        sc = get_scenario("grow-double-sync")
        report = explore(sc, seed_bug=True, max_schedules=10)
        assert report.found_bug
        # The joiner's extra sync boundary wedges the grown group: crossed
        # payloads surface as an error on some rank and/or a deadlock with
        # the remaining ranks stuck in recv.
        assert report.failure.status in ("deadlock", "error")
        assert report.failure_schedule == 1
        assert report.failure.waits_for or report.failure.errors
        trace = sc and report.failure.to_trace(sc.name, seed_bug=True)
        replayed = replay_trace(trace)
        assert replayed.fingerprint == report.failure.fingerprint
        assert replayed.status == report.failure.status

    def test_unseeded_protocol_is_clean(self):
        report = explore(get_scenario("grow-double-sync"), max_schedules=6)
        assert not report.found_bug


class TestTraceFormat:
    def test_trace_roundtrips_through_json(self, tmp_path):
        sc = get_scenario("recv-livelock")
        report = explore(sc, seed_bug=True, max_schedules=4)
        trace = report.failure.to_trace(sc.name, seed_bug=True)
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(trace))
        loaded = load_trace(path)
        assert loaded["schema"] == "repro.explore.trace/v1"
        assert loaded["schedule"] == [c["chosen"] for c in loaded["choices"]]
        replayed = replay_trace(loaded)
        assert replayed.fingerprint == trace["fingerprint"]

    def test_load_trace_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ValueError):
            load_trace(path)

    def test_tampered_fingerprint_raises_replay_divergence(self):
        sc = get_scenario("recv-livelock")
        report = explore(sc, seed_bug=True, max_schedules=4)
        trace = report.failure.to_trace(sc.name, seed_bug=True)
        trace["fingerprint"] = "0" * 64
        with pytest.raises(ReplayDivergence):
            replay_trace(trace)


class TestScenarioRegistry:
    def test_catalogue_names_and_seedable_bugs(self):
        assert set(scenario_names()) == set(SCENARIOS)
        seeded = {n for n, s in SCENARIOS.items() if s.fault_hooks}
        assert seeded == {"recv-livelock", "grow-double-sync"}
        for sc in SCENARIOS.values():
            assert sc.world_size >= 2
            if sc.fault_hooks:
                assert sc.bug, f"{sc.name} seeds a fault but names no bug"

    def test_unknown_scenario_lists_available(self):
        with pytest.raises(KeyError, match="allreduce"):
            get_scenario("nope")

    def test_fault_hooks_restore_on_exit(self):
        import repro.distributed.resilient as resilient

        sc = get_scenario("recv-livelock")
        before = resilient._DISCARD_DEADLINE
        with sc.seeded(True):
            assert resilient._DISCARD_DEADLINE is False
        assert resilient._DISCARD_DEADLINE is before
