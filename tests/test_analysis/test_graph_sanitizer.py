"""GraphSanitizer: in-place-mutation detection and NaN/Inf origin tracking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    GraphSanitizer,
    InPlaceMutationError,
    NonFiniteError,
)
from repro.tensor import Tensor

pytestmark = pytest.mark.analysis


def _loss(w: Tensor) -> Tensor:
    return (w * w).sum()


class TestCleanRuns:
    def test_clean_forward_backward_passes(self):
        w = Tensor(np.arange(4.0), requires_grad=True)
        with GraphSanitizer() as sanitizer:
            loss = _loss(w)
            loss.backward()
        np.testing.assert_allclose(w.grad, 2.0 * np.arange(4.0))
        assert sanitizer.nodes_recorded > 0
        assert sanitizer.nodes_verified > 0
        assert sanitizer.mutations_detected == 0
        assert sanitizer.nonfinite_origins == []

    def test_gradients_match_unsanitized_run(self):
        w1 = Tensor(np.linspace(-1.0, 1.0, 8), requires_grad=True)
        w2 = Tensor(np.linspace(-1.0, 1.0, 8), requires_grad=True)
        _loss(w1).backward()
        with GraphSanitizer():
            _loss(w2).backward()
        np.testing.assert_array_equal(w1.grad, w2.grad)

    def test_sanitizer_is_off_outside_context(self):
        w = Tensor(np.ones(3), requires_grad=True)
        with GraphSanitizer() as sanitizer:
            pass
        loss = _loss(w)
        w.data += 1.0  # would raise inside the context
        loss.backward()
        assert sanitizer.nodes_recorded == 0


class TestMutationDetection:
    def test_untracked_mutation_raises_at_backward(self):
        w = Tensor(np.ones(4), requires_grad=True)
        with GraphSanitizer():
            loss = _loss(w)
            w.data += 100.0  # raw ndarray mutation: no bump_version()
            with pytest.raises(InPlaceMutationError, match="untracked"):
                loss.backward()

    def test_tracked_mutation_raises_at_backward(self):
        w = Tensor(np.ones(4), requires_grad=True)
        with GraphSanitizer():
            loss = _loss(w)
            w.data += 100.0
            w.bump_version()  # tracked mutation: counter moves
            with pytest.raises(InPlaceMutationError, match="tracked"):
                loss.backward()

    def test_diagnostic_names_recording_site(self):
        w = Tensor(np.ones(4), requires_grad=True)
        with GraphSanitizer():
            loss = _loss(w)  # RECORD-SITE
            w.data[0] = -5.0
            with pytest.raises(InPlaceMutationError) as excinfo:
                loss.backward()
        assert "test_graph_sanitizer.py" in str(excinfo.value)

    def test_mutation_after_backward_is_fine(self):
        w = Tensor(np.ones(4), requires_grad=True)
        with GraphSanitizer() as sanitizer:
            _loss(w).backward()
            w.data += 1.0  # graph fully consumed: legal by contract
        assert sanitizer.mutations_detected == 0

    def test_full_buffer_fingerprint_catches_single_element(self):
        # The default strided sample can miss a lone mutated element in a
        # large buffer; sample=0 hashes everything.
        n = 10_000
        w = Tensor(np.ones(n), requires_grad=True)
        with GraphSanitizer(sample=0):
            loss = _loss(w)
            w.data[n // 3] = 7.0
            with pytest.raises(InPlaceMutationError):
                loss.backward()

    def test_check_mutation_false_disables_tracking(self):
        w = Tensor(np.ones(4), requires_grad=True)
        with GraphSanitizer(check_mutation=False) as sanitizer:
            loss = _loss(w)
            w.data += 1.0
            loss.backward()  # no snapshots, no verification
        assert sanitizer.nodes_recorded == 0


class TestNonFinite:
    def test_nan_origin_raises_at_the_producing_op(self):
        x = Tensor(np.array([0.0, 1.0]), requires_grad=True)
        with GraphSanitizer():
            with pytest.raises(NonFiniteError) as excinfo:
                with np.errstate(divide="ignore"):
                    x.log()  # log(0) = -inf: first non-finite op
        message = str(excinfo.value)
        assert "Inf" in message
        assert "test_graph_sanitizer.py" in message

    def test_record_mode_collects_origins_and_continues(self):
        x = Tensor(np.array([0.0, 1.0]), requires_grad=True)
        with GraphSanitizer(nonfinite="record") as sanitizer:
            with np.errstate(divide="ignore"):
                y = x.log()
            z = y * 2.0  # already non-finite input: not a fresh origin
        assert len(sanitizer.nonfinite_origins) == 1
        origin = sanitizer.nonfinite_origins[0]
        assert origin.n_inf == 1 and origin.n_nan == 0
        assert origin.shape == (2,)
        assert "first produced" in origin.describe()
        assert np.isinf(z.data).any()

    def test_finite_runs_record_nothing(self):
        x = Tensor(np.linspace(0.1, 1.0, 5), requires_grad=True)
        with GraphSanitizer(nonfinite="record") as sanitizer:
            x.log().sum().backward()
        assert sanitizer.nonfinite_origins == []

    def test_check_finite_false_disables_origin_tracking(self):
        x = Tensor(np.array([0.0]), requires_grad=True)
        with GraphSanitizer(check_finite=False) as sanitizer:
            with np.errstate(divide="ignore"):
                x.log()
        assert sanitizer.nonfinite_origins == []


class TestLifecycle:
    def test_nested_sanitizers_rejected(self):
        with GraphSanitizer():
            with pytest.raises(RuntimeError, match="already active"):
                with GraphSanitizer():
                    pass

    def test_state_cleared_after_exception(self):
        with pytest.raises(ValueError):
            with GraphSanitizer():
                raise ValueError("boom")
        # Context unwound: a fresh sanitizer must be installable.
        with GraphSanitizer():
            pass

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            GraphSanitizer(nonfinite="explode")
        with pytest.raises(ValueError):
            GraphSanitizer(sample=-1)
