"""Lint engine mechanics: registry, suppressions, parse errors, reports."""

from __future__ import annotations

import json

import pytest

from repro.analysis.lint import (
    Finding,
    LintContext,
    Rule,
    Suppressions,
    get_rule,
    iter_rules,
    lint_file,
    lint_paths,
    rule_ids,
)

pytestmark = pytest.mark.analysis

EXPECTED_RULES = {
    "det-global-rng",
    "det-stdlib-random",
    "det-unseeded-rng",
    "det-wall-clock",
    "ag-tensor-mutation",
    "ag-float-eq",
    "dist-rank-collective",
    "dist-recv-timeout",
    "dist-rank-divergent-collective",
    "dist-collective-order",
    "dist-epoch-tag",
}


class TestRegistry:
    def test_builtin_catalogue_registered(self):
        assert EXPECTED_RULES <= set(rule_ids())

    def test_rules_carry_metadata(self):
        for rule in iter_rules():
            assert rule.id and rule.category and rule.description

    def test_get_rule_roundtrip(self):
        rule = get_rule("det-wall-clock")
        assert rule.id == "det-wall-clock"
        assert rule.category == "determinism"

    def test_iter_rules_sorted_and_stable(self):
        ids = [r.id for r in iter_rules()]
        assert ids == sorted(ids)
        assert ids == [r.id for r in iter_rules()]


class TestSuppressions:
    def test_per_line_disable_covers_only_that_line(self):
        src = "import time\nt = time.time()  # repro-lint: disable=det-wall-clock -- log stamp\nu = time.time()\n"
        sup = Suppressions.parse(src)
        hit = Finding("det-wall-clock", "f.py", 2, 4, "m")
        miss_line = Finding("det-wall-clock", "f.py", 3, 4, "m")
        miss_rule = Finding("det-global-rng", "f.py", 2, 4, "m")
        assert sup.covers(hit)
        assert not sup.covers(miss_line)
        assert not sup.covers(miss_rule)

    def test_file_disable_covers_every_line(self):
        src = "# repro-lint: file-disable=dist-recv-timeout -- caller owns deadline\nx = 1\n"
        sup = Suppressions.parse(src)
        assert sup.covers(Finding("dist-recv-timeout", "f.py", 40, 0, "m"))
        assert not sup.covers(Finding("det-wall-clock", "f.py", 40, 0, "m"))

    def test_all_wildcard_and_multi_rule_lists(self):
        src = (
            "a = 1  # repro-lint: disable=all\n"
            "b = 2  # repro-lint: disable=det-wall-clock,ag-float-eq -- both known\n"
        )
        sup = Suppressions.parse(src)
        assert sup.covers(Finding("anything", "f.py", 1, 0, "m"))
        assert sup.covers(Finding("ag-float-eq", "f.py", 2, 0, "m"))
        assert sup.covers(Finding("det-wall-clock", "f.py", 2, 0, "m"))
        assert not sup.covers(Finding("det-global-rng", "f.py", 2, 0, "m"))

    def test_justification_is_stripped_not_parsed(self):
        src = "x = 1  # repro-lint: disable=det-wall-clock -- because det-global-rng\n"
        sup = Suppressions.parse(src)
        assert not sup.covers(Finding("det-global-rng", "f.py", 1, 0, "m"))

    def test_multiline_statement_covered_from_any_line(self):
        # Regression: a disable comment on *any* physical line of a
        # multi-line statement covers the whole statement — findings anchor
        # at the expression's first line, which is where the comment often
        # cannot go (black puts the closing paren on its own line).
        import ast

        src = (
            "import time\n"
            "stamp = time.time(\n"
            ")  # repro-lint: disable=det-wall-clock -- provenance stamp\n"
        )
        sup = Suppressions.parse(src, ast.parse(src))
        assert sup.covers(Finding("det-wall-clock", "f.py", 2, 8, "m"))
        assert sup.covers(Finding("det-wall-clock", "f.py", 3, 0, "m"))
        assert not sup.covers(Finding("det-wall-clock", "f.py", 1, 0, "m"))

    def test_multiline_suppression_end_to_end(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "import numpy as np\n"
            "def ping(comm, peer):\n"
            "    comm.send_ctrl(\n"
            "        peer,\n"
            "        np.array([1.0, 2.0]),\n"
            "    )  # repro-lint: disable=dist-epoch-tag -- pre-epoch bootstrap frame\n"
        )
        report = lint_file(path)
        assert report.ok, [f.format() for f in report.findings]
        assert [f.rule_id for f in report.suppressed] == ["dist-epoch-tag"]

    def test_suppressed_findings_still_reported(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "import time\n"
            "t = time.time()  # repro-lint: disable=det-wall-clock -- stamp\n"
        )
        report = lint_file(path)
        assert report.ok
        assert [f.rule_id for f in report.suppressed] == ["det-wall-clock"]


class TestParseErrors:
    def test_syntax_error_becomes_lint_parse_finding(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        report = lint_file(path)
        assert not report.ok
        assert [f.rule_id for f in report.findings] == ["lint-parse"]
        assert "does not parse" in report.findings[0].message


class TestFindingFormat:
    def test_path_line_col_rule_message(self):
        f = Finding("det-wall-clock", "src/repro/x.py", 12, 4, "no wall clock")
        assert f.format() == "src/repro/x.py:12:4 det-wall-clock no wall clock"


class TestLintContext:
    def test_module_name_derived_from_repro_part(self, tmp_path):
        nested = tmp_path / "src" / "repro" / "optim" / "sgd.py"
        nested.parent.mkdir(parents=True)
        nested.write_text("x = 1\n")
        captured = {}

        class Probe(Rule):
            id = "probe"
            category = "test"
            description = "captures ctx"

            def check(self, ctx: LintContext):
                captured["module"] = ctx.module
                captured["in_optim"] = ctx.in_module(("repro.optim",))
                captured["in_tensor"] = ctx.in_module(("repro.tensor",))
                return ()

        lint_file(nested, rules=[Probe()])
        assert captured["module"] == "repro.optim.sgd"
        assert captured["in_optim"]
        assert not captured["in_tensor"]

    def test_file_outside_repro_has_no_module(self, tmp_path):
        path = tmp_path / "script.py"
        path.write_text("w.data += 1\n")
        # Outside any repro package the mutation whitelist cannot apply.
        report = lint_file(path, rules=[get_rule("ag-tensor-mutation")])
        assert [f.rule_id for f in report.findings] == ["ag-tensor-mutation"]


class TestLintPaths:
    def test_walks_directories_and_skips_caches(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("import random\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "b.py").write_text("import random\n")
        (tmp_path / "pkg" / "note.txt").write_text("import random\n")
        report = lint_paths([tmp_path])
        assert report.files_scanned == 1
        assert [f.rule_id for f in report.findings] == ["det-stdlib-random"]

    def test_select_restricts_rules(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text("import random\nimport time\nt = time.time()\n")
        report = lint_paths([path], select=["det-wall-clock"])
        assert [f.rule_id for f in report.findings] == ["det-wall-clock"]

    def test_report_json_roundtrip(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text("import random\n")
        report = lint_paths([path])
        payload = json.loads(report.to_json())
        assert payload["files_scanned"] == 1
        assert payload["finding_count"] == 1
        assert payload["findings"][0]["rule"] == "det-stdlib-random"
        assert payload["findings"][0]["line"] == 1
