"""Unit coverage for the project call graph (`repro.analysis.callgraph`).

Resolution is deliberately under-approximate: a call resolves only when
the target is unambiguous (same module, explicit from-import, unique
project-wide, or a self/alias method). These tests pin both directions —
what must resolve, and what must *stay* unresolved so the dataflow rules
never follow an edge the runtime might not take.
"""

from __future__ import annotations

import pytest

from repro.analysis.callgraph import (
    COLLECTIVES,
    P2P_PRIMITIVES,
    Project,
    body_nodes,
    ordered_calls,
)
from repro.analysis.lint import _parse_one

pytestmark = pytest.mark.analysis


def make_project(tmp_path, files: dict[str, str]) -> Project:
    """Build a Project from {relative path: source} pairs on disk."""
    contexts = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        ctx, _sup, err = _parse_one(path)
        assert err is None, f"fixture {rel} does not parse: {err}"
        contexts.append(ctx)
    return Project(contexts)


def fn(project: Project, suffix: str):
    """Look up the unique FunctionNode whose qualname ends with ``suffix``."""
    matches = [f for q, f in project.functions.items() if q.endswith(suffix)]
    assert len(matches) == 1, f"{suffix}: {sorted(project.functions)}"
    return matches[0]


class TestIndexing:
    def test_functions_methods_and_module_scopes_indexed(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/alpha.py": (
                    "def top(x):\n"
                    "    return x\n"
                    "class Box:\n"
                    "    def get(self):\n"
                    "        return top(1)\n"
                ),
            },
        )
        quals = set(project.functions)
        assert any(q.endswith("alpha.top") for q in quals)
        assert any(q.endswith("alpha.Box.get") for q in quals)
        assert any(q.endswith("<module>") for q in quals)
        box_get = fn(project, "Box.get")
        assert box_get.class_name == "Box"
        assert box_get.params[0] == "self"
        assert fn(project, "alpha.top").class_name is None

    def test_module_scope_excludes_function_bodies(self, tmp_path):
        # Regression: the synthetic <module> node must not walk into defs —
        # their statements run on *their* call, not at import time. The
        # original bug double-reported every branch (once via the function,
        # once via <module>) and invented phantom module-level callers.
        project = make_project(
            tmp_path,
            {
                "repro/beta.py": (
                    "setup()\n"
                    "def worker(comm, x):\n"
                    "    comm.allreduce(x)\n"
                    "    inner(x)\n"
                    "teardown()\n"
                ),
            },
        )
        module = fn(project, "<module>")
        names = [
            c.func.id for c in ordered_calls(module.node)
        ]
        assert names == ["setup", "teardown"]
        worker = fn(project, "beta.worker")
        attrs = [
            c.func.attr
            for c in ordered_calls(worker.node)
            if hasattr(c.func, "attr")
        ]
        assert attrs == ["allreduce"]

    def test_body_nodes_skips_nested_defs_at_every_level(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/gamma.py": (
                    "def outer(x):\n"
                    "    y = x + 1\n"
                    "    def closure(z):\n"
                    "        return hidden(z)\n"
                    "    if y:\n"
                    "        class Local:\n"
                    "            def m(self):\n"
                    "                return deeper()\n"
                    "    return y\n"
                ),
            },
        )
        outer = fn(project, "gamma.outer")
        import ast

        seen = {
            n.func.id
            for n in body_nodes(outer.node)
            if isinstance(n, ast.Call) and isinstance(n.func, ast.Name)
        }
        assert "hidden" not in seen
        assert "deeper" not in seen


class TestResolution:
    def test_same_module_bare_name(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/mod.py": (
                    "def helper(x):\n"
                    "    return x\n"
                    "def step(x):\n"
                    "    return helper(x)\n"
                ),
            },
        )
        sites = project.call_sites(fn(project, "mod.step"))
        assert [t.name for s in sites for t in s.targets] == ["helper"]

    def test_from_import_across_modules(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/util.py": "def shared(x):\n    return x\n",
                "repro/main.py": (
                    "from repro.util import shared as sh\n"
                    "def run(x):\n"
                    "    return sh(x)\n"
                ),
            },
        )
        sites = project.call_sites(fn(project, "main.run"))
        targets = [t.qualname for s in sites for t in s.targets]
        assert len(targets) == 1 and targets[0].endswith("util.shared")

    def test_unique_project_wide_fallback_and_ambiguity(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/one.py": "def unique_fn(x):\n    return x\n"
                "def dup(x):\n    return x\n",
                "repro/two.py": "def dup(x):\n    return x\n",
                "repro/caller.py": (
                    "def go(x):\n"
                    "    unique_fn(x)\n"  # unique across the project: resolves
                    "    dup(x)\n"  # two candidates, no import: must NOT resolve
                ),
            },
        )
        sites = project.call_sites(fn(project, "caller.go"))
        resolved = {s.callee_name: [t.qualname for t in s.targets] for s in sites}
        assert len(resolved["unique_fn"]) == 1
        assert resolved["dup"] == []

    def test_self_method_with_base_class_walk(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/cls.py": (
                    "class Base:\n"
                    "    def inherited(self):\n"
                    "        return 1\n"
                    "class Child(Base):\n"
                    "    def own(self):\n"
                    "        return 2\n"
                    "    def run(self):\n"
                    "        self.own()\n"
                    "        self.inherited()\n"
                ),
            },
        )
        sites = project.call_sites(fn(project, "Child.run"))
        targets = [t.qualname for s in sites for t in s.targets]
        assert any(q.endswith("Child.own") for q in targets)
        assert any(q.endswith("Base.inherited") for q in targets)

    def test_module_alias_attribute_call(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/pkg/worker.py": "def job(x):\n    return x\n",
                "repro/pkg/driver.py": (
                    "import repro.pkg.worker as w\n"
                    "def run(x):\n"
                    "    return w.job(x)\n"
                ),
            },
        )
        sites = project.call_sites(fn(project, "driver.run"))
        targets = [t.qualname for s in sites for t in s.targets]
        assert len(targets) == 1 and targets[0].endswith("worker.job")

    def test_collectives_and_p2p_never_resolve(self, tmp_path):
        # Even when a user function shadows the primitive's name, the
        # protocol event stays atomic — summaries count the *event*, not
        # whatever happens to share its spelling.
        body = "".join(f"    comm.{p}(x)\n" for p in sorted(COLLECTIVES))
        body += "".join(f"    comm.{p}(x)\n" for p in sorted(P2P_PRIMITIVES))
        project = make_project(
            tmp_path,
            {
                "repro/shadow.py": (
                    "def allreduce(x):\n"
                    "    return x\n"
                    "def step(comm, x):\n"
                    f"{body}"
                ),
            },
        )
        sites = project.call_sites(fn(project, "shadow.step"))
        assert all(s.targets == () for s in sites)

    def test_callers_of_reverse_index(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "repro/rev.py": (
                    "def leaf(x):\n"
                    "    return x\n"
                    "def a(x):\n"
                    "    return leaf(x)\n"
                    "def b(x):\n"
                    "    return leaf(x)\n"
                ),
            },
        )
        leaf = fn(project, "rev.leaf")
        callers = {s.caller.name for s in project.callers_of(leaf.qualname)}
        assert callers == {"a", "b"}
        assert project.callers_of("no.such.fn") == []
