"""DeprecationWarning scoping: ours fail tests, third-party stay ignored.

``pyproject.toml`` orders ``filterwarnings`` so the blanket third-party
ignore is overridden by ``error::DeprecationWarning:repro.*`` (later pytest
filters take precedence) — our own deprecations must surface instead of
accumulating silently.
"""

from __future__ import annotations

import warnings

import pytest

pytestmark = pytest.mark.analysis


def test_own_deprecation_is_an_error():
    with pytest.raises(DeprecationWarning):
        warnings.warn_explicit(
            "repro-internal deprecation",
            DeprecationWarning,
            "src/repro/utils/example.py",
            1,
            module="repro.utils.example",
        )


def test_third_party_deprecation_stays_ignored():
    warnings.warn_explicit(
        "third-party deprecation",
        DeprecationWarning,
        "site-packages/thirdparty/mod.py",
        1,
        module="thirdparty.mod",
    )
