"""Interprocedural rule coverage: the dataflow-lifted distributed rules.

The acceptance fixture from the verifier issue lives here: a collective
guarded by ``if rank == 0`` but reached through **two** call levels must
be flagged by ``dist-rank-divergent-collective`` with a witness chain,
while congruent both-arm protocols stay clean.
"""

from __future__ import annotations

import pytest

from repro.analysis import lint_paths
from repro.analysis.lint import get_rule, lint_file

pytestmark = pytest.mark.analysis


def run_rules(tmp_path, rule_ids, files: dict[str, str]):
    """Lint ``files`` (path -> source) with only ``rule_ids`` active."""
    root = tmp_path / "proj"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return lint_paths([root], select=list(rule_ids))


def run_rule(tmp_path, rule_id, source):
    path = tmp_path / "repro" / "models" / "mod.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return lint_file(path, rules=[get_rule(rule_id)])


class TestRankDivergentCollective:
    def test_acceptance_two_call_levels(self, tmp_path):
        # The issue's acceptance criterion: `if rank == 0: allreduce`
        # hidden behind two calls is found, with the chain in the message.
        report = run_rule(
            tmp_path,
            "dist-rank-divergent-collective",
            "def deep(comm, x):\n"
            "    comm.allreduce(x)\n"
            "def helper(comm, x):\n"
            "    deep(comm, x)\n"
            "def step(comm, x):\n"
            "    rank = comm.rank\n"
            "    if rank == 0:\n"
            "        helper(comm, x)\n",
        )
        assert [f.rule_id for f in report.findings] == [
            "dist-rank-divergent-collective"
        ]
        msg = report.findings[0].message
        assert "helper -> deep -> .allreduce()" in msg

    def test_cross_file_chain(self, tmp_path):
        report = run_rules(
            tmp_path,
            ["dist-rank-divergent-collective"],
            {
                "repro/lib.py": (
                    "def sync(comm, x):\n"
                    "    comm.barrier()\n"
                ),
                "repro/main.py": (
                    "from repro.lib import sync\n"
                    "def step(comm, x):\n"
                    "    if comm.rank == 0:\n"
                    "        sync(comm, x)\n"
                ),
            },
        )
        assert len(report.findings) == 1
        assert "sync -> .barrier()" in report.findings[0].message
        assert report.findings[0].path.endswith("main.py")

    def test_taint_through_returned_rank(self, tmp_path):
        report = run_rule(
            tmp_path,
            "dist-rank-divergent-collective",
            "def who_am_i(comm):\n"
            "    return comm.rank\n"
            "def go(comm, x):\n"
            "    me = who_am_i(comm)\n"
            "    if me == 0:\n"
            "        helper(comm, x)\n"
            "def helper(comm, x):\n"
            "    comm.allreduce(x)\n",
        )
        assert len(report.findings) == 1

    def test_congruent_arms_stay_clean(self, tmp_path):
        report = run_rule(
            tmp_path,
            "dist-rank-divergent-collective",
            "def deep(comm, x):\n"
            "    comm.allreduce(x)\n"
            "def helper(comm, x):\n"
            "    deep(comm, x)\n"
            "def step(comm, x):\n"
            "    if comm.rank == 0:\n"
            "        helper(comm, x)\n"
            "    else:\n"
            "        deep(comm, x)\n",
        )
        assert report.ok, [f.format() for f in report.findings]

    def test_rank_free_branch_stays_clean(self, tmp_path):
        report = run_rule(
            tmp_path,
            "dist-rank-divergent-collective",
            "def helper(comm, x):\n"
            "    comm.allreduce(x)\n"
            "def step(comm, x, warmup):\n"
            "    if warmup:\n"
            "        helper(comm, x)\n",
        )
        assert report.ok

    def test_while_on_rank_with_collective_chain(self, tmp_path):
        report = run_rule(
            tmp_path,
            "dist-rank-divergent-collective",
            "def pump(comm, x):\n"
            "    comm.allgather(x)\n"
            "def drain(comm, x):\n"
            "    while comm.rank < 2:\n"
            "        pump(comm, x)\n",
        )
        assert len(report.findings) == 1

    def test_lexically_direct_site_left_to_syntactic_rule(self, tmp_path):
        # `if rank == 0: comm.allreduce(x)` is dist-rank-collective's beat;
        # the interprocedural rule must not double-report it.
        source = (
            "def step(comm, x):\n"
            "    if comm.rank == 0:\n"
            "        comm.allreduce(x)\n"
        )
        deep = run_rule(tmp_path, "dist-rank-divergent-collective", source)
        assert deep.ok
        syntactic = run_rule(tmp_path, "dist-rank-collective", source)
        assert len(syntactic.findings) == 1


class TestCollectiveOrderDivergence:
    def test_reordered_arms_flagged_once_at_branch(self, tmp_path):
        report = run_rule(
            tmp_path,
            "dist-collective-order",
            "def head(comm, x):\n"
            "    comm.allreduce(x)\n"
            "    comm.broadcast(x, root=0)\n"
            "def tail(comm, x):\n"
            "    comm.broadcast(x, root=0)\n"
            "    comm.allreduce(x)\n"
            "def step(comm, x):\n"
            "    if comm.rank == 0:\n"
            "        head(comm, x)\n"
            "    else:\n"
            "        tail(comm, x)\n",
        )
        assert [f.rule_id for f in report.findings] == ["dist-collective-order"]
        assert "allreduce" in report.findings[0].message
        assert "broadcast" in report.findings[0].message

    def test_same_sequence_via_different_chains_clean(self, tmp_path):
        report = run_rule(
            tmp_path,
            "dist-collective-order",
            "def direct(comm, x):\n"
            "    comm.allreduce(x)\n"
            "    comm.barrier()\n"
            "def via(comm, x):\n"
            "    inner(comm, x)\n"
            "def inner(comm, x):\n"
            "    comm.allreduce(x)\n"
            "    comm.barrier()\n"
            "def step(comm, x):\n"
            "    if comm.rank == 0:\n"
            "        direct(comm, x)\n"
            "    else:\n"
            "        via(comm, x)\n",
        )
        assert report.ok, [f.format() for f in report.findings]


class TestEpochTagInterprocedural:
    def test_untagged_payload_through_relay(self, tmp_path):
        report = run_rule(
            tmp_path,
            "dist-epoch-tag",
            "import numpy as np\n"
            "def relay(comm, peer, frame):\n"
            "    comm.send_ctrl(peer, frame)\n"
            "def bad(comm, peer):\n"
            "    relay(comm, peer, np.array([1.0, 2.0]))\n",
        )
        assert len(report.findings) == 1
        assert "relay" in report.findings[0].message

    def test_epoch_arg_through_relay_clean(self, tmp_path):
        report = run_rule(
            tmp_path,
            "dist-epoch-tag",
            "import numpy as np\n"
            "def relay(comm, peer, frame):\n"
            "    comm.send_ctrl(peer, frame)\n"
            "def good(comm, peer, epoch):\n"
            "    relay(comm, peer, np.array([1.0, float(epoch)]))\n",
        )
        assert report.ok, [f.format() for f in report.findings]

    def test_unresolved_caller_stays_silent(self, tmp_path):
        # A parameter-derived payload with no resolvable caller cannot be
        # judged; the under-approximation must stay silent, not guess.
        report = run_rule(
            tmp_path,
            "dist-epoch-tag",
            "def forward(comm, peer, frame):\n"
            "    comm.send_ctrl(peer, frame)\n",
        )
        assert report.ok


class TestSingleFileProjectParity:
    def test_lint_file_runs_project_rules(self, tmp_path):
        # lint_file builds a one-file project, so fixtures and ad-hoc CLI
        # runs see the same interprocedural findings as lint_paths.
        path = tmp_path / "repro" / "solo.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            "def deep(comm, x):\n"
            "    comm.allreduce(x)\n"
            "def step(comm, x):\n"
            "    if comm.rank == 0:\n"
            "        deep(comm, x)\n"
        )
        report = lint_file(
            path, rules=[get_rule("dist-rank-divergent-collective")]
        )
        assert len(report.findings) == 1
