"""CommSanitizer: fingerprint wire format, congruence, e2e mismatch capture."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import CollectiveMismatchError, CollectiveRecord, CommSanitizer
from repro.distributed import (
    FaultEvent,
    FaultPlan,
    MismatchedCollectiveInjector,
    WorkerFailure,
    run_threaded,
)

pytestmark = pytest.mark.analysis

WORLD = 3


class TestCollectiveRecord:
    def _record(self, **overrides):
        base = dict(
            seq=7,
            kind="allreduce",
            op="mean",
            root=-1,
            shape=(4, 5),
            dtype="float64",
            site="src/repro/train.py:42",
        )
        base.update(overrides)
        return CollectiveRecord(**base)

    def test_encode_decode_roundtrip(self):
        from repro.analysis.comm_sanitizer import _stable_hash

        record = self._record()
        frame = record.encode()
        # decode resolves dtype hashes through the name table the sanitizer
        # accumulates; emulate one entry for the round trip.
        back = CollectiveRecord.decode(frame, {_stable_hash("float64"): "float64"})
        assert back == record

    def test_congruent_with_self(self):
        assert self._record().congruent_with(self._record())

    @pytest.mark.parametrize(
        "override",
        [
            {"seq": 8},
            {"kind": "broadcast"},
            {"op": "sum"},
            {"root": 0},
            {"shape": (4, 6)},
            {"dtype": "float32"},
        ],
    )
    def test_incongruent_on_any_field(self, override):
        assert not self._record().congruent_with(self._record(**override))

    def test_call_site_not_part_of_congruence(self):
        a = self._record(site="a.py:1")
        b = self._record(site="b.py:2")
        assert a.congruent_with(b)

    def test_describe_names_kind_op_shape_site(self):
        text = self._record().describe()
        for token in ("allreduce", "op=mean", "shape=(4, 5)", "src/repro/train.py:42"):
            assert token in text


def _train_step(comm, rank, steps=3):
    """A congruent data-parallel step sequence under the sanitizer."""
    sane = CommSanitizer(comm, timeout=10.0)
    out = []
    for step in range(steps):
        grad = np.full(8, float(rank + step))
        out.append(sane.allreduce(grad, op="mean"))
    sane.barrier()
    gathered = sane.allgather(np.array([float(rank)]))
    return out, [float(g[0]) for g in gathered]


def _mismatched_step(comm, rank, plan):
    sane = MismatchedCollectiveInjector(CommSanitizer(comm, timeout=2.0), plan)
    for _ in range(3):
        sane.allreduce(np.ones(4), op="sum")  # MISMATCH-SITE
    return "finished"


class TestCongruentPassThrough:
    def test_collectives_produce_backend_results(self):
        results = run_threaded(_train_step, WORLD)
        for out, gathered in results:
            for step, reduced in enumerate(out):
                expected = np.mean([r + step for r in range(WORLD)])
                np.testing.assert_allclose(reduced, np.full(8, expected))
            assert gathered == [float(r) for r in range(WORLD)]

    def test_records_kept_for_post_mortem(self):
        def worker(comm, rank):
            sane = CommSanitizer(comm)
            sane.allreduce(np.zeros(2))
            sane.barrier()
            return [r.kind for r in sane.records], sane.seq

        for kinds, seq in run_threaded(worker, WORLD):
            assert kinds == ["allreduce", "barrier"]
            assert seq == 2


class TestMismatchDetection:
    def test_injected_mismatch_raises_within_one_step(self):
        plan = FaultPlan(
            [FaultEvent(kind="mismatch", rank=1, index=1, op="collective")]
        )
        with pytest.raises((CollectiveMismatchError, WorkerFailure)) as excinfo:
            run_threaded(_mismatched_step, WORLD, args=(plan,), timeout=60.0)
        message = str(excinfo.value)
        # The diagnostic replaces a world-wide deadlock: it names the
        # diverging collective pair and BOTH call sites.
        assert "diverged" in message
        assert "allreduce" in message and "broadcast" in message
        # Both sides' call sites: the victim's swapped call and the
        # survivor's congruent call both originate at MISMATCH-SITE, and
        # the sanitizer attributes them to this test file, not to the
        # distributed runtime internals.
        assert message.count("test_comm_sanitizer.py") >= 2
        assert "faults.py" not in message

    def test_mismatch_on_first_collective(self):
        plan = FaultPlan(
            [FaultEvent(kind="mismatch", rank=0, index=0, op="collective")]
        )
        with pytest.raises((CollectiveMismatchError, WorkerFailure)) as excinfo:
            run_threaded(_mismatched_step, WORLD, args=(plan,), timeout=60.0)
        assert "collective #0" in str(excinfo.value)

    def test_silent_peer_reported_as_divergence(self):
        def worker(comm, rank):
            sane = CommSanitizer(comm, timeout=1.0)
            if rank == 0:
                return "quit early"  # issues no collective at all
            sane.allreduce(np.ones(2))  # repro-lint note: rank asymmetry is the point
            return "reduced"

        with pytest.raises((CollectiveMismatchError, WorkerFailure)) as excinfo:
            run_threaded(worker, 2, timeout=30.0)
        message = str(excinfo.value)
        assert "issued no collective" in message
        assert "rank 0" in message

    def test_mismatch_through_resilient_stack(self):
        # The production stacking order: sanitizer ABOVE the resilience
        # layer. A wedged hop then surfaces as RankFailure (the resilient
        # layer escalates after its retry budget), not CommTimeoutError —
        # the sanitizer must still convert the divergence into a named
        # mismatch, and the runner must prefer that diagnosis over the
        # wedge symptom raised on other ranks.
        from repro.distributed import ResilientCommunicator

        plan = FaultPlan(
            [FaultEvent(kind="mismatch", rank=2, index=3, op="collective")]
        )

        def worker(comm, rank):
            sane = MismatchedCollectiveInjector(
                CommSanitizer(ResilientCommunicator(comm), timeout=2.0), plan
            )
            for i in range(6):
                sane.allreduce(np.array([float(rank + i)]), op="sum")
            return "finished"

        with pytest.raises((CollectiveMismatchError, WorkerFailure)) as excinfo:
            run_threaded(worker, WORLD, timeout=60.0)
        message = str(excinfo.value)
        assert "collective #3" in message
        assert "allreduce" in message and "broadcast" in message

    def test_shape_mismatch_detected(self):
        def worker(comm, rank):
            sane = CommSanitizer(comm, timeout=5.0)
            payload = np.ones(4 if rank == 0 else 5)
            sane.allreduce(payload)
            return "done"

        with pytest.raises((CollectiveMismatchError, WorkerFailure)) as excinfo:
            run_threaded(worker, 2, timeout=30.0)
        message = str(excinfo.value)
        assert "shape=(4,)" in message and "shape=(5,)" in message


class TestDelegation:
    def test_p2p_and_metadata_pass_through(self):
        def worker(comm, rank):
            sane = CommSanitizer(comm)
            assert sane.size == comm.size
            assert sane.rank == rank
            if rank == 0:
                sane.send(1, np.array([3.25]))
                return 0.0
            if rank == 1:
                return float(sane.recv(0, timeout=10.0)[0])
            return 0.0

        results = run_threaded(worker, WORLD)
        assert results[1] == 3.25
