"""Elastic restore: a checkpoint directory written at world=N must restore
at any world size.

- ranks whose own file exists restore it *bit-exactly* (parameters,
  optimizer moments, RNG stream, step);
- new ranks borrow a donor's parameters/optimizer/step but derive a fresh
  deterministic RNG stream (never the donor's — two ranks on one stream
  would correlate the global batch);
- corrupt files degrade to the donor path instead of failing the restore.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import VQMC, CheckpointCallback, CheckpointCorruptError, restore_elastic
from repro.models import MADE
from repro.optim import Adam
from repro.samplers import AutoregressiveSampler


def make_vqmc(small_tim, seed=7):
    model = MADE(6, hidden=8, rng=np.random.default_rng(3))
    return VQMC(
        model, small_tim, AutoregressiveSampler(),
        Adam(model.parameters(), lr=0.01), seed=seed,
    )


def _write_world(small_tim, directory, world_size, steps=4):
    """Simulate a world of ``world_size`` ranks checkpointing into one
    directory: each rank trains its own trainer (different RNG streams,
    same lock-step parameters are not required for this test's purposes)
    and writes rank-suffixed files."""
    trainers = []
    for rank in range(world_size):
        vqmc = make_vqmc(small_tim, seed=100 + rank)
        for _ in range(steps):
            vqmc.step(8)
        ckpt = CheckpointCallback(directory, every=1, keep_last=3, rank=rank)
        ckpt.write(vqmc, vqmc.global_step)
        trainers.append(vqmc)
    return trainers


class TestOwnFileBitExact:
    @pytest.mark.parametrize("world", [2, 4])
    def test_same_world_restore_is_bit_exact(self, small_tim, tmp_path, world):
        trainers = _write_world(small_tim, tmp_path, world)
        for rank in range(world):
            fresh = make_vqmc(small_tim)
            info = restore_elastic(
                fresh, tmp_path, rank=rank, world_size=world, seed=9,
            )
            assert info["exact"] and info["source_rank"] == rank
            ref, out = trainers[rank], fresh
            assert np.array_equal(
                ref.model.flat_parameters(), out.model.flat_parameters()
            )
            assert out.global_step == ref.global_step
            # RNG stream continues bit-exactly: next draws agree
            assert np.array_equal(
                ref.rng.standard_normal(4), out.rng.standard_normal(4)
            )

    def test_shrink_world4_to_world2(self, small_tim, tmp_path):
        trainers = _write_world(small_tim, tmp_path, 4)
        for rank in range(2):
            fresh = make_vqmc(small_tim)
            info = restore_elastic(fresh, tmp_path, rank=rank, world_size=2)
            assert info["exact"]
            assert np.array_equal(
                trainers[rank].model.flat_parameters(),
                fresh.model.flat_parameters(),
            )


class TestGrowDonors:
    def test_grow_world4_to_world6_new_ranks_get_donor_state(
        self, small_tim, tmp_path
    ):
        trainers = _write_world(small_tim, tmp_path, 4)
        step = trainers[0].global_step
        for rank in (4, 5):
            fresh = make_vqmc(small_tim)
            info = restore_elastic(
                fresh, tmp_path, rank=rank, world_size=6, seed=9,
            )
            assert not info["exact"]
            donor = info["source_rank"]
            assert donor == rank % 4
            assert np.array_equal(
                trainers[donor].model.flat_parameters(),
                fresh.model.flat_parameters(),
            )
            assert fresh.global_step == step
            # ...but NOT the donor's RNG stream
            assert not np.array_equal(
                trainers[donor].rng.standard_normal(4),
                fresh.rng.standard_normal(4),
            )

    def test_new_ranks_get_distinct_deterministic_streams(self, small_tim, tmp_path):
        _write_world(small_tim, tmp_path, 4)
        a = make_vqmc(small_tim)
        b = make_vqmc(small_tim)
        restore_elastic(a, tmp_path, rank=4, world_size=6, seed=9)
        restore_elastic(b, tmp_path, rank=5, world_size=6, seed=9)
        draws_a = a.rng.standard_normal(8)
        draws_b = b.rng.standard_normal(8)
        assert not np.array_equal(draws_a, draws_b)  # disjoint streams
        # deterministic: restoring the same rank again replays the stream
        c = make_vqmc(small_tim)
        restore_elastic(c, tmp_path, rank=4, world_size=6, seed=9)
        assert np.array_equal(draws_a, c.rng.standard_normal(8))


class TestDegradation:
    def test_corrupt_own_file_falls_back_to_donor(self, small_tim, tmp_path):
        trainers = _write_world(small_tim, tmp_path, 2)
        step = trainers[1].global_step
        own = tmp_path / f"checkpoint_{step:08d}.rank001.npz"
        own.write_bytes(own.read_bytes()[:100])  # truncate
        fresh = make_vqmc(small_tim)
        info = restore_elastic(fresh, tmp_path, rank=1, world_size=2, seed=9)
        assert not info["exact"] and info["source_rank"] == 0

    def test_at_step_pins_the_restore(self, small_tim, tmp_path):
        vqmc = make_vqmc(small_tim)
        ckpt = CheckpointCallback(tmp_path, every=1, keep_last=5, rank=0)
        for _ in range(3):
            vqmc.step(8)
            ckpt.write(vqmc, vqmc.global_step)
        fresh = make_vqmc(small_tim)
        info = restore_elastic(fresh, tmp_path, rank=0, world_size=1, at_step=2)
        assert info["step"] == 2 and fresh.global_step == 2

    def test_empty_directory_raises_typed_error(self, small_tim, tmp_path):
        with pytest.raises(CheckpointCorruptError, match="no verifiable"):
            restore_elastic(make_vqmc(small_tim), tmp_path, rank=0, world_size=2)

    def test_rank_range_validated(self, small_tim, tmp_path):
        with pytest.raises(ValueError, match="out of range"):
            restore_elastic(make_vqmc(small_tim), tmp_path, rank=2, world_size=2)
