"""Numerical-stability guards: ratio clipping and the divergence skip."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import VQMC
from repro.core.energy import MAX_LOG_RATIO, local_energies
from repro.hamiltonians import TransverseFieldIsing
from repro.models import RBM, MADE
from repro.optim import SGD
from repro.samplers import MetropolisSampler, AutoregressiveSampler


class TestRatioClipping:
    def test_collapsed_rbm_gives_finite_local_energies(self, small_tim):
        """An RBM with huge couplings produces astronomically large amplitude
        ratios; the clip must keep local energies finite."""
        rbm = RBM(6, rng=np.random.default_rng(0))
        rbm.fc.weight.data[...] = 500.0  # pathological
        x = np.zeros((4, 6))
        x[:, 0] = 1.0
        local = local_energies(rbm, small_tim, x)
        assert np.all(np.isfinite(local))
        assert np.all(np.abs(local) < np.exp(MAX_LOG_RATIO) * 100)

    def test_clip_inactive_for_normal_models(self, small_tim, rng):
        """For a healthy model the clip must not alter the exact values."""
        model = MADE(6, hidden=8, rng=rng)
        states = np.asarray(
            ((np.arange(64)[:, None] >> np.arange(5, -1, -1)) & 1), dtype=float
        )
        mat = small_tim.to_dense()
        from repro.tensor.tensor import no_grad

        with no_grad():
            psi = np.exp(model.log_psi(states).data)
        expect = (mat @ psi) / psi
        assert np.allclose(local_energies(model, small_tim, states), expect)


class TestDivergenceGuard:
    def test_nonfinite_gradient_skips_update(self, small_tim, rng):
        model = MADE(6, hidden=8, rng=rng)
        vqmc = VQMC(
            model, small_tim, AutoregressiveSampler(),
            SGD(model.parameters(), lr=0.1), seed=1,
        )
        before = model.flat_parameters()

        # Monkeypatch the gradient path to return NaN once.
        original = model.log_psi_and_grads

        def poisoned(x):
            lp, o = original(x)
            o = o.copy()
            o[0, 0] = np.nan
            return lp, o

        model.log_psi_and_grads = poisoned
        from repro.core.vqmc import VQMCConfig

        vqmc.config = VQMCConfig(gradient_mode="per_sample")
        vqmc.step(batch_size=16)
        assert np.array_equal(model.flat_parameters(), before)
        assert vqmc.diverged_steps == 1

    def test_unstable_rbm_training_stays_finite(self):
        """The Table-2 failure case: RBM+MCMC+SGD on a dense disordered TIM.
        Training may fail to converge (it does for the paper too at scale)
        but must never produce non-finite parameters."""
        tim = TransverseFieldIsing.random(30, seed=30)
        model = RBM(30, rng=np.random.default_rng(0))
        vqmc = VQMC(
            model, tim, MetropolisSampler(n_chains=2),
            SGD(model.parameters(), lr=0.1), seed=2,
        )
        vqmc.run(30, batch_size=64)
        assert np.all(np.isfinite(model.flat_parameters()))
