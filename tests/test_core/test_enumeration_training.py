"""Training with exact-enumeration sampling: the lowest-variance reference.

Using the EnumerationSampler inside VQMC gives exact multinomial batches
from πθ — useful as the 'perfect sampler' control when attributing training
problems to sampling vs optimisation. These tests pin that workflow.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import VQMC
from repro.exact import ground_state
from repro.models import MADE, RBM
from repro.optim import Adam, SGD, StochasticReconfiguration
from repro.samplers import AutoregressiveSampler, EnumerationSampler


class TestEnumerationTraining:
    def test_enumeration_vqmc_converges(self, small_tim, rng):
        model = MADE(6, hidden=10, rng=rng)
        vqmc = VQMC(
            model, small_tim, EnumerationSampler(),
            SGD(model.parameters(), lr=0.1),
            sr=StochasticReconfiguration(), seed=1,
        )
        vqmc.run(150, batch_size=256)
        exact = ground_state(small_tim).energy
        assert abs(vqmc.evaluate(1024).mean - exact) / abs(exact) < 0.03

    def test_enumeration_works_for_rbm_too(self, small_tim, rng):
        """The enumeration sampler gives RBMs exact samples — isolating the
        architecture from MCMC quality."""
        model = RBM(6, rng=rng)
        vqmc = VQMC(
            model, small_tim, EnumerationSampler(),
            Adam(model.parameters(), lr=0.02), seed=2,
        )
        first = vqmc.step(batch_size=256).stats.mean
        vqmc.run(80, batch_size=256)
        assert vqmc.evaluate(512).mean < first

    def test_auto_and_enumeration_training_agree_statistically(self, small_tim):
        """Same protocol, two exact samplers — final energies must agree
        within Monte-Carlo noise (they sample the identical distribution)."""

        def train(sampler):
            model = MADE(6, hidden=10, rng=np.random.default_rng(5))
            vqmc = VQMC(
                model, small_tim, sampler, Adam(model.parameters(), lr=0.02),
                seed=3,
            )
            vqmc.run(120, batch_size=256)
            return vqmc.evaluate(2048)

        e_auto = train(AutoregressiveSampler())
        e_enum = train(EnumerationSampler())
        tol = 6 * max(e_auto.sem, e_enum.sem, 0.02)
        assert abs(e_auto.mean - e_enum.mean) < tol
