"""VQMC driver: convergence to exact ground states, callbacks, config."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import History, HittingTime, ProgressPrinter, VQMC, VQMCConfig
from repro.core.callbacks import StopTraining
from repro.exact import brute_force_max_cut, ground_state
from repro.hamiltonians import MaxCut, TransverseFieldIsing
from repro.models import MADE, RBM
from repro.optim import SGD, Adam, StochasticReconfiguration
from repro.samplers import AutoregressiveSampler, MetropolisSampler


class TestConvergence:
    def test_made_auto_adam_reaches_ground_state(self, small_tim, rng):
        model = MADE(6, hidden=12, rng=rng)
        vqmc = VQMC(
            model, small_tim, AutoregressiveSampler(),
            Adam(model.parameters(), lr=0.02), seed=1,
        )
        vqmc.run(250, batch_size=256)
        exact = ground_state(small_tim).energy
        final = vqmc.evaluate(batch_size=1024)
        assert final.mean < exact + 0.35 * abs(exact) / 6  # within a few %
        # Variational bound holds in expectation; a batch mean may dip below
        # λ_min by Monte-Carlo noise, bounded by a few standard errors.
        assert final.mean > exact - 5 * final.sem

    def test_sr_converges_faster_than_plain_sgd(self, small_tim, rng):
        def train(with_sr):
            model = MADE(6, hidden=12, rng=np.random.default_rng(5))
            sr = StochasticReconfiguration() if with_sr else None
            vqmc = VQMC(
                model, small_tim, AutoregressiveSampler(),
                SGD(model.parameters(), lr=0.1), sr=sr, seed=2,
            )
            vqmc.run(60, batch_size=256)
            return vqmc.evaluate(512).mean

        assert train(True) < train(False) + 0.15

    def test_rbm_mcmc_improves_energy(self, small_tim, rng):
        model = RBM(6, rng=rng)
        sampler = MetropolisSampler(n_chains=2, burn_in=100)
        vqmc = VQMC(model, small_tim, sampler, SGD(model.parameters(), lr=0.05), seed=3)
        first = vqmc.step(batch_size=256).stats.mean
        vqmc.run(60, batch_size=256)
        final = vqmc.evaluate(512).mean
        assert final < first

    def test_maxcut_finds_optimum_small(self, rng):
        ham = MaxCut.random(8, seed=11)
        opt, _ = brute_force_max_cut(ham.adjacency)
        model = MADE(8, hidden=14, rng=rng)
        vqmc = VQMC(
            model, ham, AutoregressiveSampler(), Adam(model.parameters(), lr=0.05),
            sr=None, seed=4,
        )
        vqmc.run(200, batch_size=256)
        x = AutoregressiveSampler().sample(model, 512, np.random.default_rng(0))
        best_cut = ham.cut_value(x).max()
        assert best_cut >= opt - 1e-9  # samples include the optimal cut

    def test_variational_lower_bound_never_violated(self, small_tim, rng):
        """Every evaluation batch mean stays ≥ λ_min up to Monte-Carlo SEM."""
        model = MADE(6, hidden=10, rng=rng)
        vqmc = VQMC(
            model, small_tim, AutoregressiveSampler(),
            Adam(model.parameters()), seed=5,
        )
        exact = ground_state(small_tim).energy
        results = vqmc.run(80, batch_size=256)
        for r in results:
            assert r.stats.mean > exact - 5 * max(r.stats.sem, 1e-12)


class TestStepMechanics:
    def test_gradient_modes_agree(self, small_tim):
        """'autograd' and 'per_sample' must produce the same update."""

        def one_step(mode):
            model = MADE(6, hidden=8, rng=np.random.default_rng(9))
            vqmc = VQMC(
                model, small_tim, AutoregressiveSampler(),
                SGD(model.parameters(), lr=0.1), seed=7,
                config=VQMCConfig(batch_size=128, gradient_mode=mode),
            )
            vqmc.step()
            return model.flat_parameters()

        assert np.allclose(one_step("autograd"), one_step("per_sample"), atol=1e-10)

    def test_step_result_fields(self, small_tim, rng):
        model = MADE(6, rng=rng)
        vqmc = VQMC(
            model, small_tim, AutoregressiveSampler(), Adam(model.parameters()), seed=1
        )
        r = vqmc.step(batch_size=64)
        assert r.step == 1
        assert r.stats.count == 64
        assert r.grad_norm > 0
        assert r.step_time > 0
        assert np.isnan(r.acceptance)  # AUTO has no acceptance rate
        r2 = vqmc.step(batch_size=64)
        assert r2.step == 2

    def test_mismatched_sizes_rejected(self, small_tim, rng):
        model = MADE(5, rng=rng)
        with pytest.raises(ValueError):
            VQMC(model, small_tim, AutoregressiveSampler(), Adam(model.parameters()))

    def test_sr_requires_per_sample_grads(self, small_tim, rng):
        class NoGrads(MADE):
            has_per_sample_grads = False

        model = NoGrads(6, rng=rng)
        with pytest.raises(TypeError):
            VQMC(
                model, small_tim, AutoregressiveSampler(),
                SGD(model.parameters(), lr=0.1),
                sr=StochasticReconfiguration(),
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            VQMCConfig(batch_size=0)
        with pytest.raises(ValueError):
            VQMCConfig(gradient_mode="magic")


class TestCallbacks:
    def test_history_records_all_steps(self, small_tim, rng):
        model = MADE(6, rng=rng)
        vqmc = VQMC(
            model, small_tim, AutoregressiveSampler(), Adam(model.parameters()), seed=1
        )
        hist = History()
        vqmc.run(10, batch_size=64, callbacks=[hist])
        assert len(hist) == 10
        arrays = hist.as_arrays()
        assert arrays["energy"].shape == (10,)
        assert np.all(arrays["std"] >= 0)

    def test_hitting_time_stops_early(self, rng):
        ham = MaxCut.random(8, seed=11)
        model = MADE(8, hidden=14, rng=rng)
        vqmc = VQMC(
            model, ham, AutoregressiveSampler(), Adam(model.parameters(), lr=0.05),
            seed=4,
        )
        target = 3.0  # trivially reachable cut
        cb = HittingTime(
            target, score_fn=lambda x: ham.cut_value(x).mean(), eval_batch_size=128
        )
        results = vqmc.run(100, batch_size=128, callbacks=[cb])
        assert cb.hit_step is not None
        assert cb.hit_time is not None and cb.hit_time > 0
        assert len(results) == cb.hit_step

    def test_hitting_time_default_score_is_negative_energy(self, small_tim, rng):
        model = MADE(6, rng=rng)
        vqmc = VQMC(
            model, small_tim, AutoregressiveSampler(), Adam(model.parameters()), seed=2
        )
        cb = HittingTime(target=-1e9, eval_batch_size=64)  # any energy qualifies... no:
        # target -1e9 means score (-E) must exceed -1e9 — immediate hit.
        vqmc.run(5, batch_size=64, callbacks=[cb])
        assert cb.hit_step == 1

    def test_progress_printer(self, small_tim, rng, capsys):
        import io

        model = MADE(6, rng=rng)
        vqmc = VQMC(
            model, small_tim, AutoregressiveSampler(), Adam(model.parameters()), seed=1
        )
        buf = io.StringIO()
        vqmc.run(4, batch_size=32, callbacks=[ProgressPrinter(every=2, stream=buf)])
        out = buf.getvalue()
        assert "step" in out and "E =" in out

    def test_stop_training_exception_ends_run_gracefully(self, small_tim, rng):
        class StopAt3:
            def on_run_begin(self, v):
                pass

            def on_run_end(self, v):
                self.ended = True

            def on_step(self, step, result):
                if step == 3:
                    raise StopTraining

        model = MADE(6, rng=rng)
        vqmc = VQMC(
            model, small_tim, AutoregressiveSampler(), Adam(model.parameters()), seed=1
        )
        cb = StopAt3()
        results = vqmc.run(100, batch_size=32, callbacks=[cb])
        assert len(results) == 3
        assert cb.ended


class TestPhaseClock:
    def test_phase_clock_records_sections(self, small_tim, rng):
        model = MADE(6, rng=rng)
        vqmc = VQMC(
            model, small_tim, AutoregressiveSampler(), Adam(model.parameters()),
            seed=1,
        )
        vqmc.run(3, batch_size=32)
        for phase in ("sample", "energy", "update"):
            assert vqmc.clock.counts[phase] == 3
            assert vqmc.clock.totals[phase] >= 0.0
        # The gradient phase is split around the energy evaluation (the
        # amplitude forward pass is shared), so it records two sections/step.
        assert vqmc.clock.counts["gradient"] == 6
        assert vqmc.clock.totals["gradient"] >= 0.0
        assert "sample" in vqmc.clock.summary()
