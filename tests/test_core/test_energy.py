"""Local energies and gradient estimators against exact linear algebra."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.energy import (
    energy_statistics,
    grad_from_per_sample,
    grad_via_autograd,
    local_energies,
)
from repro.hamiltonians.base import bits_to_index
from repro.models import MADE, RBM
from tests.conftest import enumerate_states


class TestLocalEnergy:
    def test_matches_exact_matvec(self, small_tim, rng):
        """l(x) = (Hψ)(x)/ψ(x) computed through the sparse-row interface must
        equal the dense matrix-vector product."""
        model = MADE(6, hidden=9, rng=rng)
        states = enumerate_states(6)
        mat = small_tim.to_dense()
        from repro.tensor.tensor import no_grad

        with no_grad():
            psi = np.exp(model.log_psi(states).data)
        expect = (mat @ psi) / psi
        got = local_energies(model, small_tim, states)
        assert np.allclose(got, expect, atol=1e-8)

    def test_rbm_model_too(self, small_tim, rng):
        model = RBM(6, rng=rng, init_std=0.2)
        states = enumerate_states(6)
        mat = small_tim.to_dense()
        from repro.tensor.tensor import no_grad

        with no_grad():
            log_psi = model.log_psi(states).data
        psi = np.exp(log_psi - log_psi.max())
        expect = (mat @ psi) / psi
        got = local_energies(model, small_tim, states)
        assert np.allclose(got, expect, atol=1e-6)

    def test_diagonal_hamiltonian_needs_no_model_eval(self, small_maxcut, rng):
        model = MADE(8, rng=rng)
        x = (rng.random((5, 8)) < 0.5).astype(float)
        got = local_energies(model, small_maxcut, x)
        assert np.allclose(got, small_maxcut.diagonal(x))

    def test_expected_local_energy_is_rayleigh_quotient(self, small_tim, rng):
        """Σ_x π(x) l(x) = ⟨ψ,Hψ⟩/⟨ψ,ψ⟩ exactly (Eq. 1⇔Eq. 3)."""
        model = MADE(6, hidden=7, rng=rng)
        states = enumerate_states(6)
        probs = model.exact_distribution()
        local = local_energies(model, small_tim, states)
        mat = small_tim.to_dense()
        from repro.tensor.tensor import no_grad

        with no_grad():
            psi = np.exp(model.log_psi(states).data)
        rayleigh = psi @ mat @ psi / (psi @ psi)
        assert (probs * local).sum() == pytest.approx(rayleigh, abs=1e-8)

    def test_eigenvector_gives_zero_variance(self, small_tim, rng):
        """Eq. 4: at an exact eigenvector the local energy is constant.
        We verify with a model that exactly encodes the ground state? A MADE
        can't represent it exactly; instead check on H = identity-like case:
        a diagonal Hamiltonian with a constant diagonal."""
        from repro.hamiltonians import IsingQUBO

        ham = IsingQUBO(np.zeros((6, 6)), const=2.5)
        model = MADE(6, rng=rng)
        x = (rng.random((50, 6)) < 0.5).astype(float)
        local = local_energies(model, ham, x)
        assert np.allclose(local, 2.5)

    def test_validation(self, small_tim, rng):
        model = MADE(6, rng=rng)
        with pytest.raises(ValueError):
            local_energies(model, small_tim, np.zeros((2, 5)))
        other = MADE(5, rng=rng)
        with pytest.raises(ValueError):
            local_energies(other, small_tim, np.zeros((2, 6)))


class TestEnergyStatistics:
    def test_values(self):
        stats = energy_statistics(np.array([1.0, 2.0, 3.0, 4.0]))
        assert stats.mean == pytest.approx(2.5)
        assert stats.std == pytest.approx(np.std([1, 2, 3, 4]))
        assert stats.sem == pytest.approx(stats.std / 2.0)
        assert stats.count == 4
        assert stats.variance == pytest.approx(stats.std**2)

    def test_str(self):
        assert "E =" in str(energy_statistics(np.ones(4)))


class TestGradientEstimators:
    def test_autograd_equals_per_sample(self, small_tim, rng):
        model = MADE(6, hidden=8, rng=rng)
        x = (rng.random((32, 6)) < 0.5).astype(float)
        local = local_energies(model, small_tim, x)

        model.zero_grad()
        grad_via_autograd(model, x, local)
        g_auto = model.flat_grad()

        _, o = model.log_psi_and_grads(x)
        g_ps = grad_from_per_sample(o, local)
        assert np.allclose(g_auto, g_ps, atol=1e-10)

    def test_gradient_matches_exact_rayleigh_derivative(self, small_tim, rng):
        """The population gradient (full enumeration, Eq. 5) must equal the
        finite-difference derivative of the Rayleigh quotient."""
        model = MADE(6, hidden=5, rng=rng)
        states = enumerate_states(6)
        mat = small_tim.to_dense()

        def rayleigh(flat):
            model.set_flat_parameters(flat)
            from repro.tensor.tensor import no_grad

            with no_grad():
                psi = np.exp(model.log_psi(states).data)
            return psi @ mat @ psi / (psi @ psi)

        theta0 = model.flat_parameters()
        probs = model.exact_distribution()
        local = local_energies(model, small_tim, states)
        _, o = model.log_psi_and_grads(states)
        # Population gradient: 2 E_π[(l - L) O]
        L = probs @ local
        g_pop = 2.0 * ((probs * (local - L)) @ o)

        eps = 1e-6
        for k in rng.choice(theta0.size, size=8, replace=False):
            theta = theta0.copy()
            theta[k] += eps
            hi = rayleigh(theta)
            theta[k] -= 2 * eps
            lo = rayleigh(theta)
            num = (hi - lo) / (2 * eps)
            assert num == pytest.approx(g_pop[k], abs=1e-5)
        model.set_flat_parameters(theta0)

    def test_rbm_gradient_consistency(self, small_tim, rng):
        model = RBM(6, rng=rng, init_std=0.2)
        x = (rng.random((16, 6)) < 0.5).astype(float)
        local = local_energies(model, small_tim, x)
        model.zero_grad()
        grad_via_autograd(model, x, local)
        g_auto = model.flat_grad()
        _, o = model.log_psi_and_grads(x)
        assert np.allclose(g_auto, grad_from_per_sample(o, local), atol=1e-10)
