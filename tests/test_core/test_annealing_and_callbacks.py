"""Annealing schedules, early stopping, gradient clipping, MCMC proposals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import VQMC, History
from repro.core.annealing import AnnealingCallback, AnnealingSchedule, transverse_driver
from repro.core.callbacks import EarlyStopping, StopTraining
from repro.core.vqmc import VQMCConfig
from repro.exact import brute_force_max_cut, ground_state
from repro.hamiltonians import MaxCut
from repro.models import MADE
from repro.optim import Adam, SGD
from repro.samplers import AutoregressiveSampler, MetropolisSampler


class TestAnnealingSchedule:
    def test_endpoints(self, small_maxcut):
        sched = AnnealingSchedule(small_maxcut, total_steps=100)
        h0 = sched.hamiltonian(0)
        h1 = sched.hamiltonian(100)
        assert np.allclose(h0.alpha, 1.0)  # pure driver at s=0
        assert np.allclose(h0.couplings, 0.0)
        assert np.allclose(h1.alpha, small_maxcut.alpha)
        assert np.allclose(h1.couplings, small_maxcut.couplings)
        assert h1.offset == small_maxcut.offset

    def test_s_monotone_and_clamped(self, small_maxcut):
        sched = AnnealingSchedule(small_maxcut, total_steps=50, power=2.0)
        ss = [sched.s(t) for t in range(0, 120, 10)]
        assert all(b >= a for a, b in zip(ss, ss[1:]))
        assert sched.s(200) == 1.0

    def test_driver_ground_state_is_uniform(self):
        driver = transverse_driver(5)
        gs = ground_state(driver)
        probs = gs.probabilities
        assert np.allclose(probs, 1 / 32, atol=1e-9)
        assert gs.energy == pytest.approx(-5.0)

    def test_validation(self, small_maxcut):
        with pytest.raises(ValueError):
            AnnealingSchedule(small_maxcut, total_steps=0)
        with pytest.raises(ValueError):
            AnnealingSchedule(small_maxcut, total_steps=10, power=0.0)
        with pytest.raises(ValueError):
            AnnealingSchedule(
                small_maxcut, total_steps=10, driver=transverse_driver(3)
            )

    def test_annealed_training_solves_maxcut(self, rng):
        ham = MaxCut.random(10, seed=3)
        opt_cut, _ = brute_force_max_cut(ham.adjacency)
        sched = AnnealingSchedule(ham, total_steps=80)
        model = MADE(10, hidden=16, rng=rng)
        vqmc = VQMC(
            model, sched.hamiltonian(0), AutoregressiveSampler(),
            Adam(model.parameters(), lr=0.05), seed=1,
        )
        vqmc.run(160, batch_size=256, callbacks=[AnnealingCallback(vqmc, sched)])
        # After the ramp the trainer must be on the true target.
        assert vqmc.hamiltonian.offset == ham.offset
        x = AutoregressiveSampler().sample(model, 512, np.random.default_rng(0))
        assert ham.cut_value(x).max() >= opt_cut - 1e-9


class TestEarlyStopping:
    def test_stops_on_plateau(self, small_tim, rng):
        model = MADE(6, rng=rng)
        vqmc = VQMC(
            model, small_tim, AutoregressiveSampler(),
            SGD(model.parameters(), lr=1e-9),  # effectively frozen → plateau
            seed=1,
        )
        cb = EarlyStopping(patience=5, min_delta=1e-3, window=3)
        results = vqmc.run(200, batch_size=64, callbacks=[cb])
        assert cb.stopped_at is not None
        assert len(results) < 200

    def test_does_not_stop_while_improving(self, small_tim, rng):
        model = MADE(6, rng=rng)
        vqmc = VQMC(
            model, small_tim, AutoregressiveSampler(),
            Adam(model.parameters(), lr=0.02), seed=1,
        )
        cb = EarlyStopping(patience=25, min_delta=1e-6, window=5)
        results = vqmc.run(40, batch_size=256, callbacks=[cb])
        assert len(results) == 40

    def test_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)


class TestGradClipping:
    def test_clipped_norm_respected(self, small_tim, rng):
        model = MADE(6, rng=rng)
        vqmc = VQMC(
            model, small_tim, AutoregressiveSampler(),
            SGD(model.parameters(), lr=0.1), seed=1,
            config=VQMCConfig(max_grad_norm=0.01),
        )
        result = vqmc.step(batch_size=128)
        assert result.grad_norm <= 0.01 + 1e-12

    def test_small_gradients_untouched(self, small_tim, rng):
        def final_params(clip):
            model = MADE(6, rng=np.random.default_rng(3))
            vqmc = VQMC(
                model, small_tim, AutoregressiveSampler(),
                SGD(model.parameters(), lr=0.1), seed=1,
                config=VQMCConfig(max_grad_norm=clip),
            )
            vqmc.step(batch_size=128)
            return model.flat_parameters()

        assert np.allclose(final_params(1e9), final_params(None))

    def test_validation(self):
        with pytest.raises(ValueError):
            VQMCConfig(max_grad_norm=0.0)


class TestProposalVariants:
    def test_multi_flip_changes_up_to_k_bits(self, rng):
        from repro.models import RBM

        model = RBM(10, rng=rng, init_std=0.1)
        sampler = MetropolisSampler(
            n_chains=4, burn_in=0, proposal="multi_flip", flips=3
        )
        sampler.persistent = True
        x1 = sampler.sample(model, 4, rng)
        assert x1.shape == (4, 10)

    def test_exchange_preserves_magnetisation(self, rng):
        from repro.models import RBM

        model = RBM(10, rng=rng, init_std=0.1)
        sampler = MetropolisSampler(
            n_chains=3, burn_in=50, proposal="exchange", persistent=True
        )
        x1 = sampler.sample(model, 3, rng)
        counts1 = x1.sum(axis=1)
        x2 = sampler.sample(model, 3, rng)
        counts2 = x2.sum(axis=1)
        # Exchange moves conserve the number of 1-bits per chain.
        assert np.array_equal(np.sort(counts1), np.sort(counts2))

    def test_multi_flip_still_samples_correctly(self, rng):
        from repro.models import RBM
        from repro.samplers.diagnostics import total_variation_distance

        model = RBM(4, hidden=3, rng=rng, init_std=0.4)
        sampler = MetropolisSampler(
            n_chains=4, burn_in=300, proposal="multi_flip", flips=2
        )
        x = sampler.sample(model, 20000, rng)
        codes = (x @ (2 ** np.arange(3, -1, -1))).astype(int)
        tv = total_variation_distance(codes, model.exact_distribution())
        assert tv < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            MetropolisSampler(proposal="teleport")
        with pytest.raises(ValueError):
            MetropolisSampler(proposal="multi_flip", flips=0)
