"""Hypothesis property tests for the core VQMC machinery."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.energy import (
    energy_statistics,
    grad_from_per_sample,
    local_energies,
)
from repro.hamiltonians import TransverseFieldIsing
from repro.hamiltonians.base import index_to_bits
from repro.models import MADE
from repro.tensor.tensor import no_grad


@settings(max_examples=12, deadline=None)
@given(st.integers(2, 6), st.integers(0, 10**6), st.integers(0, 10**6))
def test_local_energy_matches_dense_matvec(n, ham_seed, model_seed):
    """Property over random instances AND random models: the sparse-row
    local-energy engine equals (Hψ)/ψ computed with the dense matrix."""
    ham = TransverseFieldIsing.random(n, seed=ham_seed)
    model = MADE(n, hidden=5, rng=np.random.default_rng(model_seed))
    states = index_to_bits(np.arange(2**n), n)
    mat = ham.to_dense()
    with no_grad():
        psi = np.exp(model.log_psi(states).data)
    expect = (mat @ psi) / psi
    got = local_energies(model, ham, states)
    assert np.allclose(got, expect, atol=1e-8)


@settings(max_examples=12, deadline=None)
@given(st.integers(2, 6), st.integers(0, 10**6))
def test_population_energy_within_spectrum(n, seed):
    """E_π[l(x)] is a Rayleigh quotient ⇒ λ_min ≤ E ≤ λ_max, always."""
    ham = TransverseFieldIsing.random(n, seed=seed)
    model = MADE(n, hidden=4, rng=np.random.default_rng(seed + 1))
    states = index_to_bits(np.arange(2**n), n)
    probs = model.exact_distribution()
    local = local_energies(model, ham, states)
    energy = float(probs @ local)
    vals = np.linalg.eigvalsh(ham.to_dense())
    assert vals[0] - 1e-9 <= energy <= vals[-1] + 1e-9


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10**6))
def test_gradient_invariant_to_energy_shift(seed):
    """Adding a constant to H (offset·I) must leave the gradient estimator
    unchanged — the covariance form subtracts the mean."""
    rng = np.random.default_rng(seed)
    o = rng.normal(size=(32, 7))
    local = rng.normal(size=32)
    g1 = grad_from_per_sample(o, local)
    g2 = grad_from_per_sample(o, local + 123.456)
    assert np.allclose(g1, g2, atol=1e-10)


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=2,
        max_size=64,
    )
)
def test_energy_statistics_consistency(values):
    stats = energy_statistics(np.array(values))
    assert stats.mean == pytest.approx(np.mean(values))
    assert stats.std == pytest.approx(np.std(values), abs=1e-9)
    assert stats.count == len(values)
    assert stats.sem <= stats.std + 1e-12


@settings(max_examples=10, deadline=None)
@given(st.integers(2, 5), st.integers(0, 10**6), st.integers(1, 12))
def test_made_normalisation_is_universal(n, seed, hidden):
    """Σ_x πθ(x) = 1 for every (n, hidden, seed) — structural, not tuned."""
    model = MADE(n, hidden=hidden, rng=np.random.default_rng(seed))
    for p in model.parameters():
        p.data *= 3.0  # arbitrary rescale must not break normalisation
    assert model.exact_distribution().sum() == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=10, deadline=None)
@given(st.integers(2, 5), st.integers(0, 10**6))
def test_per_sample_grads_consistent_with_autograd_property(n, seed):
    rng = np.random.default_rng(seed)
    model = MADE(n, hidden=6, rng=rng)
    x = (rng.random((3, n)) < 0.5).astype(float)
    _, o = model.log_psi_and_grads(x)
    for b in range(x.shape[0]):
        model.zero_grad()
        model.log_psi(x[b : b + 1]).sum().backward()
        assert np.allclose(o[b], model.flat_grad(), atol=1e-9)
