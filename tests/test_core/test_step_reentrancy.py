"""Step-loop re-entrancy (StepDriver) and the RNG-sharing / teardown fixes.

Three regressions pinned here, all found while making training servable:

- ``VQMC.evaluate()`` used to draw from the *training* stream, so an
  interleaved evaluation silently changed every subsequent training step
  (and broke the bit-exact checkpoint-resume contract). Evaluation now
  owns a derived fork (``eval_rng``), carried through checkpoints.
- One raising callback in the teardown path used to starve all remaining
  callbacks of ``on_crash``/``on_run_end`` (no flight dump, lost run
  footers) and could mask the original training exception.
- ``_combine_stats`` divided by zero on an empty local-energy batch; it
  now returns the well-defined :meth:`EnergyStats.empty` sentinel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    VQMC,
    History,
    StepDriver,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.callbacks import Callback, StopTraining
from repro.core.energy import EnergyStats, energy_statistics
from repro.core.vqmc import derive_eval_rng
from repro.models import MADE
from repro.optim import Adam
from repro.samplers import AutoregressiveSampler


def make_vqmc(small_tim, seed=7, model_seed=3):
    model = MADE(6, hidden=8, rng=np.random.default_rng(model_seed))
    return VQMC(
        model, small_tim, AutoregressiveSampler(),
        Adam(model.parameters(), lr=0.01), seed=seed,
    )


class Recorder(Callback):
    """Order-sensitive spy over every lifecycle hook."""

    def __init__(self, name="cb", log=None):
        self.name = name
        self.log = log if log is not None else []

    def on_run_begin(self, vqmc):
        self.log.append((self.name, "begin"))

    def on_step(self, step, result):
        self.log.append((self.name, "step", step))

    def on_crash(self, vqmc, exc):
        self.log.append((self.name, "crash", type(exc).__name__))

    def on_run_end(self, vqmc):
        self.log.append((self.name, "end"))


class Exploder(Recorder):
    """Raises from the requested hooks after recording the call."""

    def __init__(self, hooks, name="boom", log=None):
        super().__init__(name=name, log=log)
        self.hooks = set(hooks)

    def on_step(self, step, result):
        super().on_step(step, result)
        if "on_step" in self.hooks:
            raise RuntimeError(f"{self.name} exploded in on_step")

    def on_crash(self, vqmc, exc):
        super().on_crash(vqmc, exc)
        if "on_crash" in self.hooks:
            raise RuntimeError(f"{self.name} exploded in on_crash")

    def on_run_end(self, vqmc):
        super().on_run_end(vqmc)
        if "on_run_end" in self.hooks:
            raise RuntimeError(f"{self.name} exploded in on_run_end")


# -- eval RNG isolation -----------------------------------------------------------


class TestEvalRngIsolation:
    def test_interleaved_evaluate_leaves_training_bit_exact(self, small_tim):
        """The regression: evaluate() must not consume training draws."""
        plain = make_vqmc(small_tim)
        plain.run(6, batch_size=32)

        interleaved = make_vqmc(small_tim)
        for _ in range(3):
            interleaved.run(2, batch_size=32)
            interleaved.evaluate(batch_size=64)  # must be a pure observer

        np.testing.assert_array_equal(
            plain.model.flat_parameters(), interleaved.model.flat_parameters()
        )

    def test_evaluate_itself_is_reproducible_across_constructions(self, small_tim):
        a = make_vqmc(small_tim).evaluate(batch_size=64)
        b = make_vqmc(small_tim).evaluate(batch_size=64)
        assert a.mean == b.mean and a.std == b.std

    def test_explicit_rng_overrides_eval_stream(self, small_tim):
        vqmc = make_vqmc(small_tim)
        a = vqmc.evaluate(batch_size=64, rng=np.random.default_rng(0))
        b = vqmc.evaluate(batch_size=64, rng=np.random.default_rng(0))
        assert a.mean == b.mean

    def test_derive_eval_rng_is_deterministic_and_nonconsuming(self):
        rng = np.random.default_rng(42)
        before = rng.bit_generator.state
        fork_a = derive_eval_rng(rng)
        fork_b = derive_eval_rng(rng)
        assert rng.bit_generator.state == before  # no draws consumed
        assert fork_a.random() == fork_b.random()
        assert fork_a.bit_generator.state != rng.bit_generator.state

    def test_checkpoint_round_trips_eval_stream(self, small_tim, tmp_path):
        a = make_vqmc(small_tim)
        a.run(3, batch_size=32)
        a.evaluate(batch_size=32)  # advance the eval stream past its fork
        save_checkpoint(a, tmp_path / "ckpt.npz")

        b = make_vqmc(small_tim, seed=999, model_seed=999)
        load_checkpoint(b, tmp_path / "ckpt.npz")
        # The *advanced* eval stream must resume, not a fresh re-derivation.
        ref = a.evaluate(batch_size=64)
        got = b.evaluate(batch_size=64)
        assert ref.mean == got.mean and ref.std == got.std


# -- teardown isolation -----------------------------------------------------------


class TestTeardownIsolation:
    def test_raising_callback_does_not_starve_later_callbacks(self, small_tim):
        """A sink placed *after* the exploder still gets crash + end hooks."""
        log: list = []
        boom = Exploder({"on_crash", "on_run_end"}, name="boom", log=log)
        sink = Recorder(name="sink", log=log)
        vqmc = make_vqmc(small_tim)
        crasher = Exploder({"on_step"}, name="crasher", log=log)

        with pytest.warns(RuntimeWarning, match="boom.*isolated"):
            with pytest.raises(RuntimeError, match="crasher exploded in on_step"):
                vqmc.run(5, batch_size=32, callbacks=[crasher, boom, sink])

        assert ("sink", "crash", "RuntimeError") in log
        assert ("sink", "end") in log

    def test_original_exception_is_never_masked(self, small_tim):
        class Original(RuntimeError):
            pass

        class Stepper(Callback):
            def on_step(self, step, result):
                raise Original("the real failure")

        vqmc = make_vqmc(small_tim)
        boom = Exploder({"on_run_end"})
        with pytest.warns(RuntimeWarning):
            with pytest.raises(Original, match="the real failure"):
                vqmc.run(5, batch_size=32, callbacks=[Stepper(), boom])

    def test_clean_run_still_fails_loudly_on_broken_sink(self, small_tim):
        vqmc = make_vqmc(small_tim)
        log: list = []
        boom = Exploder({"on_run_end"}, name="boom", log=log)
        sink = Recorder(name="sink", log=log)
        with pytest.warns(RuntimeWarning):
            with pytest.raises(RuntimeError, match="boom exploded in on_run_end"):
                vqmc.run(2, batch_size=32, callbacks=[boom, sink])
        assert ("sink", "end") in log  # delivered before the re-raise

    def test_flight_recorder_dumps_despite_earlier_raising_callback(
        self, small_tim, tmp_path
    ):
        from repro.obs import FlightRecorder

        recorder = FlightRecorder(tmp_path, capacity=16, rank=0)
        boom = Exploder({"on_crash", "on_run_end"})
        crasher = Exploder({"on_step"}, name="crasher")
        vqmc = make_vqmc(small_tim)
        with pytest.warns(RuntimeWarning):
            with pytest.raises(RuntimeError, match="crasher"):
                # The exploder sits AHEAD of the recorder: pre-fix, the
                # black box was never written.
                vqmc.run(5, batch_size=32, callbacks=[crasher, boom, recorder])
        assert recorder.dumped, "flight recorder never dumped"
        assert recorder.dumped[0].exists()


# -- empty-batch statistics --------------------------------------------------------


class TestEmptyStats:
    def test_energy_statistics_of_empty_batch(self):
        stats = energy_statistics(np.array([]))
        assert stats.is_empty
        assert stats.count == 0
        assert stats.mean == 0.0 and stats.std == 0.0 and stats.sem == 0.0
        assert "empty" in str(stats)

    def test_empty_sentinel_classmethod(self):
        assert EnergyStats.empty().is_empty
        assert not EnergyStats(mean=1.0, std=0.1, sem=0.01, count=8).is_empty

    def test_combine_stats_zero_samples_is_well_defined(self, small_tim):
        vqmc = make_vqmc(small_tim)
        stats = vqmc._combine_stats(np.array([]))
        assert stats.is_empty  # used to divide by zero


# -- StepDriver semantics ----------------------------------------------------------


class TestStepDriver:
    def test_matches_run_bit_exactly(self, small_tim):
        ref = make_vqmc(small_tim)
        ref.run(5, batch_size=32)

        vqmc = make_vqmc(small_tim)
        driver = StepDriver(vqmc, 5, batch_size=32)
        with driver:
            while not driver.done:
                driver.step_once()
        np.testing.assert_array_equal(
            ref.model.flat_parameters(), vqmc.model.flat_parameters()
        )
        assert driver.steps_done == 5 and driver.done

    def test_lifecycle_hooks_fire_once_in_order(self, small_tim):
        log: list = []
        cb = Recorder(log=log)
        vqmc = make_vqmc(small_tim)
        driver = StepDriver(vqmc, 2, batch_size=32, callbacks=[cb])
        driver.run()
        assert log[0] == ("cb", "begin")
        assert log[-1] == ("cb", "end")
        assert [e for e in log if e[1] == "step"] == [
            ("cb", "step", 1), ("cb", "step", 2)
        ]
        driver.finish()  # idempotent
        assert log.count(("cb", "end")) == 1

    def test_cancel_between_steps_leaves_trainer_restorable(self, small_tim):
        vqmc = make_vqmc(small_tim)
        driver = StepDriver(vqmc, 100, batch_size=32)
        with driver:
            driver.step_once()
            driver.step_once()
            driver.cancel()
            assert driver.done
            assert driver.step_once() is None
        assert driver.cancelled and driver.steps_done == 2
        # The trainer is at a clean step boundary: stepping on resumes the
        # exact trajectory a never-cancelled run would have taken.
        ref = make_vqmc(small_tim)
        ref.run(3, batch_size=32)
        vqmc.step(32)
        np.testing.assert_array_equal(
            ref.model.flat_parameters(), vqmc.model.flat_parameters()
        )

    def test_stop_training_marks_stopped(self, small_tim):
        class StopAt(Callback):
            def on_step(self, step, result):
                if step >= 2:
                    raise StopTraining

        vqmc = make_vqmc(small_tim)
        driver = StepDriver(vqmc, 50, batch_size=32, callbacks=[StopAt()])
        results = driver.run()
        assert driver.stopped and len(results) == 2

    def test_zero_iteration_run_still_brackets_callbacks(self, small_tim):
        log: list = []
        driver = StepDriver(
            make_vqmc(small_tim), 0, callbacks=[Recorder(log=log)]
        )
        driver.run()
        assert log == [("cb", "begin"), ("cb", "end")]

    def test_step_after_finish_is_an_error(self, small_tim):
        driver = StepDriver(make_vqmc(small_tim), 3, batch_size=32)
        driver.run()
        with pytest.raises(RuntimeError, match="finish"):
            driver.step_once()

    def test_steps_generator_closes_cleanly(self, small_tim):
        log: list = []
        vqmc = make_vqmc(small_tim)
        history = History()
        gen = vqmc.steps(10, batch_size=32, callbacks=[history, Recorder(log=log)])
        next(gen)
        next(gen)
        gen.close()  # abandoned loop: footer yes, crash no
        assert ("cb", "end") in log
        assert not any(e[1] == "crash" for e in log)
        assert len(history) == 2
