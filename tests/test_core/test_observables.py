"""Observables: magnetisation, correlations, fidelity, entropy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.observables import (
    fidelity,
    kl_divergence,
    magnetization,
    sample_entropy_estimate,
    site_magnetization,
    spin_correlations,
    structure_factor,
)
from repro.exact import ground_state
from repro.models import MADE, MeanField, RBM


class TestDiagonalObservables:
    def test_all_up_state(self):
        x = np.zeros((10, 6))  # bits 0 → spins +1
        assert magnetization(x) == pytest.approx(1.0)
        assert np.allclose(site_magnetization(x), 1.0)
        corr = spin_correlations(x)
        assert np.allclose(corr, 0.0)  # no fluctuations → connected corr 0

    def test_random_state_magnetisation_small(self, rng):
        x = (rng.random((20000, 10)) < 0.5).astype(float)
        assert magnetization(x) < 0.35
        assert np.all(np.abs(site_magnetization(x)) < 0.05)

    def test_correlations_of_perfectly_correlated_pairs(self, rng):
        b = (rng.random(5000) < 0.5).astype(float)
        x = np.stack([b, b, 1.0 - b], axis=1)
        corr = spin_correlations(x)
        assert corr[0, 1] == pytest.approx(corr[0, 0], abs=1e-9)  # z0 == z1
        assert corr[0, 2] == pytest.approx(-corr[0, 0], abs=1e-9)

    def test_structure_factor_ferromagnet(self):
        x = np.zeros((100, 8))
        assert structure_factor(x, 0.0) == pytest.approx(8.0)
        assert structure_factor(x, np.pi) == pytest.approx(0.0, abs=1e-10)

    def test_structure_factor_antiferromagnet(self):
        x = np.tile((np.arange(8) % 2).astype(float), (100, 1))
        assert structure_factor(x, np.pi) == pytest.approx(8.0)
        assert structure_factor(x, 0.0) == pytest.approx(0.0, abs=1e-10)


class TestModelQualityMetrics:
    def test_fidelity_bounds_and_self_consistency(self, small_tim, rng):
        model = MADE(6, hidden=10, rng=rng)
        gs = ground_state(small_tim)
        f = fidelity(model, gs.vector)
        assert 0.0 <= f <= 1.0

    def test_fidelity_after_training_is_high(self, small_tim, rng):
        from repro.core import VQMC
        from repro.optim import SGD, StochasticReconfiguration
        from repro.samplers import AutoregressiveSampler

        model = MADE(6, hidden=12, rng=rng)
        vqmc = VQMC(
            model, small_tim, AutoregressiveSampler(),
            SGD(model.parameters(), lr=0.1),
            sr=StochasticReconfiguration(), seed=1,
        )
        gs = ground_state(small_tim)
        before = fidelity(model, gs.vector)
        vqmc.run(120, batch_size=256)
        after = fidelity(model, gs.vector)
        assert after > before
        assert after > 0.95

    def test_kl_zero_for_matching_distribution(self, rng):
        model = MADE(5, hidden=8, rng=rng)
        kl = kl_divergence(model, model.exact_distribution())
        assert kl == pytest.approx(0.0, abs=1e-10)

    def test_kl_positive_for_mismatched(self, rng):
        model = MADE(5, hidden=8, rng=rng)
        target = np.zeros(32)
        target[7] = 1.0  # point mass
        assert kl_divergence(model, target) > 0.1

    def test_kl_shape_validation(self, rng):
        with pytest.raises(ValueError):
            kl_divergence(MADE(5, rng=rng), np.ones(8) / 8)

    def test_entropy_estimate(self, rng):
        mf = MeanField(6, rng=rng)
        mf.logits.data[...] = 0.0  # exactly uniform → H = 6 ln 2
        x = mf.sample(20000, rng)
        h = sample_entropy_estimate(mf, x)
        assert h == pytest.approx(6 * np.log(2), abs=1e-9)  # log-prob is constant

    def test_entropy_rejects_unnormalised(self, rng):
        rbm = RBM(5, rng=rng)
        with pytest.raises(TypeError):
            sample_entropy_estimate(rbm, np.zeros((4, 5)))
