"""Gradient-noise diagnostics (the Fig. 4 mechanism)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gradient_stats import gradient_noise
from repro.hamiltonians import IsingQUBO, TransverseFieldIsing
from repro.models import MADE, RBM
from repro.samplers import AutoregressiveSampler


class TestGradientNoise:
    def test_mean_equals_gradient_estimator(self, small_tim, rng):
        from repro.core.energy import grad_from_per_sample, local_energies

        model = MADE(6, hidden=8, rng=rng)
        x = model.sample(128, rng)
        stats = gradient_noise(model, small_tim, x)
        local = local_energies(model, small_tim, x)
        _, o = model.log_psi_and_grads(x)
        assert np.allclose(stats.mean, grad_from_per_sample(o, local), atol=1e-12)

    def test_zero_noise_at_constant_local_energy(self, rng):
        """A constant Hamiltonian ⇒ every contribution is exactly zero."""
        ham = IsingQUBO(np.zeros((6, 6)), const=3.0)
        model = MADE(6, rng=rng)
        x = model.sample(64, rng)
        stats = gradient_noise(model, ham, x)
        assert np.allclose(stats.mean, 0.0)
        assert np.allclose(stats.variance, 0.0)

    def test_snr_grows_linearly_with_batch(self, small_tim, rng):
        """SNR ∝ B by construction: double the batch, roughly double SNR."""
        model = MADE(6, hidden=8, rng=rng)
        x = model.sample(4096, rng)
        small = gradient_noise(model, small_tim, x[:256])
        large = gradient_noise(model, small_tim, x[:2048])
        assert large.snr > small.snr * 3  # expect ≈ 8× with MC noise

    def test_critical_batch_independent_of_batch_size(self, small_tim, rng):
        """B_crit is a property of the distribution, not of B (up to noise)."""
        model = MADE(6, hidden=8, rng=rng)
        x = model.sample(8192, rng)
        a = gradient_noise(model, small_tim, x[:1024]).critical_batch
        b = gradient_noise(model, small_tim, x[1024:8192]).critical_batch
        assert a == pytest.approx(b, rel=0.5)

    def test_noise_fraction_bounds(self, small_tim, rng):
        model = MADE(6, rng=rng)
        x = model.sample(128, rng)
        stats = gradient_noise(model, small_tim, x)
        assert 0.0 <= stats.noise_fraction() <= 1.0

    def test_critical_batch_grows_with_problem_size(self, rng):
        """The Fig. 4 saturation story: larger problems have larger B_crit,
        so they keep benefiting from bigger effective batches."""
        def crit(n):
            ham = TransverseFieldIsing.random(n, seed=n)
            model = MADE(n, rng=np.random.default_rng(0))
            x = model.sample(2048, np.random.default_rng(1))
            return gradient_noise(model, ham, x).critical_batch

        assert crit(16) > crit(6)

    def test_validation(self, small_tim, rng):
        model = MADE(6, rng=rng)
        with pytest.raises(ValueError):
            gradient_noise(model, small_tim, model.sample(1, rng))

        class NoPerSample(MADE):
            has_per_sample_grads = False

        with pytest.raises(TypeError):
            gradient_noise(NoPerSample(6, rng=rng), small_tim, model.sample(4, rng))
