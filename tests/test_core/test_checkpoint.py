"""Checkpointing: resume must be bit-exact."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    VQMC,
    CheckpointCallback,
    CheckpointCorruptError,
    load_checkpoint,
    save_checkpoint,
    verify_checkpoint,
)
from repro.models import MADE, RBM
from repro.optim import Adam
from repro.samplers import AutoregressiveSampler


def make_vqmc(small_tim, seed=7, model_seed=3):
    model = MADE(6, hidden=8, rng=np.random.default_rng(model_seed))
    return VQMC(
        model, small_tim, AutoregressiveSampler(),
        Adam(model.parameters(), lr=0.01), seed=seed,
    )


class TestSaveLoad:
    def test_resume_is_bit_exact(self, small_tim, tmp_path):
        path = tmp_path / "ckpt.npz"
        a = make_vqmc(small_tim)
        a.run(5, batch_size=32)
        save_checkpoint(a, path)
        a.run(5, batch_size=32)
        reference = a.model.flat_parameters()

        b = make_vqmc(small_tim, seed=999, model_seed=999)  # wrong init on purpose
        load_checkpoint(b, path)
        assert b.global_step == 5
        b.run(5, batch_size=32)
        assert np.array_equal(b.model.flat_parameters(), reference)

    def test_rng_state_restored(self, small_tim, tmp_path):
        path = tmp_path / "ckpt.npz"
        a = make_vqmc(small_tim)
        a.run(3, batch_size=16)
        save_checkpoint(a, path)
        draws_a = a.rng.random(5)

        b = make_vqmc(small_tim, seed=123)
        load_checkpoint(b, path)
        assert np.array_equal(b.rng.random(5), draws_a)

    def test_wrong_model_class_rejected(self, small_tim, tmp_path):
        path = tmp_path / "ckpt.npz"
        a = make_vqmc(small_tim)
        save_checkpoint(a, path)
        rbm = RBM(6, rng=np.random.default_rng(0))
        from repro.samplers import MetropolisSampler

        b = VQMC(rbm, small_tim, MetropolisSampler(), Adam(rbm.parameters()))
        with pytest.raises(TypeError):
            load_checkpoint(b, path)

    def test_optimizer_moments_roundtrip(self, small_tim, tmp_path):
        path = tmp_path / "ckpt.npz"
        a = make_vqmc(small_tim)
        a.run(4, batch_size=16)
        save_checkpoint(a, path)
        b = make_vqmc(small_tim)
        load_checkpoint(b, path)
        assert b.optimizer._t == a.optimizer._t
        for ma, mb in zip(a.optimizer._m, b.optimizer._m):
            assert np.array_equal(ma, mb)


class TestCallback:
    def test_writes_and_rotates(self, small_tim, tmp_path):
        vqmc = make_vqmc(small_tim)
        cb = CheckpointCallback(tmp_path / "ckpts", every=2, keep_last=2)
        vqmc.run(7, batch_size=16, callbacks=[cb])
        files = sorted((tmp_path / "ckpts").glob("*.npz"))
        assert len(files) == 2  # rotation keeps only the last two
        assert cb.latest() == files[-1]

    def test_latest_loadable(self, small_tim, tmp_path):
        vqmc = make_vqmc(small_tim)
        cb = CheckpointCallback(tmp_path / "c", every=3)
        vqmc.run(6, batch_size=16, callbacks=[cb])
        fresh = make_vqmc(small_tim, seed=0, model_seed=0)
        load_checkpoint(fresh, cb.latest())
        assert np.array_equal(
            fresh.model.flat_parameters(), vqmc.model.flat_parameters()
        )

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointCallback(tmp_path, every=0)


class TestCrashSafety:
    def test_truncated_file_raises_typed_error(self, small_tim, tmp_path):
        path = tmp_path / "ckpt.npz"
        a = make_vqmc(small_tim)
        save_checkpoint(a, path)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(CheckpointCorruptError, match="unreadable container"):
            load_checkpoint(make_vqmc(small_tim), path)

    def test_bit_flip_fails_crc(self, small_tim, tmp_path):
        # flipping a payload byte leaves the zip parseable but breaks the
        # CRC32 — the typed error must name the mismatch, not fail mid-load
        path = tmp_path / "ckpt.npz"
        save_checkpoint(make_vqmc(small_tim), path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointCorruptError):
            verify_checkpoint(path)

    def test_verify_returns_header(self, small_tim, tmp_path):
        path = tmp_path / "ckpt.npz"
        vqmc = make_vqmc(small_tim)
        vqmc.run(3, batch_size=16)
        save_checkpoint(vqmc, path)
        header = verify_checkpoint(path)
        assert header["global_step"] == 3
        assert header["model_class"] == "MADE"

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, data=np.ones(3))
        with pytest.raises(CheckpointCorruptError, match="missing header"):
            verify_checkpoint(path)

    def test_no_tmp_leftovers_after_save(self, small_tim, tmp_path):
        save_checkpoint(make_vqmc(small_tim), tmp_path / "ckpt.npz")
        assert [p.name for p in tmp_path.iterdir()] == ["ckpt.npz"]

    def test_restore_falls_back_when_newest_is_corrupt(self, small_tim, tmp_path):
        vqmc = make_vqmc(small_tim)
        cb = CheckpointCallback(tmp_path, every=2, keep_last=5)
        vqmc.run(2, batch_size=16, callbacks=[cb])
        good_params = vqmc.model.flat_parameters().copy()
        vqmc.run(2, batch_size=16, callbacks=[cb])  # writes step-4 checkpoint

        newest = cb._path_for(4)
        newest.write_bytes(newest.read_bytes()[:100])  # simulated torn write
        assert cb.newest_verified_step() == 2

        fresh = make_vqmc(small_tim, seed=0, model_seed=0)
        used = cb.restore_latest(fresh)
        assert used == cb._path_for(2)
        assert fresh.global_step == 2
        assert np.array_equal(fresh.model.flat_parameters(), good_params)

    def test_restore_at_step_pins_the_checkpoint(self, small_tim, tmp_path):
        vqmc = make_vqmc(small_tim)
        cb = CheckpointCallback(tmp_path, every=1, keep_last=10)
        vqmc.run(3, batch_size=16, callbacks=[cb])
        fresh = make_vqmc(small_tim)
        assert cb.restore_latest(fresh, at_step=2) == cb._path_for(2)
        assert fresh.global_step == 2
        assert cb.restore_latest(fresh, at_step=99) is None

    def test_rank_suffixed_files_are_disjoint(self, small_tim, tmp_path):
        a = CheckpointCallback(tmp_path, every=1, rank=0)
        b = CheckpointCallback(tmp_path, every=1, rank=1)
        vqmc = make_vqmc(small_tim)
        a.write(vqmc, 1)
        b.write(vqmc, 1)
        b.write(vqmc, 2)
        assert a._path_for(1).name == "checkpoint_00000001.rank000.npz"
        # each rank's directory scan only sees its own files
        assert [s for s, _ in a.candidates()] == [1]
        assert [s for s, _ in b.candidates()] == [2, 1]
