"""Checkpointing: resume must be bit-exact."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import VQMC, CheckpointCallback, load_checkpoint, save_checkpoint
from repro.models import MADE, RBM
from repro.optim import Adam
from repro.samplers import AutoregressiveSampler


def make_vqmc(small_tim, seed=7, model_seed=3):
    model = MADE(6, hidden=8, rng=np.random.default_rng(model_seed))
    return VQMC(
        model, small_tim, AutoregressiveSampler(),
        Adam(model.parameters(), lr=0.01), seed=seed,
    )


class TestSaveLoad:
    def test_resume_is_bit_exact(self, small_tim, tmp_path):
        path = tmp_path / "ckpt.npz"
        a = make_vqmc(small_tim)
        a.run(5, batch_size=32)
        save_checkpoint(a, path)
        a.run(5, batch_size=32)
        reference = a.model.flat_parameters()

        b = make_vqmc(small_tim, seed=999, model_seed=999)  # wrong init on purpose
        load_checkpoint(b, path)
        assert b.global_step == 5
        b.run(5, batch_size=32)
        assert np.array_equal(b.model.flat_parameters(), reference)

    def test_rng_state_restored(self, small_tim, tmp_path):
        path = tmp_path / "ckpt.npz"
        a = make_vqmc(small_tim)
        a.run(3, batch_size=16)
        save_checkpoint(a, path)
        draws_a = a.rng.random(5)

        b = make_vqmc(small_tim, seed=123)
        load_checkpoint(b, path)
        assert np.array_equal(b.rng.random(5), draws_a)

    def test_wrong_model_class_rejected(self, small_tim, tmp_path):
        path = tmp_path / "ckpt.npz"
        a = make_vqmc(small_tim)
        save_checkpoint(a, path)
        rbm = RBM(6, rng=np.random.default_rng(0))
        from repro.samplers import MetropolisSampler

        b = VQMC(rbm, small_tim, MetropolisSampler(), Adam(rbm.parameters()))
        with pytest.raises(TypeError):
            load_checkpoint(b, path)

    def test_optimizer_moments_roundtrip(self, small_tim, tmp_path):
        path = tmp_path / "ckpt.npz"
        a = make_vqmc(small_tim)
        a.run(4, batch_size=16)
        save_checkpoint(a, path)
        b = make_vqmc(small_tim)
        load_checkpoint(b, path)
        assert b.optimizer._t == a.optimizer._t
        for ma, mb in zip(a.optimizer._m, b.optimizer._m):
            assert np.array_equal(ma, mb)


class TestCallback:
    def test_writes_and_rotates(self, small_tim, tmp_path):
        vqmc = make_vqmc(small_tim)
        cb = CheckpointCallback(tmp_path / "ckpts", every=2, keep_last=2)
        vqmc.run(7, batch_size=16, callbacks=[cb])
        files = sorted((tmp_path / "ckpts").glob("*.npz"))
        assert len(files) == 2  # rotation keeps only the last two
        assert cb.latest() == files[-1]

    def test_latest_loadable(self, small_tim, tmp_path):
        vqmc = make_vqmc(small_tim)
        cb = CheckpointCallback(tmp_path / "c", every=3)
        vqmc.run(6, batch_size=16, callbacks=[cb])
        fresh = make_vqmc(small_tim, seed=0, model_seed=0)
        load_checkpoint(fresh, cb.latest())
        assert np.array_equal(
            fresh.model.flat_parameters(), vqmc.model.flat_parameters()
        )

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointCallback(tmp_path, every=0)
