"""Graph-level autograd behaviour: accumulation, reuse, detach, no_grad."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, is_grad_enabled


class TestBackwardBasics:
    def test_scalar_chain(self):
        x = Tensor(2.0, requires_grad=True)
        y = (x * 3.0 + 1.0) * x  # y = 3x² + x, dy/dx = 6x + 1 = 13
        y.backward()
        assert x.grad == pytest.approx(13.0)

    def test_tensor_used_twice_accumulates(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2.0).sum() + (x * 5.0).sum()
        y.backward()
        assert np.allclose(x.grad, 7.0)

    def test_backward_without_requires_grad_raises(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            (x * 2.0).sum().backward()

    def test_seed_gradient(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2.0
        y.backward(np.array([1.0, 10.0, 100.0]))
        assert np.allclose(x.grad, [2.0, 20.0, 200.0])

    def test_seed_gradient_shape_mismatch(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2.0).backward(np.ones(4))

    def test_repeated_backward_accumulates_into_grad(self):
        x = Tensor(1.0, requires_grad=True)
        (x * 2.0).backward()
        (x * 3.0).backward()
        assert x.grad == pytest.approx(5.0)

    def test_zero_grad(self):
        x = Tensor(1.0, requires_grad=True)
        (x * 2.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(1.0, requires_grad=True)
        y = x
        for _ in range(5000):
            y = y * 1.0001
        y.backward()
        assert x.grad is not None and np.isfinite(x.grad)

    def test_diamond_graph(self):
        # x → a, b → c: each path contributes once
        x = Tensor(3.0, requires_grad=True)
        a = x * 2.0
        b = x * 5.0
        c = a * b  # c = 10 x², dc/dx = 20x = 60
        c.backward()
        assert x.grad == pytest.approx(60.0)


class TestDetachAndNoGrad:
    def test_detach_blocks_gradient(self):
        x = Tensor(2.0, requires_grad=True)
        y = x.detach() * x  # only the second factor sees gradient
        y.backward()
        assert x.grad == pytest.approx(2.0)

    def test_no_grad_records_nothing(self):
        x = Tensor(2.0, requires_grad=True)
        with no_grad():
            y = x * 3.0
        assert not y.requires_grad
        assert y._backward is None

    def test_no_grad_nesting_restores(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_is_thread_local(self):
        """A no_grad section in one thread must not leak into another."""
        seen = {}
        barrier = threading.Barrier(2)

        def disable_then_wait():
            with no_grad():
                barrier.wait()
                barrier.wait()

        def check_enabled():
            barrier.wait()
            seen["enabled"] = is_grad_enabled()
            barrier.wait()

        t1 = threading.Thread(target=disable_then_wait)
        t2 = threading.Thread(target=check_enabled)
        t1.start(), t2.start()
        t1.join(), t2.join()
        assert seen["enabled"] is True


class TestProtocol:
    def test_repr_and_shape(self):
        t = Tensor(np.zeros((2, 3)), name="w")
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6
        assert "w" in repr(t)

    def test_item_and_len(self):
        assert Tensor(5.0).item() == 5.0
        assert len(Tensor(np.zeros(4))) == 4

    def test_numpy_shares_memory(self):
        t = Tensor(np.zeros(3))
        t.numpy()[0] = 7.0
        assert t.data[0] == 7.0

    def test_data_is_float64(self):
        assert Tensor([1, 2, 3]).data.dtype == np.float64
