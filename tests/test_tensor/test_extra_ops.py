"""Gradient checks and semantics for the extended op set."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import Tensor, gradcheck
from repro.tensor.tensor import maximum, minimum


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestUnaryExtras:
    def test_log1p(self, rng):
        a = np.abs(rng.normal(size=(3, 4)))
        assert gradcheck(lambda x: x.log1p(), [a])

    def test_expm1(self, rng):
        assert gradcheck(lambda x: x.expm1(), [rng.normal(size=(3, 4))])

    def test_sin_cos(self, rng):
        a = rng.normal(size=(3, 4)) * 2
        assert gradcheck(lambda x: x.sin(), [a])
        assert gradcheck(lambda x: x.cos(), [a])

    def test_sin_cos_identity(self, rng):
        a = rng.normal(size=20)
        t = Tensor(a)
        total = (t.sin() ** 2 + t.cos() ** 2).data
        assert np.allclose(total, 1.0)

    def test_log1p_precision_near_zero(self):
        tiny = Tensor(np.array([1e-15]))
        assert tiny.log1p().data[0] == pytest.approx(1e-15, rel=1e-6)
        assert tiny.expm1().data[0] == pytest.approx(1e-15, rel=1e-6)


class TestClip:
    def test_values(self, rng):
        a = rng.normal(size=10) * 3
        out = Tensor(a).clip(-1.0, 1.0).data
        assert np.array_equal(out, np.clip(a, -1, 1))

    def test_gradient_zero_outside_bounds(self):
        t = Tensor(np.array([-5.0, 0.0, 5.0]), requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        assert np.array_equal(t.grad, [0.0, 1.0, 0.0])

    def test_gradcheck_interior(self, rng):
        a = rng.uniform(-0.9, 0.9, size=(3, 3))
        assert gradcheck(lambda x: x.clip(-1.0, 1.0), [a])

    def test_one_sided(self, rng):
        t = Tensor(np.array([-2.0, 2.0]), requires_grad=True)
        out = t.clip(low=0.0)
        assert np.array_equal(out.data, [0.0, 2.0])
        out.sum().backward()
        assert np.array_equal(t.grad, [0.0, 1.0])


class TestLogSumExpSoftmax:
    def test_logsumexp_matches_scipy(self, rng):
        import scipy.special

        a = rng.normal(size=(4, 6)) * 3
        got = Tensor(a).logsumexp(axis=1).data
        assert np.allclose(got, scipy.special.logsumexp(a, axis=1))

    def test_logsumexp_stable_for_huge_values(self):
        a = np.array([[1000.0, 1000.0]])
        out = Tensor(a).logsumexp(axis=1).data
        assert out[0] == pytest.approx(1000.0 + np.log(2.0))

    def test_logsumexp_gradcheck(self, rng):
        a = rng.normal(size=(3, 5))
        assert gradcheck(lambda x: x.logsumexp(axis=1), [a])
        assert gradcheck(lambda x: x.logsumexp(axis=0, keepdims=True), [a])

    def test_softmax_rows_sum_to_one(self, rng):
        a = rng.normal(size=(4, 7)) * 5
        out = Tensor(a).softmax(axis=1).data
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_softmax_gradcheck(self, rng):
        a = rng.normal(size=(3, 4))
        assert gradcheck(lambda x: x.softmax(axis=1) * np.arange(4.0), [a])

    def test_softmax_is_gradient_of_logsumexp(self, rng):
        a = rng.normal(size=(5,))
        t = Tensor(a[None], requires_grad=True)
        t.logsumexp(axis=1).sum().backward()
        assert np.allclose(t.grad[0], Tensor(a[None]).softmax(axis=1).data[0])


class TestMinimumMaximum:
    def test_values(self, rng):
        a, b = rng.normal(size=6), rng.normal(size=6)
        assert np.array_equal(minimum(Tensor(a), Tensor(b)).data, np.minimum(a, b))
        assert np.array_equal(maximum(Tensor(a), Tensor(b)).data, np.maximum(a, b))

    def test_gradcheck_no_ties(self, rng):
        a = rng.normal(size=(3, 4))
        b = a + np.where(rng.random((3, 4)) < 0.5, 1.0, -1.0)  # never equal
        assert gradcheck(lambda x, y: minimum(x, y), [a, b])
        assert gradcheck(lambda x, y: maximum(x, y), [a, b])

    def test_tie_splits_gradient(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        b = Tensor(np.array([2.0]), requires_grad=True)
        maximum(a, b).backward()
        assert a.grad[0] == pytest.approx(0.5)
        assert b.grad[0] == pytest.approx(0.5)

    def test_broadcasting(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4,))
        out = maximum(Tensor(a), Tensor(b))
        assert out.shape == (3, 4)
