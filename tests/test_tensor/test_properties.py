"""Property-based tests (hypothesis) for autograd invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import Tensor, numerical_grad

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


def arrays(max_side=4, max_dims=3):
    shapes = hnp.array_shapes(min_dims=1, max_dims=max_dims, min_side=1, max_side=max_side)
    return hnp.arrays(np.float64, shapes, elements=finite_floats)


@st.composite
def broadcastable_pair(draw):
    """Two shapes that numpy can broadcast together."""
    base = draw(hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4))
    other = list(base)
    for i in range(len(other)):
        if draw(st.booleans()):
            other[i] = 1
    # Randomly drop leading axes of the second operand.
    cut = draw(st.integers(0, len(other) - 1))
    other = other[cut:] or [1]
    a = draw(hnp.arrays(np.float64, base, elements=finite_floats))
    b = draw(hnp.arrays(np.float64, tuple(other), elements=finite_floats))
    return a, b


@settings(max_examples=40, deadline=None)
@given(broadcastable_pair())
def test_add_matches_numpy_and_grads_sum_to_count(pair):
    a, b = pair
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    out = ta + tb
    assert np.array_equal(out.data, a + b)
    out.sum().backward()
    # d(sum(a+b))/da = 1 everywhere; after unbroadcast the total mass equals
    # the number of output elements for each input.
    assert ta.grad.sum() == out.data.size
    assert tb.grad.sum() == out.data.size
    assert ta.grad.shape == a.shape
    assert tb.grad.shape == b.shape


@settings(max_examples=40, deadline=None)
@given(broadcastable_pair())
def test_mul_gradient_is_other_operand(pair):
    a, b = pair
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    (ta * tb).sum().backward()
    bb = np.broadcast_to(b, np.broadcast_shapes(a.shape, b.shape))
    aa = np.broadcast_to(a, np.broadcast_shapes(a.shape, b.shape))
    # Grad of a is sum-unbroadcast of b (and vice versa).
    expect_a = bb.copy()
    expect_b = aa.copy()
    # Reduce to original shapes.
    ga = _unbroadcast_sum(expect_a, a.shape)
    gb = _unbroadcast_sum(expect_b, b.shape)
    assert np.allclose(ta.grad, ga)
    assert np.allclose(tb.grad, gb)


def _unbroadcast_sum(g, shape):
    extra = g.ndim - len(shape)
    if extra:
        g = g.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and g.shape[i] != 1)
    if axes:
        g = g.sum(axis=axes, keepdims=True)
    return g


@settings(max_examples=30, deadline=None)
@given(arrays())
def test_sum_then_backward_gives_ones(a):
    t = Tensor(a, requires_grad=True)
    t.sum().backward()
    assert np.array_equal(t.grad, np.ones_like(a))


@settings(max_examples=30, deadline=None)
@given(arrays())
def test_reshape_roundtrip_identity_gradient(a):
    t = Tensor(a, requires_grad=True)
    out = t.reshape(-1).reshape(*a.shape)
    assert np.array_equal(out.data, a)
    out.sum().backward()
    assert np.array_equal(t.grad, np.ones_like(a))


@settings(max_examples=30, deadline=None)
@given(arrays(max_side=3, max_dims=2))
def test_tanh_gradient_matches_numeric(a):
    t = Tensor(a, requires_grad=True)
    t.tanh().sum().backward()
    num = numerical_grad(lambda x: x.tanh(), [a], 0)
    assert np.allclose(t.grad, num, atol=1e-4)


@settings(max_examples=30, deadline=None)
@given(arrays())
def test_exp_log_inverse(a):
    t = Tensor(a)
    assert np.allclose(t.exp().log().data, a, atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(arrays())
def test_sigmoid_symmetry(a):
    """σ(x) + σ(-x) = 1 — numerical stability across the whole range."""
    t = Tensor(a)
    s1 = t.sigmoid().data
    s2 = (-t).sigmoid().data
    assert np.allclose(s1 + s2, 1.0)


@settings(max_examples=30, deadline=None)
@given(arrays())
def test_log_sigmoid_consistent_with_sigmoid(a):
    t = Tensor(a)
    assert np.allclose(t.log_sigmoid().data, np.log(t.sigmoid().data + 1e-300), atol=1e-8)
