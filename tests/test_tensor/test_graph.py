"""Computation-graph inspection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import Tensor
from repro.tensor.graph import graph_nodes, graph_size, to_dot


class TestGraphWalk:
    def test_counts_nodes(self):
        x = Tensor(np.ones(3), requires_grad=True, name="x")
        y = Tensor(np.ones(3), requires_grad=True, name="y")
        z = (x * y + x).sum()
        # nodes: x, y, x*y, x*y+x, sum — 5
        assert graph_size(z) == 5

    def test_topological_order(self):
        x = Tensor(1.0, requires_grad=True)
        z = (x * 2.0).exp()
        nodes = graph_nodes(z)
        assert nodes[-1] is z
        assert nodes.index(x) < len(nodes) - 1

    def test_shared_subgraph_counted_once(self):
        x = Tensor(1.0, requires_grad=True)
        a = x * 2.0
        z = a + a
        # x, the coerced constant 2.0, a, z — `a` appears once despite being
        # both operands of the add.
        assert graph_size(z) == 4


class TestDot:
    def test_contains_all_nodes_and_edges(self):
        x = Tensor(np.ones(2), requires_grad=True, name="weights")
        z = (x * 3.0).sum()
        dot = to_dot(z)
        assert dot.startswith("digraph")
        assert "weights" in dot
        assert dot.count("->") == 3  # x→mul, const→mul, mul→sum

    def test_parameters_are_shaded(self):
        x = Tensor(np.ones(2), requires_grad=True, name="p")
        dot = to_dot((x * 1.0).sum())
        assert "fillcolor" in dot

    def test_size_cap(self):
        x = Tensor(1.0, requires_grad=True)
        y = x
        for _ in range(50):
            y = y * 1.0
        with pytest.raises(ValueError):
            to_dot(y, max_nodes=10)


class TestExactModelEnergy:
    def test_matches_dense_rayleigh(self, small_tim, rng):
        from repro.core.observables import exact_model_energy
        from repro.models import MADE
        from repro.tensor.tensor import no_grad

        model = MADE(6, hidden=8, rng=rng)
        got = exact_model_energy(model, small_tim)
        states = ((np.arange(64)[:, None] >> np.arange(5, -1, -1)) & 1).astype(float)
        mat = small_tim.to_dense()
        with no_grad():
            psi = np.exp(model.log_psi(states).data)
        expect = psi @ mat @ psi / (psi @ psi)
        assert got == pytest.approx(expect, abs=1e-9)
