"""Gradient checks for every autograd primitive against finite differences."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import Tensor, gradcheck
from repro.tensor.tensor import concatenate, stack, where


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestBinaryOps:
    def test_add(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(3, 4))
        assert gradcheck(lambda x, y: x + y, [a, b])

    def test_sub(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(3, 4))
        assert gradcheck(lambda x, y: x - y, [a, b])

    def test_mul(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(3, 4))
        assert gradcheck(lambda x, y: x * y, [a, b])

    def test_div(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(3, 4)) + 3.0  # keep away from 0
        assert gradcheck(lambda x, y: x / y, [a, b])

    def test_rsub_rdiv_scalars(self, rng):
        a = rng.normal(size=(5,)) + 3.0
        assert gradcheck(lambda x: 2.0 - x, [a])
        assert gradcheck(lambda x: 2.0 / x, [a])

    def test_pow(self, rng):
        a = np.abs(rng.normal(size=(3, 4))) + 0.5
        assert gradcheck(lambda x: x**3.0, [a])
        assert gradcheck(lambda x: x**0.5, [a])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_neg(self, rng):
        assert gradcheck(lambda x: -x, [rng.normal(size=(4,))])


class TestBroadcasting:
    def test_add_broadcast_rows(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4,))
        assert gradcheck(lambda x, y: x + y, [a, b])

    def test_mul_broadcast_cols(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(3, 1))
        assert gradcheck(lambda x, y: x * y, [a, b])

    def test_scalar_broadcast(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=())
        assert gradcheck(lambda x, y: x * y, [a, b])

    def test_both_expand(self, rng):
        a, b = rng.normal(size=(3, 1)), rng.normal(size=(1, 4))
        assert gradcheck(lambda x, y: x + y, [a, b])


class TestMatmul:
    def test_matmul(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        assert gradcheck(lambda x, y: x @ y, [a, b])

    def test_batched_matmul(self, rng):
        a, b = rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 4, 5))
        assert gradcheck(lambda x, y: x @ y, [a, b])

    def test_broadcast_batched_matmul(self, rng):
        a, b = rng.normal(size=(2, 3, 4)), rng.normal(size=(4, 5))
        assert gradcheck(lambda x, y: x @ y, [a, b])

    def test_vector_operands_rejected(self, rng):
        with pytest.raises(ValueError):
            Tensor(rng.normal(size=4)) @ Tensor(rng.normal(size=(4, 2)))


class TestElementwise:
    @pytest.mark.parametrize(
        "name",
        ["exp", "tanh", "relu", "sigmoid", "log_sigmoid", "softplus", "log_cosh", "abs"],
    )
    def test_unary(self, rng, name):
        a = rng.normal(size=(3, 5)) * 2.0
        a[np.abs(a) < 0.1] += 0.5  # keep relu/abs away from the kink
        assert gradcheck(lambda x: getattr(x, name)(), [a])

    def test_log(self, rng):
        a = np.abs(rng.normal(size=(3, 5))) + 0.5
        assert gradcheck(lambda x: x.log(), [a])

    def test_sqrt(self, rng):
        a = np.abs(rng.normal(size=(3, 5))) + 0.5
        assert gradcheck(lambda x: x.sqrt(), [a])

    def test_sigmoid_extreme_values_stable(self):
        t = Tensor(np.array([-1000.0, 0.0, 1000.0]))
        out = t.sigmoid().data
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(0.0)
        assert out[2] == pytest.approx(1.0)

    def test_log_sigmoid_extreme_values_stable(self):
        t = Tensor(np.array([-1000.0, 1000.0]))
        out = t.log_sigmoid().data
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(-1000.0)
        assert out[1] == pytest.approx(0.0)

    def test_log_cosh_matches_naive_in_safe_range(self, rng):
        x = rng.normal(size=100) * 3
        got = Tensor(x).log_cosh().data
        assert np.allclose(got, np.log(np.cosh(x)))

    def test_log_cosh_no_overflow(self):
        out = Tensor(np.array([800.0, -800.0])).log_cosh().data
        assert np.all(np.isfinite(out))
        assert np.allclose(out, 800.0 - np.log(2.0))


class TestReductions:
    def test_sum_all(self, rng):
        assert gradcheck(lambda x: x.sum(), [rng.normal(size=(3, 4))])

    def test_sum_axis(self, rng):
        assert gradcheck(lambda x: x.sum(axis=1), [rng.normal(size=(3, 4))])

    def test_sum_keepdims(self, rng):
        assert gradcheck(lambda x: x.sum(axis=0, keepdims=True), [rng.normal(size=(3, 4))])

    def test_mean(self, rng):
        assert gradcheck(lambda x: x.mean(), [rng.normal(size=(3, 4))])
        assert gradcheck(lambda x: x.mean(axis=1), [rng.normal(size=(3, 4))])

    def test_max(self, rng):
        a = rng.normal(size=(3, 4))
        assert gradcheck(lambda x: x.max(axis=1), [a])

    def test_mean_value(self, rng):
        a = rng.normal(size=(5, 7))
        assert np.allclose(Tensor(a).mean(axis=0).data, a.mean(axis=0))


class TestShapeOps:
    def test_reshape(self, rng):
        assert gradcheck(lambda x: (x.reshape(2, 6) * 2.0), [rng.normal(size=(3, 4))])

    def test_reshape_flatten(self, rng):
        assert gradcheck(lambda x: x.reshape(-1), [rng.normal(size=(3, 4))])

    def test_transpose_default(self, rng):
        assert gradcheck(lambda x: x.T * 3.0, [rng.normal(size=(3, 4))])

    def test_transpose_axes(self, rng):
        assert gradcheck(
            lambda x: x.transpose((2, 0, 1)) * 2.0, [rng.normal(size=(2, 3, 4))]
        )

    def test_getitem_slice(self, rng):
        assert gradcheck(lambda x: x[1:, :2], [rng.normal(size=(3, 4))])

    def test_getitem_int_array(self, rng):
        idx = np.array([0, 2, 2])
        assert gradcheck(lambda x: x[idx], [rng.normal(size=(4, 3))])

    def test_getitem_repeated_indices_accumulate(self):
        t = Tensor(np.zeros(3), requires_grad=True)
        out = t[np.array([1, 1, 1])]
        out.sum().backward()
        assert np.allclose(t.grad, [0.0, 3.0, 0.0])


class TestCombinators:
    def test_concatenate(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(4, 3))
        assert gradcheck(lambda x, y: concatenate([x, y], axis=0) * 2.0, [a, b])

    def test_stack(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 3))
        assert gradcheck(lambda x, y: stack([x, y], axis=1) * 2.0, [a, b])

    def test_where(self, rng):
        cond = rng.random((3, 4)) < 0.5
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(3, 4))
        assert gradcheck(lambda x, y: where(cond, x, y), [a, b])
