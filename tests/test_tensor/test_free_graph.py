"""``backward(free_graph=...)`` lifetime semantics and the explicit-seed rule."""

from __future__ import annotations

import gc
import weakref

import numpy as np
import pytest

from repro.models import MADE
from repro.tensor import Tensor


def _chain():
    x = Tensor(np.ones(3), requires_grad=True)
    mid = x * 2.0
    out = (mid * mid).sum()
    return x, mid, out


class TestFreeGraph:
    def test_free_graph_makes_intermediates_collectible(self):
        x, mid, out = _chain()
        ref = weakref.ref(mid)
        out.backward(free_graph=True)
        np.testing.assert_allclose(x.grad, 8.0 * np.ones(3))
        del mid
        gc.collect()
        # `out` is still alive, but its parents/closures were dropped, so
        # nothing pins the intermediate any more.
        assert ref() is None
        assert out.data is not None  # the value itself survives

    def test_default_backward_keeps_graph_alive(self):
        x, mid, out = _chain()
        ref = weakref.ref(mid)
        out.backward()
        del mid
        gc.collect()
        assert ref() is not None  # out._parents still pins the chain

    def test_freed_graph_leaf_grads_survive(self):
        x, mid, out = _chain()
        out.backward(free_graph=True)
        grad = x.grad.copy()
        del mid, out
        gc.collect()
        np.testing.assert_allclose(x.grad, grad)

    def test_vqmc_step_pattern_releases_model_graph(self):
        # The regression the default guards against: VQMC.step builds a
        # fresh graph per step; without free_graph every intermediate
        # activation survived until the *next* step rebuilt the graph.
        model = MADE(6, hidden=8, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).integers(0, 2, size=(16, 6)).astype(float)
        log_psi = model.log_psi(x)
        refs = [weakref.ref(p) for p in log_psi._parents]
        weights = np.random.default_rng(2).standard_normal(16)
        (log_psi * weights).sum().backward(free_graph=True)
        del weights
        gc.collect()
        assert all(r() is None for r in refs)


class TestExplicitSeedRule:
    def test_non_scalar_backward_requires_seed(self):
        y = Tensor(np.ones(4), requires_grad=True) * 3.0
        with pytest.raises(RuntimeError, match="explicit seed"):
            y.backward()

    def test_non_scalar_backward_with_seed_works(self):
        x = Tensor(np.ones(4), requires_grad=True)
        y = x * 3.0
        y.backward(np.array([1.0, 0.0, 2.0, 0.0]))
        np.testing.assert_allclose(x.grad, [3.0, 0.0, 6.0, 0.0])

    def test_scalar_backward_keeps_implicit_seed(self):
        x = Tensor(np.ones(4), requires_grad=True)
        (x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, 3.0 * np.ones(4))

    def test_size_one_output_allows_implicit_seed(self):
        x = Tensor(np.ones((1, 1)), requires_grad=True)
        y = x * 2.0
        y.backward()
        np.testing.assert_allclose(x.grad, 2.0 * np.ones((1, 1)))
