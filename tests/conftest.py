"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hamiltonians import MaxCut, TransverseFieldIsing


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_tim() -> TransverseFieldIsing:
    """A 6-site disordered TIM instance (exactly diagonalisable)."""
    return TransverseFieldIsing.random(6, seed=99)


@pytest.fixture
def small_maxcut() -> MaxCut:
    """A 8-vertex random Max-Cut instance (brute-forceable)."""
    return MaxCut.random(8, seed=7)


def enumerate_states(n: int) -> np.ndarray:
    """All 2^n bit configurations, big-endian, as a (2^n, n) float array."""
    return (
        (np.arange(2**n)[:, None] >> np.arange(n - 1, -1, -1)) & 1
    ).astype(np.float64)
