"""Stochastic reconfiguration: Fisher matrix, solvers, gradient assembly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optim import StochasticReconfiguration


@pytest.fixture
def o_matrix(rng):
    return rng.normal(size=(64, 10))


class TestFisherMatrix:
    def test_is_centred_covariance(self, o_matrix):
        s = StochasticReconfiguration.fisher_matrix(o_matrix)
        oc = o_matrix - o_matrix.mean(axis=0)
        assert np.allclose(s, oc.T @ oc / 64)

    def test_psd(self, o_matrix):
        s = StochasticReconfiguration.fisher_matrix(o_matrix)
        vals = np.linalg.eigvalsh(s)
        assert vals.min() > -1e-12

    def test_zero_for_constant_o(self):
        o = np.ones((10, 4))
        s = StochasticReconfiguration.fisher_matrix(o)
        assert np.allclose(s, 0.0)


class TestSolvers:
    def test_dense_solves_linear_system(self, o_matrix, rng):
        sr = StochasticReconfiguration(diag_shift=0.01, solver="dense")
        g = rng.normal(size=10)
        delta = sr.natural_gradient(o_matrix, g)
        s = sr.fisher_matrix(o_matrix) + 0.01 * np.eye(10)
        assert np.allclose(s @ delta, g, atol=1e-8)

    def test_cg_matches_dense(self, o_matrix, rng):
        g = rng.normal(size=10)
        dense = StochasticReconfiguration(diag_shift=0.01, solver="dense")
        cg = StochasticReconfiguration(diag_shift=0.01, solver="cg")
        assert np.allclose(
            dense.natural_gradient(o_matrix, g),
            cg.natural_gradient(o_matrix, g),
            atol=1e-6,
        )

    def test_auto_switches_on_dimension(self, rng):
        sr = StochasticReconfiguration(solver="auto", dense_threshold=5)
        o_small = rng.normal(size=(16, 4))
        o_large = rng.normal(size=(16, 8))
        # Both must simply work; the large one exercises the CG path.
        sr.natural_gradient(o_small, rng.normal(size=4))
        sr.natural_gradient(o_large, rng.normal(size=8))

    def test_whitened_o_recovers_plain_gradient(self, rng):
        """If the (centred) O covariance is the identity, SR ≈ plain gradient
        scaled by 1/(1+λ)."""
        bsz = 200000
        o = rng.normal(size=(bsz, 5))
        sr = StochasticReconfiguration(diag_shift=0.0, solver="dense")
        g = rng.normal(size=5)
        delta = sr.natural_gradient(o, g)
        assert np.allclose(delta, g, atol=0.05)

    def test_diag_shift_regularises_singular_s(self):
        """Rank-deficient O (duplicate columns) is only solvable with λ>0."""
        o = np.random.default_rng(0).normal(size=(32, 3))
        o = np.concatenate([o, o], axis=1)  # 6 params, rank 3
        sr = StochasticReconfiguration(diag_shift=1e-3, solver="dense")
        delta = sr.natural_gradient(o, np.ones(6))
        assert np.all(np.isfinite(delta))

    def test_validation(self, o_matrix):
        with pytest.raises(ValueError):
            StochasticReconfiguration(diag_shift=-1.0)
        with pytest.raises(ValueError):
            StochasticReconfiguration(solver="lu")
        with pytest.raises(ValueError):
            StochasticReconfiguration().natural_gradient(o_matrix, np.zeros(3))


class TestSolveDiagnostics:
    def test_last_cg_incomplete_defined_before_any_solve(self):
        """Regression: reading the flag used to AttributeError before the
        first CG solve (it was only assigned inside the CG branch)."""
        sr = StochasticReconfiguration()
        assert sr.last_cg_incomplete is False
        assert sr.last_solve is None

    def test_last_cg_incomplete_false_after_dense_solve(self, o_matrix, rng):
        """Regression: a dense solve must (re)set the flag, not leave the
        previous CG solve's value (or nothing) behind."""
        g = rng.normal(size=10)
        sr = StochasticReconfiguration(solver="cg", cg_maxiter=1, cg_tol=1e-14)
        sr.natural_gradient(o_matrix, g)
        assert sr.last_cg_incomplete is True  # 1 iteration cannot converge
        sr.solver = "dense"
        sr.natural_gradient(o_matrix, g)
        assert sr.last_cg_incomplete is False

    def test_solve_info_records_solver_and_residual(self, o_matrix, rng):
        g = rng.normal(size=10)
        sr = StochasticReconfiguration(solver="auto", dense_threshold=5)
        sr.natural_gradient(o_matrix, g)
        info = sr.last_solve
        assert info.solver == "cg"  # d=10 > threshold: auto resolved to CG
        assert not info.distributed and info.comm_bytes == 0
        assert info.d == 10 and info.samples == 64
        assert info.iterations > 0 and info.residual < 1e-6
        assert info.incomplete is False

    def test_incomplete_solve_still_returns_descent_direction(self, o_matrix, rng):
        g = rng.normal(size=10)
        sr = StochasticReconfiguration(
            diag_shift=1e-3, solver="cg", cg_maxiter=2, cg_tol=1e-14
        )
        delta = sr.natural_gradient(o_matrix, g)
        assert sr.last_solve.incomplete and sr.last_solve.iterations == 2
        assert np.all(np.isfinite(delta))
        assert delta @ g > 0  # (S+λI)⁻¹-ish applied to g keeps positivity

    def test_metrics_counters(self, o_matrix, rng):
        from repro.obs import Metrics

        sr = StochasticReconfiguration(solver="cg")
        sr.metrics = Metrics()
        sr.natural_gradient(o_matrix, rng.normal(size=10))
        snap = sr.metrics.snapshot()
        assert snap["counters"]["sr.solves"] == 1
        assert snap["counters"]["sr.cg_iterations"] == sr.last_solve.iterations


class TestScipyCompat:
    """The CG tolerance keyword is `rtol` only from SciPy 1.12; older
    releases spell it `tol`. The shim resolves it from the live signature."""

    def test_new_scipy_gets_rtol(self, monkeypatch):
        import scipy.sparse.linalg

        from repro.optim import sr as sr_mod

        seen = {}

        def fake_cg(op, b, *, rtol, atol, maxiter, callback=None):
            seen["rtol"] = rtol
            return np.zeros_like(b), 0

        monkeypatch.setattr(scipy.sparse.linalg, "cg", fake_cg)
        sol, info, iters = sr_mod._cg(None, np.ones(3), tol=1e-7, maxiter=5)
        assert seen["rtol"] == 1e-7 and info == 0 and iters == 0

    def test_old_scipy_falls_back_to_tol(self, monkeypatch):
        import scipy.sparse.linalg

        from repro.optim import sr as sr_mod

        seen = {}

        def fake_cg(op, b, *, tol, atol, maxiter, callback=None):
            seen["tol"] = tol
            return np.zeros_like(b), 0

        monkeypatch.setattr(scipy.sparse.linalg, "cg", fake_cg)
        sol, info, iters = sr_mod._cg(None, np.ones(3), tol=1e-7, maxiter=5)
        assert seen["tol"] == 1e-7

    def test_real_scipy_accepts_the_resolved_keyword(self, o_matrix, rng):
        # Whatever this environment's SciPy is, the solve must not TypeError.
        sr = StochasticReconfiguration(solver="cg")
        delta = sr.natural_gradient(o_matrix, rng.normal(size=10))
        assert np.all(np.isfinite(delta))


class TestEnergyGradient:
    def test_covariance_form(self, o_matrix, rng):
        l = rng.normal(size=64)
        f = StochasticReconfiguration.energy_gradient(o_matrix, l)
        centred = l - l.mean()
        assert np.allclose(f, centred @ o_matrix / 64)

    def test_zero_for_constant_local_energy(self, o_matrix):
        """Zero-variance principle: at an eigenstate (constant l) the
        gradient estimator vanishes identically, not just in expectation."""
        f = StochasticReconfiguration.energy_gradient(o_matrix, np.full(64, 3.7))
        assert np.allclose(f, 0.0)
