"""Stochastic reconfiguration: Fisher matrix, solvers, gradient assembly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optim import StochasticReconfiguration


@pytest.fixture
def o_matrix(rng):
    return rng.normal(size=(64, 10))


class TestFisherMatrix:
    def test_is_centred_covariance(self, o_matrix):
        s = StochasticReconfiguration.fisher_matrix(o_matrix)
        oc = o_matrix - o_matrix.mean(axis=0)
        assert np.allclose(s, oc.T @ oc / 64)

    def test_psd(self, o_matrix):
        s = StochasticReconfiguration.fisher_matrix(o_matrix)
        vals = np.linalg.eigvalsh(s)
        assert vals.min() > -1e-12

    def test_zero_for_constant_o(self):
        o = np.ones((10, 4))
        s = StochasticReconfiguration.fisher_matrix(o)
        assert np.allclose(s, 0.0)


class TestSolvers:
    def test_dense_solves_linear_system(self, o_matrix, rng):
        sr = StochasticReconfiguration(diag_shift=0.01, solver="dense")
        g = rng.normal(size=10)
        delta = sr.natural_gradient(o_matrix, g)
        s = sr.fisher_matrix(o_matrix) + 0.01 * np.eye(10)
        assert np.allclose(s @ delta, g, atol=1e-8)

    def test_cg_matches_dense(self, o_matrix, rng):
        g = rng.normal(size=10)
        dense = StochasticReconfiguration(diag_shift=0.01, solver="dense")
        cg = StochasticReconfiguration(diag_shift=0.01, solver="cg")
        assert np.allclose(
            dense.natural_gradient(o_matrix, g),
            cg.natural_gradient(o_matrix, g),
            atol=1e-6,
        )

    def test_auto_switches_on_dimension(self, rng):
        sr = StochasticReconfiguration(solver="auto", dense_threshold=5)
        o_small = rng.normal(size=(16, 4))
        o_large = rng.normal(size=(16, 8))
        # Both must simply work; the large one exercises the CG path.
        sr.natural_gradient(o_small, rng.normal(size=4))
        sr.natural_gradient(o_large, rng.normal(size=8))

    def test_whitened_o_recovers_plain_gradient(self, rng):
        """If the (centred) O covariance is the identity, SR ≈ plain gradient
        scaled by 1/(1+λ)."""
        bsz = 200000
        o = rng.normal(size=(bsz, 5))
        sr = StochasticReconfiguration(diag_shift=0.0, solver="dense")
        g = rng.normal(size=5)
        delta = sr.natural_gradient(o, g)
        assert np.allclose(delta, g, atol=0.05)

    def test_diag_shift_regularises_singular_s(self):
        """Rank-deficient O (duplicate columns) is only solvable with λ>0."""
        o = np.random.default_rng(0).normal(size=(32, 3))
        o = np.concatenate([o, o], axis=1)  # 6 params, rank 3
        sr = StochasticReconfiguration(diag_shift=1e-3, solver="dense")
        delta = sr.natural_gradient(o, np.ones(6))
        assert np.all(np.isfinite(delta))

    def test_validation(self, o_matrix):
        with pytest.raises(ValueError):
            StochasticReconfiguration(diag_shift=-1.0)
        with pytest.raises(ValueError):
            StochasticReconfiguration(solver="lu")
        with pytest.raises(ValueError):
            StochasticReconfiguration().natural_gradient(o_matrix, np.zeros(3))


class TestEnergyGradient:
    def test_covariance_form(self, o_matrix, rng):
        l = rng.normal(size=64)
        f = StochasticReconfiguration.energy_gradient(o_matrix, l)
        centred = l - l.mean()
        assert np.allclose(f, centred @ o_matrix / 64)

    def test_zero_for_constant_local_energy(self, o_matrix):
        """Zero-variance principle: at an eigenstate (constant l) the
        gradient estimator vanishes identically, not just in expectation."""
        f = StochasticReconfiguration.energy_gradient(o_matrix, np.full(64, 3.7))
        assert np.allclose(f, 0.0)
