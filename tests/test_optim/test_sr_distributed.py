"""Distributed SR engine: parity, matrix-free comm volume, congruence.

The acceptance bar of the communicator-aware engine (`repro.optim.sr`):

- distributed solves (`cg` *and* `dense`) reproduce the serial big-batch
  solve within 1e-6 relative error, on threads and processes backends,
  with equal and unequal per-rank shards;
- with `solver='cg'` no d×d array is ever allreduced — per-solve
  collective volume is O(d·iters), measured from `CommStats`;
- the distributed matrix-free matvec equals the dense global-S matvec
  (hypothesis property);
- every rank issues a congruent collective sequence (CommSanitizer).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import CommSanitizer
from repro.distributed import run_threaded
from repro.distributed.mp import run_processes
from repro.optim import StochasticReconfiguration

WORLD = 4


def _problem(d: int, batch: int = 64, seed: int = 0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(batch, d)), rng.normal(size=d)


def _shards(o: np.ndarray, world: int, unequal: bool = False):
    if not unequal:
        return np.array_split(o, world)
    # Deliberately lopsided split: exercises global-count normalisation.
    bounds = np.linspace(0, o.shape[0], world + 1).astype(int)
    bounds[1:-1] += np.arange(1, world) % 3 - 1
    return [o[a:b] for a, b in zip(bounds[:-1], bounds[1:])]


def _mp_worker(comm, rank, shards, g, solver):
    sr = StochasticReconfiguration(diag_shift=1e-3, solver=solver)
    return sr.natural_gradient(shards[rank], g, comm=comm)


class TestDistributedParity:
    @pytest.mark.parametrize("solver", ["dense", "cg"])
    @pytest.mark.parametrize("unequal", [False, True])
    def test_threads_matches_serial_big_batch(self, solver, unequal):
        o, g = _problem(d=24)
        ref = StochasticReconfiguration(
            diag_shift=1e-3, solver="dense"
        ).natural_gradient(o, g)
        shards = _shards(o, WORLD, unequal=unequal)

        def worker(comm, rank):
            sr = StochasticReconfiguration(diag_shift=1e-3, solver=solver)
            return sr.natural_gradient(shards[rank], g, comm=comm)

        results = run_threaded(worker, WORLD)
        for sol in results:
            assert np.linalg.norm(sol - ref) / np.linalg.norm(ref) < 1e-6
        # Bit-identical across ranks: every rank solved the same system
        # from identical allreduce results — the congruence invariant.
        for sol in results[1:]:
            assert np.array_equal(sol, results[0])

    @pytest.mark.parametrize("solver", ["dense", "cg"])
    def test_processes_matches_serial_big_batch(self, solver):
        o, g = _problem(d=12, batch=32, seed=3)
        ref = StochasticReconfiguration(
            diag_shift=1e-3, solver="dense"
        ).natural_gradient(o, g)
        shards = _shards(o, 2)
        results = run_processes(_mp_worker, 2, args=(shards, g, solver))
        for sol in results:
            assert np.linalg.norm(sol - ref) / np.linalg.norm(ref) < 1e-6

    def test_cg_beyond_dense_threshold(self):
        """The regime the bug locked out: solver honoured past the dense
        crossover, still matching the serial dense solve."""
        o, g = _problem(d=48, batch=96, seed=1)
        ref = StochasticReconfiguration(
            diag_shift=1e-3, solver="dense"
        ).natural_gradient(o, g)
        shards = _shards(o, WORLD)

        def worker(comm, rank):
            sr = StochasticReconfiguration(
                diag_shift=1e-3, solver="auto", dense_threshold=10
            )
            sol = sr.natural_gradient(shards[rank], g, comm=comm)
            return sol, sr.last_solve

        for sol, info in run_threaded(worker, WORLD):
            assert info.solver == "cg"  # 'auto' resolved past the threshold
            assert np.linalg.norm(sol - ref) / np.linalg.norm(ref) < 1e-6

    def test_serial_comm_is_equivalent_to_no_comm(self):
        from repro.distributed.serial import SerialCommunicator

        o, g = _problem(d=10)
        sr = StochasticReconfiguration(diag_shift=1e-3, solver="cg")
        a = sr.natural_gradient(o, g)
        b = sr.natural_gradient(o, g, comm=SerialCommunicator())
        assert np.array_equal(a, b)


class TestCommVolume:
    def test_cg_never_moves_dxd(self):
        """Acceptance criterion: with solver='cg' the per-solve collective
        volume is O(d·iters) — strictly below the d×d matrix — while the
        dense path pays the full O(d²)."""
        d = 200
        # Large shift ⇒ well-conditioned system ⇒ few CG iterations, so
        # the O(d·iters) volume sits far below d² at this size.
        o, g = _problem(d=d, batch=128, seed=2)
        shards = _shards(o, WORLD)

        def worker(comm, rank, solver):
            sr = StochasticReconfiguration(diag_shift=1.0, solver=solver)
            sr.natural_gradient(shards[rank], g, comm=comm)
            return sr.last_solve

        cg = run_threaded(worker, WORLD, args=("cg",))[0]
        dense = run_threaded(worker, WORLD, args=("dense",))[0]
        dxd = d * d * 8
        assert cg.comm_bytes < dxd / 4
        # centring (d+1) + one d-vector per matvec (iters + initial
        # residual + final residual check) — nothing else.
        assert cg.comm_bytes <= (d + 1) * 8 + (cg.iterations + 2) * d * 8
        assert dense.comm_bytes >= dxd  # the dense path is inherently O(d²)

    def test_metrics_record_iterations_and_bytes(self):
        from repro.obs import Metrics

        o, g = _problem(d=16)
        shards = _shards(o, 2)

        def worker(comm, rank):
            sr = StochasticReconfiguration(diag_shift=1e-3, solver="cg")
            sr.metrics = Metrics()
            sr.natural_gradient(shards[rank], g, comm=comm)
            return sr.metrics.snapshot(), sr.last_solve

        snap, info = run_threaded(worker, 2)[0]
        assert snap["counters"]["sr.solves"] == 1
        assert snap["counters"]["sr.cg_iterations"] == info.iterations > 0
        assert snap["counters"]["sr.comm_bytes"] == info.comm_bytes > 0
        assert snap["gauges"]["sr.residual"] == info.residual < 1e-6


class TestMatvecProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        d=st.integers(2, 12),
        batch=st.integers(4, 24),
        diag_shift=st.floats(0.0, 1.0),
    )
    def test_distributed_matvec_equals_dense_global_s(
        self, seed, d, batch, diag_shift
    ):
        """∀ v: the sharded, allreduced matvec == (S_global + λI) v."""
        rng = np.random.default_rng(seed)
        o = rng.normal(size=(batch, d))
        v = rng.normal(size=d)
        s = StochasticReconfiguration.fisher_matrix(o)
        expect = s @ v + diag_shift * v
        shards = _shards(o, 2, unequal=batch % 2 == 1)

        def worker(comm, rank):
            sr = StochasticReconfiguration(diag_shift=diag_shift)
            matvec, total = sr.fisher_operator(shards[rank], comm=comm)
            return matvec(v), total

        for got, total in run_threaded(worker, 2):
            assert total == batch
            np.testing.assert_allclose(got, expect, atol=1e-10, rtol=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), d=st.integers(2, 10))
    def test_serial_operator_matches_dense(self, seed, d):
        rng = np.random.default_rng(seed)
        o = rng.normal(size=(16, d))
        v = rng.normal(size=d)
        sr = StochasticReconfiguration(diag_shift=0.5)
        matvec, total = sr.fisher_operator(o)
        assert total == 16
        np.testing.assert_allclose(
            matvec(v),
            StochasticReconfiguration.fisher_matrix(o) @ v + 0.5 * v,
            atol=1e-10,
        )


class TestSanitizerCongruence:
    @pytest.mark.parametrize("solver", ["dense", "cg"])
    def test_all_ranks_issue_congruent_collectives(self, solver):
        """Every rank must run the identical collective sequence through a
        solve — same count, kinds, shapes — or the sanitizer raises."""
        o, g = _problem(d=20, batch=48, seed=5)
        shards = _shards(o, 3, unequal=True)

        def worker(comm, rank):
            sane = CommSanitizer(comm, timeout=20.0)
            sr = StochasticReconfiguration(diag_shift=1e-3, solver=solver)
            sol = sr.natural_gradient(shards[rank], g, comm=sane)
            sane.barrier()  # flush + verify outstanding fingerprints
            return sol, [r.kind for r in sane.records]

        results = run_threaded(worker, 3)
        kinds = results[0][1]
        for _, k in results[1:]:
            assert k == kinds

    def test_vqmc_sr_steps_congruent_under_sanitizer(self, small_tim):
        """End to end: VQMC SR-CG training steps under the sanitizer —
        replicas in lock-step, no mismatched collective."""
        from repro.core.vqmc import VQMC
        from repro.models import MADE
        from repro.optim import SGD
        from repro.samplers import AutoregressiveSampler

        def worker(comm, rank):
            sane = CommSanitizer(comm, timeout=30.0)
            model = MADE(6, hidden=8, rng=np.random.default_rng(0))
            vqmc = VQMC(
                model, small_tim, AutoregressiveSampler(),
                SGD(model.parameters(), lr=0.05),
                sr=StochasticReconfiguration(solver="cg"),
                comm=sane, seed=np.random.default_rng(100 + rank),
            )
            vqmc.run(3, batch_size=16)
            assert vqmc.sr.last_solve.solver == "cg"
            assert vqmc.sr.last_solve.distributed
            sane.barrier()
            return model.flat_parameters()

        results = run_threaded(worker, 3)
        for r in results[1:]:
            assert np.allclose(r, results[0], atol=1e-12)
