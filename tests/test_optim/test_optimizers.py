"""SGD / Adam / schedulers against reference behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import SGD, Adam, ConstantLR, CosineAnnealingLR, StepLR


def quadratic_param(start=5.0):
    return Parameter(np.array([start]))


class TestSGD:
    def test_single_step(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        p.grad = np.array([2.0])
        opt.step()
        assert p.data[0] == pytest.approx(5.0 - 0.2)

    def test_none_grad_skipped(self):
        p = quadratic_param()
        SGD([p], lr=0.1).step()
        assert p.data[0] == 5.0

    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            p.grad = 2.0 * p.data  # f = x²
            opt.step()
        assert abs(p.data[0]) < 1e-6

    def test_momentum_accelerates(self):
        def run(momentum):
            p = quadratic_param()
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                p.grad = 2.0 * p.data
                opt.step()
            return abs(p.data[0])

        assert run(0.9) < run(0.0)

    def test_state_dict_roundtrip(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1, momentum=0.5)
        p.grad = np.array([1.0])
        opt.step()
        state = opt.state_dict()
        opt2 = SGD([p], lr=0.9, momentum=0.1)
        opt2.load_state_dict(state)
        assert opt2.lr == 0.1 and opt2.momentum == 0.5
        assert np.allclose(opt2._velocity[0], opt._velocity[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=0.1, momentum=1.5)


class TestAdam:
    def test_first_step_size_is_lr(self):
        """With bias correction, the first Adam step ≈ lr·sign(grad)."""
        p = quadratic_param()
        opt = Adam([p], lr=0.01)
        p.grad = np.array([123.0])
        opt.step()
        assert p.data[0] == pytest.approx(5.0 - 0.01, abs=1e-6)

    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.1)
        for _ in range(500):
            p.grad = 2.0 * p.data
            opt.step()
        assert abs(p.data[0]) < 1e-3

    def test_matches_reference_implementation(self, rng):
        """Bitwise comparison against a hand-rolled Adam for 20 steps."""
        theta = rng.normal(size=7)
        grads = rng.normal(size=(20, 7))
        p = Parameter(theta.copy())
        opt = Adam([p], lr=0.05, betas=(0.9, 0.999), eps=1e-8)

        m = np.zeros(7)
        v = np.zeros(7)
        ref = theta.copy()
        for t, g in enumerate(grads, start=1):
            p.grad = g.copy()
            opt.step()
            m = 0.9 * m + 0.1 * g
            v = 0.999 * v + 0.001 * g**2
            mh = m / (1 - 0.9**t)
            vh = v / (1 - 0.999**t)
            ref -= 0.05 * mh / (np.sqrt(vh) + 1e-8)
        assert np.allclose(p.data, ref, atol=1e-12)

    def test_state_dict_roundtrip(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.01)
        p.grad = np.array([1.0])
        opt.step()
        opt2 = Adam([p], lr=0.5)
        opt2.load_state_dict(opt.state_dict())
        assert opt2._t == 1 and opt2.lr == 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            Adam([quadratic_param()], betas=(1.0, 0.9))


class TestSchedulers:
    def test_constant(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        sched = ConstantLR(opt)
        for _ in range(5):
            sched.step()
        assert opt.lr == 0.1

    def test_step_lr(self):
        p = quadratic_param()
        opt = SGD([p], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(6):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01, 0.01, 0.001])

    def test_cosine(self):
        p = quadratic_param()
        opt = SGD([p], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-12)

    def test_cosine_midpoint(self):
        p = quadratic_param()
        opt = SGD([p], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10)
        for _ in range(5):
            sched.step()
        assert opt.lr == pytest.approx(0.5)
