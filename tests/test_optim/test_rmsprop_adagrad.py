"""RMSprop and AdaGrad against hand-rolled references."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import AdaGrad, RMSprop


class TestRMSprop:
    def test_matches_reference(self, rng):
        theta = rng.normal(size=5)
        grads = rng.normal(size=(15, 5))
        p = Parameter(theta.copy())
        opt = RMSprop([p], lr=0.02, alpha=0.9, eps=1e-8)
        v = np.zeros(5)
        ref = theta.copy()
        for g in grads:
            p.grad = g.copy()
            opt.step()
            v = 0.9 * v + 0.1 * g**2
            ref -= 0.02 * g / (np.sqrt(v) + 1e-8)
        assert np.allclose(p.data, ref, atol=1e-12)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([4.0]))
        opt = RMSprop([p], lr=0.05)
        for _ in range(500):
            p.grad = 2.0 * p.data
            opt.step()
        assert abs(p.data[0]) < 1e-2

    def test_state_roundtrip(self):
        p = Parameter(np.ones(3))
        opt = RMSprop([p], lr=0.01)
        p.grad = np.ones(3)
        opt.step()
        opt2 = RMSprop([p], lr=0.5)
        opt2.load_state_dict(opt.state_dict())
        assert opt2.lr == 0.01
        assert np.allclose(opt2._v[0], opt._v[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            RMSprop([Parameter(np.ones(1))], alpha=1.0)


class TestAdaGrad:
    def test_matches_reference(self, rng):
        theta = rng.normal(size=4)
        grads = rng.normal(size=(10, 4))
        p = Parameter(theta.copy())
        opt = AdaGrad([p], lr=0.1, eps=1e-10)
        g2 = np.zeros(4)
        ref = theta.copy()
        for g in grads:
            p.grad = g.copy()
            opt.step()
            g2 += g**2
            ref -= 0.1 * g / (np.sqrt(g2) + 1e-10)
        assert np.allclose(p.data, ref, atol=1e-12)

    def test_steps_shrink_over_time(self):
        p = Parameter(np.array([1.0]))
        opt = AdaGrad([p], lr=0.1)
        deltas = []
        for _ in range(5):
            before = p.data.copy()
            p.grad = np.array([1.0])
            opt.step()
            deltas.append(abs(p.data[0] - before[0]))
        assert all(b < a for a, b in zip(deltas, deltas[1:]))

    def test_none_grad_skipped(self):
        p = Parameter(np.array([2.0]))
        AdaGrad([p]).step()
        assert p.data[0] == 2.0

    def test_trains_vqmc(self, small_tim, rng):
        from repro.core import VQMC
        from repro.models import MADE
        from repro.samplers import AutoregressiveSampler

        model = MADE(6, rng=rng)
        vqmc = VQMC(
            model, small_tim, AutoregressiveSampler(),
            AdaGrad(model.parameters(), lr=0.2), seed=1,
        )
        first = vqmc.step(batch_size=128).stats.mean
        vqmc.run(60, batch_size=128)
        assert vqmc.evaluate(512).mean < first
