"""Tier-1 perf smoke tests (fast; part of the ``-m "not slow"`` tier).

Guards the dispatch invariants the perf layer promises:

- MADE + AutoregressiveSampler takes the incremental path by default and
  never *silently* falls back to the naive n-pass sampler;
- ``local_energies`` reuses a precomputed ``log ψ(x)`` instead of
  re-evaluating it, and the VQMC driver exploits that (one amplitude
  evaluation of ``x`` per step, not two).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core import VQMC
from repro.core.energy import local_energies
from repro.hamiltonians import TransverseFieldIsing
from repro.models import MADE
from repro.optim import Adam
from repro.samplers import AutoregressiveSampler
from repro.tensor.tensor import no_grad


class TestIncrementalIsDefault:
    def test_made_uses_incremental_without_warnings(self, rng):
        model = MADE(12, rng=rng)
        sampler = AutoregressiveSampler()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any fallback warning → failure
            sampler.sample(model, 64, rng)
        stats = sampler.last_stats
        assert stats.extras["fast_path"] == "incremental"
        assert stats.forward_pass_equivalents < model.n / 2

    def test_fallback_is_never_silent(self, rng, monkeypatch):
        import repro.samplers.autoregressive as auto_mod

        model = MADE(6, rng=rng)

        def broken(*args, **kwargs):
            raise NotImplementedError("simulated kernel gap")

        monkeypatch.setattr(auto_mod, "incremental_sample", broken)
        sampler = AutoregressiveSampler()
        with pytest.warns(RuntimeWarning, match="falling back"):
            sampler.sample(model, 8, rng)
        assert sampler.last_stats.extras["fast_path"] == "naive"

    def test_vqmc_training_step_runs_on_fast_paths(self, rng):
        """End-to-end: one training step, incremental sampling + fused
        measurement, with no fallback warnings."""
        n = 10
        model = MADE(n, rng=rng)
        ham = TransverseFieldIsing.random(n, seed=3)
        vqmc = VQMC(model, ham, AutoregressiveSampler(), Adam(model.parameters()),
                    seed=4)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = vqmc.step(batch_size=64)
        assert np.isfinite(result.stats.mean)
        assert vqmc.sampler.last_stats.extras["fast_path"] == "incremental"


class TestLogPsiReuse:
    def test_local_energies_accepts_precomputed_log_psi(self, small_tim, rng):
        model = MADE(6, rng=rng)
        x = (rng.random((10, 6)) < 0.5).astype(float)
        with no_grad():
            lp = model.log_psi(x).data
        base, lp_back = local_energies(model, small_tim, x, return_log_psi=True)
        given = local_energies(model, small_tim, x, log_psi_x=lp)
        assert np.allclose(base, given, atol=1e-12)
        assert np.allclose(lp_back, lp, atol=1e-12)

    def test_precomputed_log_psi_skips_model_eval(self, small_tim, rng):
        """On the dense path, passing log_psi_x must drop the ψ(x) forward
        pass (neighbours still need one)."""
        from repro.models import RBM

        model = RBM(6, rng=rng, init_std=0.1)
        x = (rng.random((4, 6)) < 0.5).astype(float)
        with no_grad():
            lp = model.log_psi(x).data
        calls = []
        original = model.log_psi

        def counting(batch):
            calls.append(np.asarray(batch).shape[0])
            return original(batch)

        model.log_psi = counting
        local_energies(model, small_tim, x, log_psi_x=lp)
        # Only the (B·K)-row neighbour evaluation remains.
        assert calls == [4 * small_tim.sparsity]

    def test_bad_log_psi_shape_rejected(self, small_tim, rng):
        model = MADE(6, rng=rng)
        x = np.zeros((3, 6))
        with pytest.raises(ValueError):
            local_energies(model, small_tim, x, log_psi_x=np.zeros(5))

    def test_vqmc_evaluates_amplitudes_once_per_step(self, rng):
        """The driver passes the gradient path's log ψ into the energy
        estimator: in autograd mode `model.log_psi(x)` runs exactly once."""
        n = 6
        model = MADE(n, rng=rng)
        ham = TransverseFieldIsing.random(n, seed=1)
        from repro.core.vqmc import VQMCConfig

        vqmc = VQMC(
            model, ham, AutoregressiveSampler(), Adam(model.parameters()),
            seed=2, config=VQMCConfig(gradient_mode="autograd"),
        )
        calls = []
        original = model.log_psi

        def counting(batch):
            calls.append(np.asarray(batch).shape[0])
            return original(batch)

        model.log_psi = counting
        vqmc.step(batch_size=32)
        assert calls == [32]
