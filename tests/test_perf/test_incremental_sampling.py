"""Property tests: the incremental sampler is bit-identical to Algorithm 1.

The incremental kernel must reproduce the naive sampler's 0/1 output
exactly for the same RNG stream — with and without ancestral clamping,
for shallow and deep MADEs, across mask strategies.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import MADE
from repro.perf import incremental_sample, supports_incremental

SETTINGS = dict(max_examples=30, deadline=None, derandomize=True)


def _build_made(n: int, widths: list[int], seed: int, spread: float) -> MADE:
    rng = np.random.default_rng(seed)
    model = MADE(n, hidden=widths if len(widths) > 1 else widths[0], rng=rng)
    # Push weights away from init so conditionals are far from 1/2 and the
    # comparison exercises both branches of the ReLUs.
    for p in model.parameters():
        p.data += rng.normal(size=p.shape) * spread
    return model


@st.composite
def made_specs(draw):
    n = draw(st.integers(min_value=1, max_value=16))
    depth = draw(st.integers(min_value=1, max_value=3))
    widths = [draw(st.integers(min_value=1, max_value=24)) for _ in range(depth)]
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    spread = draw(st.floats(min_value=0.0, max_value=1.5))
    return n, widths, seed, spread


class TestBitIdentical:
    @settings(**SETTINGS)
    @given(spec=made_specs(), batch=st.integers(min_value=1, max_value=64))
    def test_matches_naive_without_clamp(self, spec, batch):
        n, widths, seed, spread = spec
        model = _build_made(n, widths, seed, spread)
        x_fast = model.sample(batch, np.random.default_rng(seed), method="incremental")
        x_slow = model.sample(batch, np.random.default_rng(seed), method="naive")
        assert np.array_equal(x_fast, x_slow)

    @settings(**SETTINGS)
    @given(
        spec=made_specs(),
        batch=st.integers(min_value=1, max_value=32),
        data=st.data(),
    )
    def test_matches_naive_with_clamp(self, spec, batch, data):
        n, widths, seed, spread = spec
        model = _build_made(n, widths, seed, spread)
        clamp = np.array(
            [
                data.draw(st.sampled_from([np.nan, 0.0, 1.0]), label=f"clamp[{i}]")
                for i in range(n)
            ]
        )
        x_fast = model.sample(
            batch, np.random.default_rng(seed), clamp=clamp, method="incremental"
        )
        x_slow = model.sample(
            batch, np.random.default_rng(seed), clamp=clamp, method="naive"
        )
        assert np.array_equal(x_fast, x_slow)
        fixed = ~np.isnan(clamp)
        assert np.array_equal(
            x_fast[:, fixed], np.broadcast_to(clamp[fixed], (batch, fixed.sum()))
        )

    @settings(**SETTINGS)
    @given(spec=made_specs())
    def test_random_mask_strategy_too(self, spec):
        n, widths, seed, _ = spec
        rng = np.random.default_rng(seed)
        model = MADE(
            n,
            hidden=widths if len(widths) > 1 else widths[0],
            rng=rng,
            mask_strategy="random",
        )
        x_fast = model.sample(32, np.random.default_rng(seed), method="incremental")
        x_slow = model.sample(32, np.random.default_rng(seed), method="naive")
        assert np.array_equal(x_fast, x_slow)


class TestKernelInterface:
    def test_supports_made_only(self, rng):
        from repro.models import MeanField

        assert supports_incremental(MADE(5, rng=rng))
        assert not supports_incremental(MeanField(5, rng=rng))

    def test_rejects_non_made(self, rng):
        from repro.models import MeanField

        with pytest.raises(TypeError):
            incremental_sample(MeanField(5, rng=rng), 4, rng)

    def test_rejects_bad_batch(self, rng):
        with pytest.raises(ValueError):
            incremental_sample(MADE(5, rng=rng), 0, rng)

    def test_cost_accounting_is_sublinear_in_n(self):
        """The whole point: measured cost ≪ the naive n passes."""
        rng = np.random.default_rng(0)
        model = MADE(64, rng=rng)
        result = incremental_sample(model, 128, np.random.default_rng(1))
        assert result.samples.shape == (128, 64)
        assert result.macs > 0
        assert result.forward_pass_equivalents < 2.0  # naive pays 64

    def test_clamp_validation_matches_naive(self, rng):
        model = MADE(4, rng=rng)
        with pytest.raises(ValueError):
            incremental_sample(model, 2, rng, clamp=np.array([0.5, np.nan, 0, 1]))
        with pytest.raises(ValueError):
            incremental_sample(model, 2, rng, clamp=np.zeros(3))
