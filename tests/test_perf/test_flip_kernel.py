"""Property tests: fused single-flip log-ψ deltas match dense evaluation.

The kernel's log-ratios ``log ψ(x^{(s)}) − log ψ(x)`` must agree with the
from-scratch dense computation to 1e-10 across random deep-MADE widths,
and ``local_energies`` must give identical answers on its fused and dense
paths.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.energy import local_energies
from repro.hamiltonians import MaxCut, TransverseFieldIsing
from repro.hamiltonians.base import SingleFlipRows
from repro.models import MADE
from repro.perf import flip_log_ratios, forward_cache, supports_flip_kernel
from repro.tensor.tensor import no_grad

SETTINGS = dict(max_examples=25, deadline=None, derandomize=True)


@st.composite
def made_specs(draw):
    n = draw(st.integers(min_value=1, max_value=14))
    depth = draw(st.integers(min_value=1, max_value=3))
    widths = [draw(st.integers(min_value=1, max_value=20)) for _ in range(depth)]
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return n, widths, seed


def _build(n, widths, seed, spread=0.7):
    rng = np.random.default_rng(seed)
    model = MADE(n, hidden=widths if len(widths) > 1 else widths[0], rng=rng)
    for p in model.parameters():
        p.data += rng.normal(size=p.shape) * spread
    return model


def _dense_ratios(model, x, sites):
    """Reference: from-scratch log ψ of every flipped neighbour."""
    bsz = x.shape[0]
    with no_grad():
        lp_x = model.log_psi(x).data
        out = np.empty((bsz, sites.size))
        for k, s in enumerate(sites):
            y = x.copy()
            y[:, s] = 1.0 - y[:, s]
            out[:, k] = model.log_psi(y).data - lp_x
    return out


class TestRatioIdentity:
    @settings(**SETTINGS)
    @given(spec=made_specs(), batch=st.integers(min_value=1, max_value=16))
    def test_matches_dense_all_sites(self, spec, batch):
        n, widths, seed = spec
        model = _build(n, widths, seed)
        x = (np.random.default_rng(seed + 1).random((batch, n)) < 0.5).astype(float)
        sites = np.arange(n)
        got, cache = flip_log_ratios(model, sites, x=x)
        expect = _dense_ratios(model, x, sites)
        assert np.allclose(got, expect, atol=1e-10)
        # The cache's log ψ is the one the training loop reuses.
        with no_grad():
            assert np.allclose(cache.log_psi, model.log_psi(x).data, atol=1e-10)

    @settings(**SETTINGS)
    @given(spec=made_specs(), data=st.data())
    def test_matches_dense_site_subsets(self, spec, data):
        n, widths, seed = spec
        model = _build(n, widths, seed)
        x = (np.random.default_rng(seed + 2).random((4, n)) < 0.5).astype(float)
        sites = np.array(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=n - 1),
                    unique=True,
                    max_size=n,
                ),
                label="sites",
            ),
            dtype=np.int64,
        )
        got, _ = flip_log_ratios(model, sites, x=x)
        expect = _dense_ratios(model, x, sites)
        assert got.shape == (4, sites.size)
        assert np.allclose(got, expect, atol=1e-10)

    def test_cache_reuse(self, rng):
        model = _build(8, [30], 3)
        x = (rng.random((5, 8)) < 0.5).astype(float)
        cache = forward_cache(model, x)
        got, _ = flip_log_ratios(model, np.arange(8), cache=cache)
        assert np.allclose(got, _dense_ratios(model, x, np.arange(8)), atol=1e-10)

    def test_needs_x_or_cache(self, rng):
        model = _build(4, [10], 0)
        with pytest.raises(ValueError):
            flip_log_ratios(model, np.arange(4))

    def test_rejects_out_of_range_sites(self, rng):
        model = _build(4, [10], 0)
        x = np.zeros((2, 4))
        with pytest.raises(ValueError):
            flip_log_ratios(model, np.array([4]), x=x)


class TestLocalEnergyPaths:
    @settings(**SETTINGS)
    @given(
        n=st.integers(min_value=2, max_value=10),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_fused_equals_dense_on_tim(self, n, seed):
        model = _build(n, [3 * n], seed)
        ham = TransverseFieldIsing.random(n, seed=seed)
        x = (np.random.default_rng(seed).random((8, n)) < 0.5).astype(float)
        fused = local_energies(model, ham, x, fast=True)
        dense = local_energies(model, ham, x, fast=False)
        assert np.allclose(fused, dense, atol=1e-9)

    def test_fused_is_the_default_for_made_and_flips(self, rng, monkeypatch):
        """Auto dispatch must never fall back to materialising neighbours."""
        model = _build(6, [12], 5)
        ham = TransverseFieldIsing.random(6, seed=5)

        def boom(x):
            raise AssertionError("dense connected() path used despite flip structure")

        monkeypatch.setattr(ham, "connected", boom)
        x = (rng.random((4, 6)) < 0.5).astype(float)
        energies = local_energies(model, ham, x)
        assert np.all(np.isfinite(energies))

    def test_fast_true_requires_support(self, rng):
        from repro.models import RBM

        ham = TransverseFieldIsing.random(4, seed=0)
        with pytest.raises(ValueError):
            local_energies(RBM(4, rng=rng), ham, np.zeros((2, 4)), fast=True)

    def test_diagonal_hamiltonian_short_circuits(self, rng):
        model = _build(8, [10], 1)
        ham = MaxCut.random(8, seed=1)
        x = (rng.random((5, 8)) < 0.5).astype(float)
        assert np.allclose(local_energies(model, ham, x), ham.diagonal(x))
        energies, lp = local_energies(model, ham, x, return_log_psi=True)
        with no_grad():
            assert np.allclose(lp, model.log_psi(x).data)


class TestFlipStructure:
    def test_zzx_flip_list_matches_connected(self):
        ham = TransverseFieldIsing.random(7, seed=11)
        flips = ham.single_flips()
        x = (np.random.default_rng(0).random((3, 7)) < 0.5).astype(float)
        nbrs, amps = ham.connected(x)
        assert flips.k == nbrs.shape[1]
        for k in range(flips.k):
            expect = x.copy()
            expect[:, flips.sites[k]] = 1.0 - expect[:, flips.sites[k]]
            assert np.array_equal(nbrs[:, k], expect)
            assert np.allclose(amps[:, k], flips.amplitudes[k])

    def test_maxcut_has_empty_flip_list(self):
        assert MaxCut.random(6, seed=0).single_flips().k == 0

    def test_pauli_pure_x_supported(self):
        from repro.hamiltonians.pauli import PauliStringHamiltonian

        ham = PauliStringHamiltonian(
            4, [("X0", -0.5), ("X2", -1.0), ("X0", -0.25), ("Z1 Z3", 0.7)]
        )
        flips = ham.single_flips()
        assert flips is not None
        assert np.array_equal(flips.sites, [0, 2])
        assert np.allclose(flips.amplitudes, [-0.75, -1.0])

    def test_pauli_mixed_terms_unsupported(self):
        from repro.hamiltonians.pauli import PauliStringHamiltonian

        assert (
            PauliStringHamiltonian(4, [("Z0 X1", -0.5)], check=False).single_flips()
            is None
        )
        assert PauliStringHamiltonian(4, [("X0 X1", -0.5)]).single_flips() is None

    def test_single_flip_rows_validation(self):
        with pytest.raises(ValueError):
            SingleFlipRows(sites=np.array([0, 0]), amplitudes=np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            SingleFlipRows(sites=np.array([0, 1]), amplitudes=np.array([1.0]))

    def test_supports_flip_kernel_flags(self, rng):
        from repro.models import RBM

        assert supports_flip_kernel(MADE(4, rng=rng))
        assert not supports_flip_kernel(RBM(4, rng=rng))
