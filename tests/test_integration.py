"""End-to-end integration scenarios crossing subsystem boundaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import VQMC, History
from repro.exact import ground_state
from repro.hamiltonians import IsingQUBO, LatticeTFIM, MaxCut, TransverseFieldIsing
from repro.models import MADE, RBM, MeanField
from repro.optim import SGD, Adam, StochasticReconfiguration
from repro.samplers import AutoregressiveSampler, MetropolisSampler
from repro.utils.runlog import RunLogger


class TestModelSamplerMatrix:
    """Every legal (model, sampler) pairing runs through the full pipeline."""

    @pytest.mark.parametrize(
        "model_cls,sampler_cls",
        [
            (MADE, AutoregressiveSampler),
            (MADE, MetropolisSampler),  # ablation pairing
            (MeanField, AutoregressiveSampler),
            (RBM, MetropolisSampler),
        ],
    )
    def test_pairing_trains(self, model_cls, sampler_cls, small_tim, rng):
        model = model_cls(6, rng=rng)
        sampler = (
            sampler_cls()
            if sampler_cls is AutoregressiveSampler
            else sampler_cls(n_chains=2, burn_in=50)
        )
        vqmc = VQMC(model, small_tim, sampler, Adam(model.parameters()), seed=1)
        first = vqmc.step(batch_size=128).stats.mean
        vqmc.run(40, batch_size=128)
        final = vqmc.evaluate(512).mean
        assert final < first + 0.5  # training does not regress


class TestHamiltonianMatrix:
    """Every Hamiltonian type optimises with the default stack."""

    @pytest.mark.parametrize(
        "make_ham",
        [
            lambda: TransverseFieldIsing.random(7, seed=1),
            lambda: MaxCut.random(7, seed=2),
            lambda: IsingQUBO(np.random.default_rng(3).normal(size=(7, 7))),
            lambda: LatticeTFIM((7,), field=0.8),
        ],
    )
    def test_energy_approaches_ground_state(self, make_ham, rng):
        ham = make_ham()
        model = MADE(7, hidden=14, rng=rng)
        vqmc = VQMC(
            model, ham, AutoregressiveSampler(),
            SGD(model.parameters(), lr=0.1),
            sr=StochasticReconfiguration(), seed=4,
        )
        vqmc.run(120, batch_size=256)
        exact = ground_state(ham).energy
        final = vqmc.evaluate(1024).mean
        gap = abs(final - exact) / max(abs(exact), 1.0)
        assert gap < 0.08, f"{type(ham).__name__}: {final} vs exact {exact}"


class TestRunLogger:
    def test_logs_structured_records(self, small_tim, rng, tmp_path):
        model = MADE(6, rng=rng)
        vqmc = VQMC(
            model, small_tim, AutoregressiveSampler(), Adam(model.parameters()),
            seed=1,
        )
        log = tmp_path / "run.jsonl"
        vqmc.run(5, batch_size=32, callbacks=[RunLogger(log, meta={"tag": "it"})])
        records = RunLogger.read(log)
        assert records[0]["event"] == "run_begin"
        assert records[0]["tag"] == "it"
        assert records[0]["model"] == "MADE"
        steps = [r for r in records if r["event"] == "step"]
        assert len(steps) == 5
        assert all(np.isfinite(s["energy"]) for s in steps)
        assert records[-1]["event"] == "run_end"
        assert records[-1]["global_step"] == 5

    def test_appends_across_runs(self, small_tim, rng, tmp_path):
        model = MADE(6, rng=rng)
        vqmc = VQMC(
            model, small_tim, AutoregressiveSampler(), Adam(model.parameters()),
            seed=1,
        )
        log = tmp_path / "run.jsonl"
        vqmc.run(2, batch_size=16, callbacks=[RunLogger(log)])
        vqmc.run(3, batch_size=16, callbacks=[RunLogger(log)])
        records = RunLogger.read(log)
        assert sum(r["event"] == "run_begin" for r in records) == 2
        assert sum(r["event"] == "step" for r in records) == 5


class TestCrossValidation:
    def test_sr_fisher_agrees_with_mean_field_closed_form(self, rng):
        """The SR machinery, fed a MeanField's per-sample scores over a large
        exact-sampled batch, must recover the closed-form Fisher matrix."""
        from repro.optim.sr import StochasticReconfiguration as SR

        mf = MeanField(5, rng=rng)
        mf.logits.data[...] = rng.normal(0, 0.8, size=5)
        x = mf.sample(300000, rng)
        _, o = mf.log_psi_and_grads(x)
        s_emp = SR.fisher_matrix(o)
        assert np.allclose(s_emp, mf.exact_fisher(), atol=2e-3)

    def test_history_energy_matches_runlog(self, small_tim, rng, tmp_path):
        model = MADE(6, rng=rng)
        vqmc = VQMC(
            model, small_tim, AutoregressiveSampler(), Adam(model.parameters()),
            seed=1,
        )
        hist = History()
        log = tmp_path / "r.jsonl"
        vqmc.run(4, batch_size=32, callbacks=[hist, RunLogger(log)])
        steps = [r for r in RunLogger.read(log) if r["event"] == "step"]
        assert np.allclose([s["energy"] for s in steps], hist.energy)

    def test_two_exact_solvers_and_vqmc_triangle(self, rng):
        """eigsh, our Lanczos and VQMC agree on the same instance."""
        from repro.exact import lanczos_ground_state

        ham = TransverseFieldIsing.random(8, seed=11)
        e1 = ground_state(ham).energy
        e2 = lanczos_ground_state(ham).energy
        assert e1 == pytest.approx(e2, abs=1e-8)
        model = MADE(8, hidden=20, rng=rng)
        vqmc = VQMC(
            model, ham, AutoregressiveSampler(),
            SGD(model.parameters(), lr=0.1),
            sr=StochasticReconfiguration(), seed=5,
        )
        vqmc.run(150, batch_size=512)
        assert vqmc.evaluate(2048).mean == pytest.approx(e1, abs=0.25)
