"""Exact diagonalisation: our Lanczos vs scipy vs dense vs brute force."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exact import (
    Lanczos,
    brute_force_ground_state,
    brute_force_max_cut,
    ground_state,
    lanczos_ground_state,
)
from repro.hamiltonians import MaxCut, TransverseFieldIsing


class TestGroundState:
    def test_matches_dense_eigh(self, small_tim):
        gs = ground_state(small_tim)
        vals = np.linalg.eigvalsh(small_tim.to_dense())
        assert gs.energy == pytest.approx(vals[0], abs=1e-9)

    def test_vector_is_eigenvector(self, small_tim):
        gs = ground_state(small_tim)
        mat = small_tim.to_dense()
        assert np.allclose(mat @ gs.vector, gs.energy * gs.vector, atol=1e-8)

    def test_ground_state_sign_free(self, small_tim):
        """Perron–Frobenius: the ground vector can be chosen non-negative."""
        gs = ground_state(small_tim)
        v = gs.vector * np.sign(gs.vector[np.argmax(np.abs(gs.vector))])
        assert np.all(v >= -1e-9)

    def test_probabilities_sum_to_one(self, small_tim):
        assert ground_state(small_tim).probabilities.sum() == pytest.approx(1.0)

    def test_sparse_path_used_for_larger_n(self):
        ham = TransverseFieldIsing.random(8, seed=2)
        gs = ground_state(ham)
        vals = np.linalg.eigvalsh(ham.to_dense())
        assert gs.energy == pytest.approx(vals[0], abs=1e-8)


class TestLanczos:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_eigsh(self, seed):
        ham = TransverseFieldIsing.random(8, seed=seed)
        ours = lanczos_ground_state(ham)
        ref = ground_state(ham)
        assert ours.converged
        assert ours.energy == pytest.approx(ref.energy, abs=1e-8)
        # Eigenvectors agree up to sign.
        overlap = abs(ours.vector @ ref.vector)
        assert overlap == pytest.approx(1.0, abs=1e-6)

    def test_dense_symmetric_matrix(self, rng):
        a = rng.normal(size=(60, 60))
        a = (a + a.T) / 2
        res = Lanczos(max_iter=120).minimal_eigenpair(a)
        assert res.energy == pytest.approx(np.linalg.eigvalsh(a)[0], abs=1e-7)

    def test_krylov_exhaustion_small_space(self):
        a = np.diag([3.0, 1.0, 2.0])
        res = Lanczos(max_iter=50).minimal_eigenpair(a)
        assert res.energy == pytest.approx(1.0)
        assert res.converged

    def test_residual_reported(self, small_tim):
        res = lanczos_ground_state(small_tim)
        mat = small_tim.to_dense()
        explicit = np.linalg.norm(mat @ res.vector - res.energy * res.vector)
        assert res.residual_norm == pytest.approx(explicit, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            Lanczos(max_iter=1)
        with pytest.raises(TypeError):
            Lanczos().minimal_eigenpair(object())
        with pytest.raises(ValueError):
            Lanczos().minimal_eigenpair(np.zeros((2, 3)))


class TestBruteForce:
    def test_max_cut_on_known_graph(self):
        # 4-cycle: max cut = 4 (alternate sides).
        w = np.zeros((4, 4))
        for i in range(4):
            w[i, (i + 1) % 4] = w[(i + 1) % 4, i] = 1.0
        val, bits = brute_force_max_cut(w)
        assert val == 4.0
        assert bits[0] != bits[1] and bits[1] != bits[2]

    def test_max_cut_complete_graph(self):
        # K4 with unit weights: best cut = 4 (2-2 split).
        w = 1.0 - np.eye(4)
        val, _ = brute_force_max_cut(w)
        assert val == 4.0

    def test_ground_state_diagonal_hamiltonian(self):
        mc = MaxCut.random(8, seed=1)
        e, bits = brute_force_ground_state(mc)
        opt, _ = brute_force_max_cut(mc.adjacency)
        assert e == pytest.approx(-opt)
        assert mc.cut_value(bits[None])[0] == pytest.approx(opt)

    def test_ground_state_offdiagonal_falls_back_to_eigh(self, small_tim):
        e, vec = brute_force_ground_state(small_tim)
        assert e == pytest.approx(ground_state(small_tim).energy, abs=1e-9)

    def test_size_limits(self):
        with pytest.raises(ValueError):
            brute_force_max_cut(np.zeros((30, 30)))
