"""CLI smoke and behaviour tests (driven through main(argv))."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.problem == "tim"
        assert args.iterations == 300
        assert args.batch_size == 1024

    def test_invalid_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--arch", "gpt"])


class TestCommands:
    def test_exact_chain_prints_three_solvers(self, capsys):
        rc = main(["exact", "--problem", "chain", "--n", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "eigsh" in out and "Lanczos" in out and "Jordan-Wigner" in out
        # All three energies shown must agree.
        vals = [float(line.split(":")[1].split("(")[0])
                for line in out.splitlines() if ":" in line]
        assert np.allclose(vals, vals[0], atol=1e-6)

    def test_train_tim_runs_and_reports(self, capsys):
        rc = main([
            "train", "--n", "8", "--iterations", "10",
            "--batch-size", "64", "--quiet",
        ])
        assert rc == 0
        assert "final: E =" in capsys.readouterr().out

    def test_train_writes_log_and_checkpoint(self, tmp_path, capsys):
        log = tmp_path / "run.jsonl"
        ckpt = tmp_path / "model.npz"
        rc = main([
            "train", "--n", "6", "--iterations", "5", "--batch-size", "32",
            "--quiet", "--log", str(log), "--checkpoint", str(ckpt),
        ])
        assert rc == 0
        assert log.exists() and ckpt.exists()
        from repro.utils.runlog import RunLogger

        records = RunLogger.read(log)
        assert sum(r["event"] == "step" for r in records) == 5

    def test_maxcut_table_includes_optimum_for_small_n(self, capsys):
        rc = main([
            "maxcut", "--n", "10", "--iterations", "20", "--batch-size", "64",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        for method in ("Random", "Goemans-Williamson", "Burer-Monteiro",
                       "NES", "VQMC", "exact optimum"):
            assert method in out

    def test_sweep_aggregates(self, capsys):
        rc = main([
            "sweep", "--problem", "maxcut", "--n", "8",
            "--optimizer", "adam", "--seeds", "2",
            "--iterations", "5", "--batch-size", "32",
            "--metric", "best_cut",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best_cut" in out and "adam" in out
