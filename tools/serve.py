#!/usr/bin/env python3
"""CLI for the VQMC job server (:mod:`repro.serve`).

Usage::

    python tools/serve.py start --root runs/serve --port 8642
    python tools/serve.py submit --url http://127.0.0.1:8642 \\
        --problem tim --n 12 --arch made --iterations 200
    python tools/serve.py status  --url ... job000001
    python tools/serve.py result  --url ... job000001
    python tools/serve.py cancel  --url ... job000001
    python tools/serve.py energy  --url ... --problem tim --n 12 --arch made
    python tools/serve.py sample  --url ... --problem tim --n 12 --arch made
    python tools/serve.py smoke                       # self-contained e2e

``start`` runs a server in the foreground until interrupted. Every other
network subcommand is a thin :class:`repro.serve.ServeClient` call that
prints the server's JSON response.

``smoke`` is the CI entry point: it boots a server on an ephemeral port,
trains a tiny job over HTTP, fires concurrent energy queries, and asserts
the documented coalescing contract (``ceil(B/window)`` forwards, counted
via ``serve.batcher.forwards`` — never timing) plus cancel-and-resume
behaviour. Exit codes: 0 ok, 1 assertion failure, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys
import tempfile
import threading
import time


def _bootstrap() -> None:
    """Make ``repro`` importable when run from a source checkout."""
    try:
        import repro.serve  # noqa: F401
    except ImportError:
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        sys.path.insert(0, str(src))


def _print_json(doc) -> None:
    print(json.dumps(doc, indent=2, sort_keys=True))


def _add_model_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--problem", default="tim", help="tim | maxcut | chain")
    parser.add_argument("--n", type=int, default=10, help="system size")
    parser.add_argument("--instance-seed", type=int, default=0)
    parser.add_argument("--arch", default="made",
                        help="made | rbm | mean_field | rnn")
    parser.add_argument("--hidden", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)


def _model_fields(args: argparse.Namespace) -> dict:
    doc = {
        "problem": args.problem,
        "n": args.n,
        "instance_seed": args.instance_seed,
        "arch": args.arch,
        "seed": args.seed,
    }
    if args.hidden is not None:
        doc["hidden"] = args.hidden
    return doc


def _client(args: argparse.Namespace):
    from repro.serve import ServeClient

    return ServeClient(args.url, timeout=args.timeout)


# -- subcommands -----------------------------------------------------------------


def cmd_start(args: argparse.Namespace) -> int:
    from repro.serve import VQMCServer

    server = VQMCServer(
        args.root,
        workers=args.workers,
        cache_capacity=args.cache_capacity,
        batch_window=args.batch_window,
        batch_linger_s=args.batch_linger,
        max_pending=args.max_pending,
        max_job_seconds=args.max_job_seconds,
        max_backlog_seconds=args.max_backlog_seconds,
    )
    port = server.start_http(host=args.host, port=args.port)
    print(f"[serve] listening on http://{args.host}:{port} (root={args.root})")
    try:
        threading.Event().wait()  # foreground until Ctrl-C
    except KeyboardInterrupt:
        print("\n[serve] shutting down")
    finally:
        server.shutdown()
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    spec = _model_fields(args)
    spec.update(
        iterations=args.iterations,
        batch_size=args.batch_size,
        optimizer=args.optimizer,
        checkpoint_every=args.checkpoint_every,
        priority=args.priority,
        resume=args.resume,
    )
    if args.sampler is not None:
        spec["sampler"] = args.sampler
    reply = _client(args).submit(spec)
    _print_json(reply)
    if args.wait:
        _print_json(_client(args).wait(reply["id"], timeout=args.timeout))
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    client = _client(args)
    _print_json(client.status(args.job_id) if args.job_id else client.jobs())
    return 0


def cmd_result(args: argparse.Namespace) -> int:
    _print_json(_client(args).result(args.job_id))
    return 0


def cmd_cancel(args: argparse.Namespace) -> int:
    _print_json(_client(args).cancel(args.job_id))
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    query = _model_fields(args)
    query["batch_size"] = args.batch_size
    if args.job_id:
        query = {"job_id": args.job_id, "batch_size": args.batch_size}
    client = _client(args)
    reply = client.energy(query) if args.kind == "energy" else client.sample(query)
    _print_json(reply)
    return 0


def cmd_smoke(args: argparse.Namespace) -> int:
    """Self-contained e2e used by CI: HTTP job lifecycle + coalescing."""
    from repro.serve import ServeClient, VQMCServer

    window = 4
    root = args.root or tempfile.mkdtemp(prefix="serve-smoke-")
    server = VQMCServer(
        root, workers=2, batch_window=window, batch_linger_s=0.02
    )
    failures: list[str] = []

    def check(ok: bool, what: str) -> None:
        print(f"[smoke] {'ok  ' if ok else 'FAIL'} {what}")
        if not ok:
            failures.append(what)

    try:
        port = server.start_http()
        client = ServeClient(f"http://127.0.0.1:{port}", timeout=30.0)
        check(client.healthz()["status"] == "ok", "healthz")

        spec = {
            "problem": "tim", "n": 6, "arch": "made", "hidden": 16,
            "seed": 3, "iterations": 6, "batch_size": 32,
            "checkpoint_every": 2,
        }
        job = client.submit(spec)
        status = client.wait(job["id"], timeout=120.0)
        check(status["state"] == "completed",
              f"job completed (state={status['state']}, err={status['error']})")
        check(status["step"] == spec["iterations"], "job ran all steps")
        result = client.result(job["id"])
        check("mean" in result["result"], "result carries final energy stats")

        # Coalescing: B concurrent energy queries -> ceil(B/window) forwards.
        before = server.batcher.forwards
        b = 8
        replies: list[dict | None] = [None] * b
        errors: list[BaseException] = []

        def fire(i: int) -> None:
            try:
                replies[i] = client.energy(
                    {"job_id": job["id"], "batch_size": 16}
                )
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=fire, args=(i,)) for i in range(b)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        check(not errors, f"concurrent queries succeeded ({errors[:1]})")
        forwards = server.batcher.forwards - before
        check(forwards <= math.ceil(b / window) + 1,
              f"coalesced: {b} queries in {forwards} forwards (window={window})")
        check(all(r and r["count"] == 16 for r in replies),
              "every client got stats over exactly its own batch")

        # Cancel leaves a restorable checkpoint; resume picks it up.
        slow = dict(spec, seed=4, iterations=500, checkpoint_every=1)
        job2 = client.submit(slow)
        deadline = time.monotonic() + 60.0
        while client.status(job2["id"])["step"] < 2:
            if time.monotonic() > deadline:
                break
            time.sleep(0.01)
        client.cancel(job2["id"])
        status2 = client.wait(job2["id"], timeout=60.0)
        check(status2["state"] == "cancelled", "cancel mid-run")
        check(status2["checkpoint"] is not None, "cancelled job left checkpoint")
        resumed = client.submit(dict(slow, iterations=status2["step"] + 2,
                                     resume=True))
        status3 = client.wait(resumed["id"], timeout=120.0)
        check(status3["state"] == "completed", "resume from cancel completed")
    finally:
        server.shutdown()
    print(f"[smoke] {'PASS' if not failures else 'FAIL'} "
          f"({len(failures)} failure(s)) root={root}")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    _bootstrap()
    parser = argparse.ArgumentParser(
        prog="tools/serve.py",
        description="run and talk to the VQMC job server",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("start", help="run a server in the foreground")
    p.add_argument("--root", default="runs/serve")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--cache-capacity", type=int, default=8)
    p.add_argument("--batch-window", type=int, default=8)
    p.add_argument("--batch-linger", type=float, default=0.002)
    p.add_argument("--max-pending", type=int, default=64)
    p.add_argument("--max-job-seconds", type=float, default=None)
    p.add_argument("--max-backlog-seconds", type=float, default=None)
    p.set_defaults(fn=cmd_start)

    def network(name: str, help_: str) -> argparse.ArgumentParser:
        q = sub.add_parser(name, help=help_)
        q.add_argument("--url", default="http://127.0.0.1:8642")
        q.add_argument("--timeout", type=float, default=120.0)
        return q

    p = network("submit", "submit a training job")
    _add_model_args(p)
    p.add_argument("--iterations", type=int, default=100)
    p.add_argument("--batch-size", type=int, default=256)
    p.add_argument("--sampler", default=None,
                   help="auto | mcmc | tempering (default: by architecture)")
    p.add_argument("--optimizer", default="adam")
    p.add_argument("--checkpoint-every", type=int, default=10)
    p.add_argument("--priority", type=int, default=0)
    p.add_argument("--resume", action="store_true",
                   help="resume from the model key's newest checkpoint")
    p.add_argument("--wait", action="store_true",
                   help="block until the job reaches a terminal state")
    p.set_defaults(fn=cmd_submit)

    p = network("status", "job status (or all jobs)")
    p.add_argument("job_id", nargs="?", default=None)
    p.set_defaults(fn=cmd_status)

    p = network("result", "terminal job's result document")
    p.add_argument("job_id")
    p.set_defaults(fn=cmd_result)

    p = network("cancel", "cancel a queued or running job")
    p.add_argument("job_id")
    p.set_defaults(fn=cmd_cancel)

    for kind in ("energy", "sample"):
        p = network(kind, f"{kind} query against a warm model")
        _add_model_args(p)
        p.add_argument("--batch-size", type=int, default=64)
        p.add_argument("--job-id", default=None,
                       help="query a submitted job's model instead")
        p.set_defaults(fn=cmd_query, kind=kind)

    p = sub.add_parser("smoke", help="self-contained e2e (CI entry point)")
    p.add_argument("--root", default=None,
                   help="server root (default: fresh temp dir)")
    p.set_defaults(fn=cmd_smoke)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
