#!/usr/bin/env python3
"""Live/post-mortem health monitor — the judgement half of the obs CLI
(``tools/trace.py`` reads spans; this reads *runs*).

Usage::

    python tools/monitor.py health runs/run.jsonl            # classify a stream
    python tools/monitor.py health runs/ --follow            # tail a live run
    python tools/monitor.py health runs/ --json --fail-on-warn
    python tools/monitor.py flight runs/                     # read black boxes
    python tools/monitor.py flight runs/flight.rank002.json --json

``health`` replays one or more metric streams — ``RunLogger`` JSONL files
and/or flight-recorder dumps — through the :mod:`repro.obs.health` rule
engine (the *same* rules that run live, so online and offline verdicts
can never disagree) and prints a per-source verdict table. ``--follow``
keeps tailing JSONL files and re-judging as lines arrive.

``flight`` inspects ``flight.rankNNN.json`` black boxes: verifies each
CRC, prints per-rank reason / last completed step / health verdict, and
names the failed ranks (from the dumping rank's own crash record and from
the survivors' epoch-tagged ``shrink`` events).

Exit codes: 0 healthy, 1 any CRIT verdict / failed rank / invalid dump
(WARN also fails with ``--fail-on-warn``), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time


def _bootstrap() -> None:
    """Make ``repro`` importable when run from a source checkout."""
    try:
        import repro.obs  # noqa: F401
    except ImportError:
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        sys.path.insert(0, str(src))


def _expand(paths: list[str]) -> list[pathlib.Path]:
    out: list[pathlib.Path] = []
    for raw in paths:
        p = pathlib.Path(raw)
        if p.is_dir():
            out.extend(sorted(p.glob("*.jsonl")))
            out.extend(sorted(p.glob("flight.rank*.json")))
        elif p.exists():
            out.append(p)
        else:
            raise FileNotFoundError(raw)
    if not out:
        raise FileNotFoundError(
            f"nothing to monitor under {', '.join(paths)} "
            "(expected *.jsonl streams or flight.rank*.json dumps)"
        )
    return out


def _frames_from_jsonl(path: pathlib.Path) -> list[dict]:
    """``RunLogger`` step records are already health frames (same keys)."""
    frames = []
    with path.open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail line of a live run
            if record.get("event") == "step":
                frames.append(record)
    return frames


def _is_flight(path: pathlib.Path) -> bool:
    return path.name.startswith("flight.rank") and path.suffix == ".json"


def _load_source(path: pathlib.Path):
    """Returns ``(frames, doc)``; ``doc`` is the flight document or None."""
    from repro.obs import load_flight_dump

    if _is_flight(path):
        doc = load_flight_dump(path)
        return list(doc["body"].get("frames", [])), doc
    return _frames_from_jsonl(path), None


def cmd_health(args: argparse.Namespace) -> int:
    from repro.obs import CRIT, WARN, replay_frames, worst_verdict
    from repro.obs.flight import FlightDumpError
    from repro.utils.tables import format_table

    paths = _expand(args.paths)
    offsets = {p: 0 for p in paths}
    monitors: dict[pathlib.Path, object] = {}
    invalid: list[str] = []
    deadline = time.monotonic() + args.follow_seconds if args.follow else None

    while True:
        for path in paths:
            try:
                frames, _ = _load_source(path)
            except FlightDumpError as exc:
                if str(exc) not in invalid:
                    invalid.append(str(exc))
                continue
            fresh = frames[offsets[path]:]
            offsets[path] = len(frames)
            if path not in monitors:
                monitors[path] = replay_frames([])
            for frame in fresh:
                monitors[path].observe(frame)
        overall = worst_verdict(m.verdict for m in monitors.values())
        if not args.follow or overall == CRIT or time.monotonic() >= deadline:
            break
        time.sleep(args.poll)

    rows, payload = [], {}
    for path in paths:
        monitor = monitors.get(path)
        if monitor is None:
            continue
        report = monitor.report()
        bad = {
            name: info
            for name, info in report["rules"].items()
            if info["verdict"] != "OK"
        }
        detail = "; ".join(
            f"{name}={info['verdict']} ({info['detail']})"
            for name, info in sorted(bad.items())
        )
        rows.append(
            [path.name, report["verdict"], report["steps"],
             report["last_step"], detail or "-"]
        )
        payload[path.name] = report

    if args.json:
        print(json.dumps({"sources": payload, "invalid": invalid}, indent=2))
    else:
        print(
            format_table(
                ["source", "verdict", "steps", "last step", "tripped rules"],
                rows,
                title="health verdicts",
            )
        )
        for line in invalid:
            print(f"INVALID {line}", file=sys.stderr)
    overall = worst_verdict(m.verdict for m in monitors.values())
    if invalid or overall == CRIT:
        return 1
    if overall == WARN and args.fail_on_warn:
        return 1
    return 0


def cmd_flight(args: argparse.Namespace) -> int:
    from repro.obs import replay_frames
    from repro.obs.flight import FlightDumpError, load_flight_dump
    from repro.utils.tables import format_table

    paths = [p for p in _expand(args.paths) if _is_flight(p)]
    if not paths:
        raise FileNotFoundError(
            f"no flight.rank*.json dumps under {', '.join(args.paths)}"
        )
    rows, payload, invalid = [], {}, []
    failed_ranks: dict[int, str] = {}
    last_steps: dict[int, int | None] = {}
    restored_step = None
    for path in paths:
        try:
            doc = load_flight_dump(path)
        except FlightDumpError as exc:
            invalid.append(str(exc))
            continue
        body = doc["body"]
        rank = int(body.get("rank", -1))
        reason = body.get("reason", "?")
        last_steps[rank] = body.get("last_step")
        # The dying rank's own record of why it died... unless a later
        # recovery event shows it survived that failure (survivors see the
        # peer's RankFailure as a crash too, then shrink and carry on).
        own_failure = None
        for event in body.get("events", []):
            kind = event.get("kind")
            if kind in ("crash", "injected_crash", "signal", "evicted"):
                own_failure = str(event.get("error") or kind)
            elif kind in ("shrink", "grow", "rejoin"):
                own_failure = None
            # ...and the survivors' record of who they lost.
            if kind == "shrink":
                for lost in event.get("failed", []):
                    failed_ranks.setdefault(int(lost), "detected by survivors")
                if event.get("restored_step") is not None:
                    restored_step = int(event["restored_step"])
        if own_failure is not None:
            failed_ranks[rank] = own_failure
        # Verdict: prefer the embedded live report, else replay the frames.
        health = body.get("health")
        verdict = (
            health["verdict"]
            if health is not None
            else replay_frames(body.get("frames", [])).verdict
        )
        rows.append(
            [path.name, rank, reason, body.get("last_step"),
             len(body.get("frames", [])), verdict]
        )
        payload[path.name] = {
            "rank": rank,
            "reason": reason,
            "last_step": body.get("last_step"),
            "frames": len(body.get("frames", [])),
            "events": body.get("events", []),
            "verdict": verdict,
        }

    summary = {
        "failed_ranks": {
            str(r): {"cause": cause, "last_completed_step": last_steps.get(r)}
            for r, cause in sorted(failed_ranks.items())
        },
        "restored_step": restored_step,
        "invalid": invalid,
    }
    if args.json:
        print(json.dumps({"dumps": payload, **summary}, indent=2))
    else:
        print(
            format_table(
                ["dump", "rank", "reason", "last step", "frames", "verdict"],
                rows,
                title="flight recorder black boxes",
            )
        )
        if failed_ranks:
            for rank, cause in sorted(failed_ranks.items()):
                step = last_steps.get(rank)
                where = (
                    f"last completed step {step}"
                    if step is not None
                    else "no surviving frame record"
                )
                print(f"\nfailed rank {rank}: {cause} ({where})")
            if restored_step is not None:
                print(f"survivors restored from step {restored_step}")
        else:
            print("\nno failed ranks recorded")
        for line in invalid:
            print(f"INVALID {line}", file=sys.stderr)
    return 1 if (failed_ranks or invalid) else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tools/monitor.py",
        description="judge run health from JSONL streams and flight dumps",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_health = sub.add_parser("health", help="replay streams through the rules")
    p_health.add_argument("paths", nargs="+", help="jsonl/dump files or dirs")
    p_health.add_argument("--json", action="store_true", help="JSON output")
    p_health.add_argument(
        "--fail-on-warn",
        action="store_true",
        help="exit 1 on WARN as well as CRIT (strict CI gate)",
    )
    p_health.add_argument(
        "--follow",
        action="store_true",
        help="keep tailing JSONL sources, re-judging as lines arrive "
        "(stops early on the first CRIT)",
    )
    p_health.add_argument(
        "--poll", type=float, default=0.5, help="follow poll interval [s]"
    )
    p_health.add_argument(
        "--follow-seconds",
        type=float,
        default=30.0,
        help="give up following after this long (default 30)",
    )
    p_health.set_defaults(fn=cmd_health)

    p_flight = sub.add_parser("flight", help="read post-mortem black boxes")
    p_flight.add_argument("paths", nargs="+", help="dump files or directories")
    p_flight.add_argument("--json", action="store_true", help="JSON output")
    p_flight.set_defaults(fn=cmd_flight)

    args = parser.parse_args(argv)
    _bootstrap()
    try:
        return args.fn(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
