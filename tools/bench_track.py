#!/usr/bin/env python3
"""Perf-regression observatory over the committed ``BENCH_*.json`` corpus.

Every benchmark harness emits a machine-readable envelope
(``benchmarks/out/BENCH_<name>.json``, see ``benchmarks/_harness.emit_json``).
This tool turns those one-off snapshots into an enforced time series:

- ``ingest``  — normalise each benchmark's *headline metrics* (the spec
  below) into ``benchmarks/out/TRAJECTORY.json``, a provenance-stamped
  append-only ledger (one entry per benchmark per change: git SHA,
  hostname, timestamp, metrics). Re-ingesting unchanged results is a
  no-op, so the ledger only grows when the numbers move.
- ``check``   — gate a PR: compare the current ``BENCH_*.json`` files
  against each benchmark's latest ledger entry and fail (exit 1) when a
  metric regressed beyond its tolerance band
  (``max(rel_tol · |baseline|, abs_tol)`` in the *bad* direction —
  improvements always pass and are reported as such). ``--check`` as a
  bare flag is an alias so CI can run ``tools/bench_track.py --check``.
- ``show``    — render the trajectory of one or all benchmarks.

Headline metrics are declared per benchmark in :data:`HEADLINES` with a
direction (``higher``/``lower`` = which way is good) and a relative
tolerance sized to how the number is produced: deterministic counts
(communication volume, pass equivalents) get tight bands; wall-clock
measurements on shared CI runners get generous ones. Unknown
``BENCH_*.json`` files are reported as *untracked*, never failed — adding
a benchmark before adding its spec must not break the gate.

Exit codes: 0 ok, 1 regression / corrupt ledger, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

OUT_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "out"
LEDGER_NAME = "TRAJECTORY.json"

#: trajectory-ledger schema identifier
LEDGER_SCHEMA = "repro.bench-trajectory/1"


class Metric:
    """One headline metric: where it lives in the envelope and how much it
    may regress before the gate trips."""

    def __init__(self, name: str, path: str, direction: str,
                 rel_tol: float, abs_tol: float = 0.0):
        if direction not in ("higher", "lower"):
            raise ValueError(f"direction must be higher/lower, got {direction}")
        self.name = name
        self.path = path  # dotted keys; [-1] = last list element
        self.direction = direction
        self.rel_tol = rel_tol
        self.abs_tol = abs_tol

    def extract(self, doc: dict):
        node = doc
        for part in self.path.split("."):
            while part.endswith("[-1]"):
                part = part[: -len("[-1]")]
                if part:
                    node = node[part]
                    part = ""
                node = node[-1]
            if part:
                node = node[part]
        return float(node)

    def band(self, baseline: float) -> float:
        return max(self.rel_tol * abs(baseline), self.abs_tol)

    def regressed(self, baseline: float, current: float) -> bool:
        delta = current - baseline
        bad = -delta if self.direction == "higher" else delta
        return bad > self.band(baseline)


# Tolerance tiers: DET = deterministic (counts, byte volumes, analytic
# ratios) — anything beyond float noise is a real change; TIME = wall-clock
# on shared runners — generous; PCT = overhead percentages derived from
# paired timings — noisy in the extreme, gate only on blowups.
DET, TIME, PCT = 0.02, 0.60, 2.0

HEADLINES: dict[str, list[Metric]] = {
    "compiled_step": [
        Metric("grad_speedup", "results[-1].grad_speedup", "higher", TIME),
        Metric("per_sample_speedup", "results[-1].per_sample_speedup", "higher", TIME),
    ],
    "kernel_fastpaths": [
        Metric("sample_speedup", "results[-1].sample_speedup", "higher", TIME),
        Metric("local_energy_speedup", "results[-1].local_energy_speedup", "higher", TIME),
        Metric("combined_speedup", "results[-1].combined_speedup", "higher", TIME),
    ],
    "obs_overhead": [
        Metric("enabled_overhead_pct", "step.enabled_overhead_pct", "lower", PCT,
               abs_tol=5.0),
        Metric("instrumented_overhead_pct", "step.instrumented_overhead_pct",
               "lower", PCT, abs_tol=5.0),
        Metric("enabled_ns_per_span", "span_cost.enabled_ns_per_span", "lower", TIME,
               abs_tol=2000.0),
    ],
    "sanitizer_overhead": [
        Metric("comm_overhead_pct", "overhead_pct", "lower", PCT, abs_tol=5.0),
    ],
    "fault_recovery": [
        Metric("comm_overhead_pct", "overhead_pct", "lower", PCT, abs_tol=10.0),
    ],
    "sr_distributed": [
        Metric("volume_reduction", "headline.volume_reduction", "higher", DET),
        Metric("cg_rel_err", "headline.cg_rel_err_vs_serial_dense", "lower", DET,
               abs_tol=1e-9),
    ],
    "explore_coverage": [
        Metric("interleavings_per_s", "interleavings_per_s", "higher", TIME),
    ],
    "elastic_scaling": [
        Metric("recovered_fraction", "straggler.recovered_fraction", "higher", 0.25),
    ],
    "fig1_sampling_cost": [
        Metric("auto_incremental_pass_equivalents",
               "results[-1].auto_incremental_pass_equivalents", "lower", DET),
    ],
    "server_throughput": [
        Metric("throughput_ratio", "headline.throughput_ratio", "higher", TIME),
        Metric("queries_per_second", "headline.queries_per_second", "higher", TIME),
    ],
    "table1_training_time": [
        Metric("made_auto_seconds", "results[-1].made_auto_seconds", "lower", TIME),
    ],
}


def _read_bench(path: pathlib.Path) -> dict:
    """Backfill-tolerant envelope reader (v1 files lack git_sha/hostname);
    mirrors ``benchmarks/_harness.read_bench_json`` without importing the
    harness (which pulls in the full training stack)."""
    doc = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: not a benchmark envelope")
    doc.setdefault("benchmark", path.stem[len("BENCH_"):])
    doc.setdefault("schema_version", 1)
    doc.setdefault("git_sha", None)
    doc.setdefault("hostname", None)
    return doc


def _bench_files(out_dir: pathlib.Path) -> list[pathlib.Path]:
    if not out_dir.is_dir():
        raise FileNotFoundError(f"no benchmark output directory {out_dir}")
    return sorted(out_dir.glob("BENCH_*.json"))


def _load_ledger(out_dir: pathlib.Path) -> dict:
    path = out_dir / LEDGER_NAME
    if not path.exists():
        return {"schema": LEDGER_SCHEMA, "entries": []}
    ledger = json.loads(path.read_text(encoding="utf-8"))
    if ledger.get("schema") != LEDGER_SCHEMA or "entries" not in ledger:
        raise ValueError(f"{path}: not a {LEDGER_SCHEMA} ledger")
    return ledger


def _latest(ledger: dict, benchmark: str) -> dict | None:
    hit = None
    for entry in ledger["entries"]:
        if entry["benchmark"] == benchmark:
            hit = entry
    return hit


def _headline_values(doc: dict) -> tuple[dict[str, float], list[str]]:
    """Extract the declared metrics; missing paths are reported, not fatal
    (an old envelope predating a metric must not break ingestion)."""
    values, missing = {}, []
    for metric in HEADLINES.get(doc["benchmark"], []):
        try:
            values[metric.name] = metric.extract(doc)
        except (KeyError, IndexError, TypeError, ValueError):
            missing.append(metric.name)
    return values, missing


def cmd_ingest(args: argparse.Namespace) -> int:
    out_dir = pathlib.Path(args.out_dir)
    ledger = _load_ledger(out_dir)
    appended, unchanged, untracked = [], [], []
    for path in _bench_files(out_dir):
        doc = _read_bench(path)
        name = doc["benchmark"]
        if name not in HEADLINES:
            untracked.append(name)
            continue
        values, missing = _headline_values(doc)
        previous = _latest(ledger, name)
        if previous is not None and previous["metrics"] == values:
            unchanged.append(name)
            continue
        ledger["entries"].append(
            {
                "benchmark": name,
                "schema_version": doc["schema_version"],
                "git_sha": doc["git_sha"],
                "hostname": doc["hostname"],
                "unix_time": doc.get("unix_time"),
                "metrics": values,
                **({"missing_metrics": missing} if missing else {}),
            }
        )
        appended.append(name)
    ledger_path = out_dir / LEDGER_NAME
    ledger_path.write_text(json.dumps(ledger, indent=2) + "\n", encoding="utf-8")
    print(
        f"[bench-track] {ledger_path.name}: +{len(appended)} entr"
        f"{'y' if len(appended) == 1 else 'ies'} "
        f"({', '.join(appended) if appended else 'none'}), "
        f"{len(unchanged)} unchanged, {len(untracked)} untracked"
    )
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from repro.utils.tables import format_table

    out_dir = pathlib.Path(args.out_dir)
    try:
        ledger = _load_ledger(out_dir)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    rows, regressions, untracked = [], [], []
    for path in _bench_files(out_dir):
        doc = _read_bench(path)
        name = doc["benchmark"]
        if name not in HEADLINES:
            untracked.append(name)
            continue
        baseline = _latest(ledger, name)
        values, _ = _headline_values(doc)
        for metric in HEADLINES[name]:
            current = values.get(metric.name)
            base = (
                baseline["metrics"].get(metric.name)
                if baseline is not None
                else None
            )
            if current is None or base is None:
                rows.append([name, metric.name, base, current, "-", "no baseline"])
                continue
            band = metric.band(base)
            if metric.regressed(base, current):
                status = "REGRESSED"
                regressions.append(
                    f"{name}.{metric.name}: {base:.4g} -> {current:.4g} "
                    f"({metric.direction} is better, band ±{band:.4g})"
                )
            elif (current - base if metric.direction == "higher"
                  else base - current) > band:
                status = "improved"
            else:
                status = "ok"
            rows.append(
                [name, metric.name, f"{base:.4g}", f"{current:.4g}",
                 f"±{band:.3g}", status]
            )
    if args.json:
        print(json.dumps(
            {"regressions": regressions, "untracked": untracked,
             "checked": len(rows)}, indent=2))
    else:
        print(format_table(
            ["benchmark", "metric", "baseline", "current", "band", "status"],
            rows, title="bench observatory: current vs. trajectory baseline"))
        if untracked:
            print(f"\nuntracked (no headline spec): {', '.join(untracked)}")
        if regressions:
            print("\nREGRESSIONS:")
            for line in regressions:
                print(f"  {line}")
        else:
            print("\nno regressions beyond tolerance bands")
    return 1 if regressions else 0


def cmd_show(args: argparse.Namespace) -> int:
    from repro.utils.tables import format_table

    ledger = _load_ledger(pathlib.Path(args.out_dir))
    rows = []
    for entry in ledger["entries"]:
        if args.benchmark and entry["benchmark"] != args.benchmark:
            continue
        for metric, value in sorted(entry["metrics"].items()):
            rows.append(
                [entry["benchmark"], metric, f"{value:.5g}",
                 entry.get("git_sha") or "-", entry.get("hostname") or "-"]
            )
    print(format_table(
        ["benchmark", "metric", "value", "git", "host"],
        rows, title="bench trajectory ledger"))
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # CI convenience: `tools/bench_track.py --check` == `... check`.
    if argv and argv[0] == "--check":
        argv[0] = "check"
    parser = argparse.ArgumentParser(
        prog="tools/bench_track.py",
        description="track and gate the BENCH_*.json perf trajectory",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_ingest = sub.add_parser("ingest", help="fold fresh results into the ledger")
    p_ingest.add_argument("--out-dir", default=str(OUT_DIR))
    p_ingest.set_defaults(fn=cmd_ingest)

    p_check = sub.add_parser("check", help="gate: current results vs. baseline")
    p_check.add_argument("--out-dir", default=str(OUT_DIR))
    p_check.add_argument("--json", action="store_true", help="JSON output")
    p_check.set_defaults(fn=cmd_check)

    p_show = sub.add_parser("show", help="print the ledger")
    p_show.add_argument("benchmark", nargs="?", default=None)
    p_show.add_argument("--out-dir", default=str(OUT_DIR))
    p_show.set_defaults(fn=cmd_show)

    args = parser.parse_args(argv)
    # repro.utils.tables import happens inside the commands; bootstrap first.
    src = pathlib.Path(__file__).resolve().parent.parent / "src"
    if str(src) not in sys.path:
        try:
            import repro.utils.tables  # noqa: F401
        except ImportError:
            sys.path.insert(0, str(src))
    try:
        return args.fn(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
