#!/usr/bin/env python3
"""Repo-specific linter CLI — the static prong of ``repro.analysis``.

Usage::

    python tools/lint.py src                 # human output, exit 1 on findings
    python tools/lint.py src tests --json    # machine-readable report
    python tools/lint.py --list-rules        # rule catalogue
    python tools/lint.py src --select det-unseeded-rng,dist-recv-timeout

Exit codes: 0 clean, 1 findings, 2 usage/internal error. CI runs this over
``src/`` (also enforced in-process by ``tests/test_analysis/``, so plain
pytest gates the same invariant).

Suppressions (see docs/static_analysis.md):
``# repro-lint: disable=<rule-id> -- justification`` on the offending line,
``# repro-lint: file-disable=<rule-id> -- justification`` for a whole file.
"""

from __future__ import annotations

import argparse
import pathlib
import sys


def _bootstrap() -> None:
    """Make ``repro`` importable when run from a source checkout."""
    try:
        import repro.analysis  # noqa: F401
    except ImportError:
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        sys.path.insert(0, str(src))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tools/lint.py",
        description="repo-specific determinism/autograd/distributed linter",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report on stdout"
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all registered)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    args = parser.parse_args(argv)

    _bootstrap()
    from repro.analysis import iter_rules, lint_paths

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.id}  [{rule.category}]")
            print(f"    {rule.description}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (and --list-rules not requested)", file=sys.stderr)
        return 2

    missing = [p for p in args.paths if not pathlib.Path(p).exists()]
    if missing:
        print(f"error: path(s) do not exist: {', '.join(missing)}", file=sys.stderr)
        return 2

    select = None
    if args.select:
        select = [s.strip() for s in args.select.split(",") if s.strip()]
    try:
        report = lint_paths(args.paths, select=select)
    except KeyError as exc:
        print(f"error: unknown rule id {exc.args[0]!r}", file=sys.stderr)
        return 2

    if args.json:
        print(report.to_json())
    else:
        for finding in report.findings:
            print(finding.format())
        suppressed = f", {len(report.suppressed)} suppressed" if report.suppressed else ""
        status = "clean" if report.ok else f"{len(report.findings)} finding(s)"
        print(
            f"[lint] {status} across {report.files_scanned} file(s){suppressed}"
        )
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
