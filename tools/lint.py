#!/usr/bin/env python3
"""Repo-specific verifier CLI — both prongs of ``repro.analysis``.

Static lint::

    python tools/lint.py src                     # human output, exit 1 on findings
    python tools/lint.py src tests --format json # machine-readable report
    python tools/lint.py src --format sarif      # SARIF 2.1.0 (PR annotations)
    python tools/lint.py src --format github     # GitHub workflow commands
    python tools/lint.py --list-rules            # rule catalogue
    python tools/lint.py src --select det-unseeded-rng,dist-recv-timeout

Schedule exploration (the dynamic prong)::

    python tools/lint.py explore --list-scenarios
    python tools/lint.py explore                          # all scenarios, clean
    python tools/lint.py explore --scenario recv-livelock --seed-bug \
        --trace-out trace.json                            # rediscover the bug
    python tools/lint.py explore --replay trace.json      # bit-identical replay

Exit codes (both subcommands): 0 clean / replay verified, 1 findings /
schedule failure / replay divergence, 2 usage or internal error. CI runs
the lint over ``src/ tools/ benchmarks/`` and a bounded explore smoke
(also enforced in-process by ``tests/test_analysis/``, so plain pytest
gates the same invariants).

Suppressions (see docs/static_analysis.md):
``# repro-lint: disable=<rule-id> -- justification`` on any line of the
offending statement, ``# repro-lint: file-disable=<rule-id> --
justification`` for a whole file.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def _bootstrap() -> None:
    """Make ``repro`` importable when run from a source checkout."""
    try:
        import repro.analysis  # noqa: F401
    except ImportError:
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        sys.path.insert(0, str(src))


# -- lint -------------------------------------------------------------------


def _to_sarif(report, rules) -> dict:
    """SARIF 2.1.0 (the subset GitHub code scanning ingests; schema
    documented in docs/static_analysis.md)."""

    def result(finding, suppressed: bool) -> dict:
        out = {
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if suppressed:
            out["suppressions"] = [{"kind": "inSource"}]
        return out

    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/static_analysis.md",
                        "rules": [
                            {
                                "id": rule.id,
                                "shortDescription": {"text": rule.description},
                                "properties": {"category": rule.category},
                            }
                            for rule in rules
                        ],
                    }
                },
                "results": [result(f, False) for f in report.findings]
                + [result(f, True) for f in report.suppressed],
            }
        ],
    }


def _emit_github(report) -> None:
    """GitHub Actions workflow commands: surfaced inline on the PR diff."""
    for f in report.findings:
        print(
            f"::error file={f.path},line={f.line},col={f.col + 1},"
            f"title={f.rule_id}::{f.message}"
        )


def lint_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="tools/lint.py",
        description="repo-specific determinism/autograd/distributed linter",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif", "github"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="alias for --format json (kept for compatibility)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all registered)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    args = parser.parse_args(argv)

    _bootstrap()
    from repro.analysis import iter_rules, lint_paths

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.id}  [{rule.category}]")
            print(f"    {rule.description}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (and --list-rules not requested)", file=sys.stderr)
        return 2

    missing = [p for p in args.paths if not pathlib.Path(p).exists()]
    if missing:
        print(f"error: path(s) do not exist: {', '.join(missing)}", file=sys.stderr)
        return 2

    select = None
    if args.select:
        select = [s.strip() for s in args.select.split(",") if s.strip()]
    try:
        report = lint_paths(args.paths, select=select)
    except KeyError as exc:
        print(f"error: unknown rule id {exc.args[0]!r}", file=sys.stderr)
        return 2

    fmt = "json" if args.json else args.format
    if fmt == "json":
        print(report.to_json())
    elif fmt == "sarif":
        print(json.dumps(_to_sarif(report, iter_rules()), indent=2))
    elif fmt == "github":
        _emit_github(report)
    else:
        for finding in report.findings:
            print(finding.format())
        suppressed = f", {len(report.suppressed)} suppressed" if report.suppressed else ""
        status = "clean" if report.ok else f"{len(report.findings)} finding(s)"
        print(
            f"[lint] {status} across {report.files_scanned} file(s){suppressed}"
        )
    return 0 if report.ok else 1


# -- explore ----------------------------------------------------------------


def explore_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="tools/lint.py explore",
        description="deterministic schedule explorer for the threads backend",
    )
    parser.add_argument(
        "--scenario",
        metavar="NAME",
        help="scenario to explore (default: every registered scenario)",
    )
    parser.add_argument(
        "--seed-bug",
        action="store_true",
        help="flip the scenario's fault hook, re-introducing its historical bug",
    )
    parser.add_argument(
        "--schedules",
        type=int,
        default=25,
        metavar="N",
        help="exploration budget per scenario (default: 25)",
    )
    parser.add_argument(
        "--max-steps",
        type=int,
        default=None,
        metavar="N",
        help="event budget per schedule (default: scenario-specific)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write the failing schedule's replayable trace here",
    )
    parser.add_argument(
        "--replay",
        metavar="TRACE",
        help="replay a recorded trace and verify its fingerprint bit-identically",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report on stdout"
    )
    parser.add_argument(
        "--list-scenarios", action="store_true", help="print the catalogue"
    )
    args = parser.parse_args(argv)

    _bootstrap()
    from repro.analysis.explore import (
        ReplayDivergence,
        explore,
        load_trace,
        replay_trace,
    )
    from repro.analysis.scenarios import SCENARIOS, get_scenario

    if args.list_scenarios:
        for name in sorted(SCENARIOS):
            sc = SCENARIOS[name]
            bug = f" [seedable bug: {sc.bug}]" if sc.bug else ""
            print(f"{name}  (world={sc.world_size}){bug}")
            print(f"    {sc.description}")
        return 0

    if args.replay:
        try:
            trace = load_trace(args.replay)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            result = replay_trace(trace, max_steps=args.max_steps)
        except ReplayDivergence as exc:
            print(f"[explore] replay DIVERGED: {exc}", file=sys.stderr)
            return 1
        print(
            f"[explore] replayed {trace['scenario']} bit-identically: "
            f"{result.steps} events, status={result.status}, "
            f"fingerprint={result.fingerprint[:16]}…"
        )
        return 0

    try:
        scenarios = (
            [get_scenario(args.scenario)]
            if args.scenario
            else [SCENARIOS[n] for n in sorted(SCENARIOS)]
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    reports = []
    failed = False
    for sc in scenarios:
        rep = explore(
            sc,
            seed_bug=args.seed_bug,
            max_schedules=args.schedules,
            max_steps=args.max_steps,
        )
        reports.append(rep)
        if rep.found_bug:
            failed = True
            if args.trace_out:
                trace = rep.failure.to_trace(sc.name, args.seed_bug)
                pathlib.Path(args.trace_out).write_text(
                    json.dumps(trace, indent=2)
                )
        if not args.json:
            verdict = (
                f"FAILED ({rep.failure.status}) at schedule "
                f"{rep.failure_schedule}"
                if rep.found_bug
                else "clean"
            )
            print(
                f"[explore] {sc.name}: {verdict} — {rep.schedules} "
                f"schedule(s), {rep.events_total} events, "
                f"{rep.wall_seconds:.2f}s"
            )
            if rep.found_bug and rep.failure.waits_for:
                for rank, what in sorted(rep.failure.waits_for.items()):
                    print(f"    rank {rank} waits for: {what}")
            if rep.found_bug and rep.failure.errors:
                for rank, err in sorted(rep.failure.errors.items()):
                    print(f"    rank {rank} raised: {err}")
            if rep.found_bug and args.trace_out:
                print(f"    trace written to {args.trace_out}")
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "explore":
        return explore_main(argv[1:])
    return lint_main(argv)


if __name__ == "__main__":
    sys.exit(main())
