#!/usr/bin/env python3
"""Summarise ``repro.obs`` Chrome-trace files — the trace half of the CLI
tooling (``tools/lint.py`` is the static half).

Usage::

    python tools/trace.py summary runs/trace_dir          # per-phase/per-rank table
    python tools/trace.py summary runs/trace.rank*.json --json
    python tools/trace.py spans runs/trace.rank000.json --top 15
    python tools/trace.py validate runs/trace_dir         # schema + monotonicity
    python tools/trace.py merge runs/trace_dir -o merged.json

``summary`` aggregates span totals per phase (event name) and per rank
(trace ``pid``), prints an aligned table with a cross-rank skew column
(``max / median``), and flags stragglers — ranks whose phase total exceeds
the straggler threshold times the median, the imbalance the paper's exact
sampling is designed to remove.

``summary`` and ``merge`` also pick up any ``metrics.rankNNN.json``
snapshots next to the traces (written by ``ObsCallback(metrics=...)``)
and fold them with :func:`repro.obs.merge_snapshots` — summary renders
the folded counters/gauges as a second table; merge writes them to
``<output>.metrics.json``.

Exit codes: 0 ok, 1 validation failure / stragglers found (summary only
with ``--fail-on-straggler``), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def _bootstrap() -> None:
    """Make ``repro`` importable when run from a source checkout."""
    try:
        import repro.obs  # noqa: F401
    except ImportError:
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        sys.path.insert(0, str(src))


def _expand(paths: list[str]) -> list[pathlib.Path]:
    out: list[pathlib.Path] = []
    for raw in paths:
        p = pathlib.Path(raw)
        if p.is_dir():
            out.extend(sorted(p.glob("trace.rank*.json")))
        elif p.exists():
            out.append(p)
        else:
            raise FileNotFoundError(raw)
    if not out:
        raise FileNotFoundError(
            f"no trace files under {', '.join(paths)} (expected trace.rank*.json)"
        )
    return out


def _load_spans(paths: list[pathlib.Path]) -> list[dict]:
    from repro.obs import load_chrome_trace

    spans: list[dict] = []
    for path in paths:
        for event in load_chrome_trace(path):
            if event.get("ph") == "X":
                spans.append(event)
    return spans


def _span_name(ev: dict) -> str:
    """Summary row for a span; compiled-step replay spans are attributed to
    the interpreted phase they replace.

    ``VQMC.step(compile=...)`` nests ``jit.replay`` spans (with a ``phase``
    argument naming the interpreted-phase equivalent) inside the usual phase
    spans, so a compiled run's ``gradient`` total already *contains* the
    replay time. Qualifying the row as ``<phase>/jit.replay`` keeps the
    phase tables of compiled and interpreted runs directly comparable while
    still exposing how much of the phase ran compiled.
    """
    name = ev["name"]
    if name in ("jit.replay", "jit.trace"):
        phase = ev.get("args", {}).get("phase")
        if phase:
            return f"{phase}/{name}"
    return name


def _totals(spans: list[dict]) -> tuple[dict[str, dict[int, float]], list[int]]:
    """``{name: {rank: total_ms}}`` plus the sorted rank list."""
    table: dict[str, dict[int, float]] = {}
    ranks: set[int] = set()
    for ev in spans:
        rank = int(ev.get("pid", 0))
        ranks.add(rank)
        per_rank = table.setdefault(_span_name(ev), {})
        per_rank[rank] = per_rank.get(rank, 0.0) + ev.get("dur", 0.0) / 1e3
    return table, sorted(ranks)


def _find_metrics(paths: list[str]) -> list[pathlib.Path]:
    """Per-rank ``metrics.rankNNN.json`` snapshots living next to the
    traces (written by ``ObsCallback(metrics=...)``)."""
    roots = []
    for raw in paths:
        p = pathlib.Path(raw)
        root = p if p.is_dir() else p.parent
        if root not in roots:
            roots.append(root)
    hits: list[pathlib.Path] = []
    for root in roots:
        hits.extend(sorted(root.glob("metrics.rank*.json")))
    return hits


def _fold_metrics(paths: list[pathlib.Path]) -> dict | None:
    """Fold per-rank snapshots into one cross-rank snapshot
    (:func:`repro.obs.merge_snapshots`: counters/histogram bins add,
    gauges keep the worst rank)."""
    from repro.obs import merge_snapshots

    merged: dict | None = None
    for path in paths:
        snap = json.loads(path.read_text(encoding="utf-8"))
        merged = snap if merged is None else merge_snapshots(merged, snap)
    return merged


def _find_ledger(paths: list[str], explicit: str | None) -> pathlib.Path | None:
    """The :class:`~repro.distributed.ledger.BatchLedger` JSON log to
    annotate the summary with: ``--ledger PATH`` wins, otherwise the first
    ``ledger*.json`` next to the traces."""
    if explicit:
        p = pathlib.Path(explicit)
        if not p.exists():
            raise FileNotFoundError(explicit)
        return p
    for raw in paths:
        p = pathlib.Path(raw)
        root = p if p.is_dir() else p.parent
        hits = sorted(root.glob("ledger*.json"))
        if hits:
            return hits[0]
    return None


def cmd_summary(args: argparse.Namespace) -> int:
    from repro.obs import skew_report
    from repro.utils.tables import format_table

    spans = _load_spans(_expand(args.paths))
    table, ranks = _totals(spans)
    ledger_path = _find_ledger(args.paths, args.ledger)
    ledger = (
        json.loads(ledger_path.read_text(encoding="utf-8"))
        if ledger_path is not None
        else None
    )
    per_rank_dicts = [
        {name: table[name].get(rank, 0.0) for name in table} for rank in ranks
    ]
    skew = skew_report(per_rank_dicts)

    headers = ["phase", *[f"rank{r} [ms]" for r in ranks], "calls", "skew", "straggler"]
    rows = []
    stragglers: list[str] = []
    counts: dict[str, int] = {}
    for ev in spans:
        name = _span_name(ev)
        counts[name] = counts.get(name, 0) + 1
    for name in sorted(table):
        info = skew[name]
        flag = ""
        if len(ranks) > 1 and info["skew"] > args.straggler_threshold:
            flag = f"rank{ranks[info['max_rank']]}"
            stragglers.append(f"{name}: {flag} at {info['skew']:.2f}x median")
        rows.append(
            [
                name,
                *[f"{table[name].get(r, 0.0):.3f}" for r in ranks],
                counts[name],
                f"{info['skew']:.2f}x",
                flag,
            ]
        )

    if ledger is not None:
        # Per-rank batch assignment as an extra summary row: slot i of the
        # ledger is rank i of the live group, aligned best-effort with the
        # trace ranks (a shrunk world leaves later columns blank).
        assignment = ledger.get("assignment", [])
        rows.append(
            [
                "batch [samples]",
                *[
                    str(assignment[i]) if i < len(assignment) else "-"
                    for i in range(len(ranks))
                ],
                ledger.get("rebalances", 0),
                "",
                "",
            ]
        )

    metric_files = _find_metrics(args.paths)
    folded = _fold_metrics(metric_files)

    if args.json:
        payload = {
            "ranks": ranks,
            "totals_ms": {n: table[n] for n in sorted(table)},
            "counts": counts,
            "skew": skew,
            "stragglers": stragglers,
        }
        if ledger is not None:
            payload["ledger"] = ledger
        if folded is not None:
            payload["metrics"] = folded
        print(json.dumps(payload, indent=2))
    else:
        print(format_table(headers, rows, title="per-phase / per-rank span totals"))
        if folded is not None and (folded.get("counters") or folded.get("gauges")):
            counter_rows = [
                [name, "counter", f"{value:g}"]
                for name, value in sorted(folded.get("counters", {}).items())
            ] + [
                [name, "gauge (worst rank)", f"{value:g}"]
                for name, value in sorted(folded.get("gauges", {}).items())
            ]
            print()
            print(
                format_table(
                    ["metric", "kind", "value"],
                    counter_rows,
                    title=f"folded metrics ({len(metric_files)} rank snapshot(s))",
                )
            )
        if ledger is not None:
            print(
                f"\n[batch ledger {ledger_path.name}: global_batch="
                f"{ledger.get('global_batch')} over {ledger.get('world_size')} "
                f"rank(s), {ledger.get('rebalances', 0)} rebalance(s)]"
            )
        if stragglers:
            print(f"\n[stragglers > {args.straggler_threshold:.2f}x median]")
            for line in stragglers:
                print(f"  {line}")
        else:
            print(f"\nno stragglers above {args.straggler_threshold:.2f}x median")
    return 1 if (stragglers and args.fail_on_straggler) else 0


def cmd_spans(args: argparse.Namespace) -> int:
    from repro.utils.tables import format_table

    spans = _load_spans(_expand(args.paths))
    spans.sort(key=lambda e: -e.get("dur", 0.0))
    rows = [
        [
            f"{ev.get('dur', 0.0) / 1e3:.3f}",
            int(ev.get("pid", 0)),
            ev["name"],
            f"{ev.get('ts', 0.0) / 1e3:.3f}",
            json.dumps(ev.get("args", {}), default=repr),
        ]
        for ev in spans[: args.top]
    ]
    print(
        format_table(
            ["dur [ms]", "rank", "name", "t0 [ms]", "args"],
            rows,
            title=f"top {min(args.top, len(spans))} spans by duration",
        )
    )
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """Round-trip + schema check: every file must parse as trace events
    with monotone timestamps and non-negative durations."""
    from repro.obs import load_chrome_trace

    failures = []
    paths = _expand(args.paths)
    for path in paths:
        try:
            events = load_chrome_trace(path)
            spans = [e for e in events if e.get("ph") == "X"]
            ts = [e["ts"] for e in spans]
            if ts != sorted(ts):
                raise ValueError("timestamps are not monotone")
            if any(e.get("dur", 0.0) < 0 for e in spans):
                raise ValueError("negative span duration")
            for e in spans:
                if "name" not in e or "pid" not in e:
                    raise ValueError("span missing name/pid")
        except Exception as exc:  # noqa: BLE001 — reported per file
            failures.append(f"{path}: {exc}")
    if failures:
        for line in failures:
            print(f"INVALID {line}", file=sys.stderr)
        return 1
    print(f"[trace] {len(paths)} file(s) valid")
    return 0


def cmd_merge(args: argparse.Namespace) -> int:
    from repro.obs import merge_chrome_traces

    out = merge_chrome_traces(_expand(args.paths), args.output)
    print(f"[trace] wrote {out}")
    metric_files = _find_metrics(args.paths)
    folded = _fold_metrics(metric_files)
    if folded is not None:
        out_path = pathlib.Path(args.output)
        metrics_out = out_path.with_name(out_path.stem + ".metrics.json")
        metrics_out.write_text(json.dumps(folded, indent=2) + "\n", encoding="utf-8")
        print(
            f"[trace] wrote {metrics_out} "
            f"(folded {len(metric_files)} rank snapshot(s))"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tools/trace.py",
        description="summarise per-rank Chrome traces produced by repro.obs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser("summary", help="per-phase/per-rank totals table")
    p_summary.add_argument("paths", nargs="+", help="trace files or directories")
    p_summary.add_argument(
        "--straggler-threshold",
        type=float,
        default=1.25,
        help="flag ranks whose phase total exceeds this multiple of the "
        "cross-rank median (default 1.25)",
    )
    p_summary.add_argument(
        "--ledger",
        default=None,
        help="BatchLedger JSON log to annotate the table with per-rank batch "
        "assignments (auto-detected as ledger*.json next to the traces)",
    )
    p_summary.add_argument("--json", action="store_true", help="JSON output")
    p_summary.add_argument(
        "--fail-on-straggler",
        action="store_true",
        help="exit 1 when any straggler is flagged (for CI gates)",
    )
    p_summary.set_defaults(fn=cmd_summary)

    p_spans = sub.add_parser("spans", help="longest individual spans")
    p_spans.add_argument("paths", nargs="+")
    p_spans.add_argument("--top", type=int, default=20)
    p_spans.set_defaults(fn=cmd_spans)

    p_validate = sub.add_parser("validate", help="schema/monotonicity check")
    p_validate.add_argument("paths", nargs="+")
    p_validate.set_defaults(fn=cmd_validate)

    p_merge = sub.add_parser("merge", help="merge per-rank files into one timeline")
    p_merge.add_argument("paths", nargs="+")
    p_merge.add_argument("-o", "--output", required=True)
    p_merge.set_defaults(fn=cmd_merge)

    args = parser.parse_args(argv)
    _bootstrap()
    try:
        return args.fn(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
