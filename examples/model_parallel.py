"""Model parallelism: sharding the MADE hidden layer across ranks.

The paper's §4 names two parallelisation avenues and implements only the
second (sampling parallelism). This example runs the first: each rank
stores 1/L of the hidden layer; a forward pass combines the per-rank
partial logits with one allreduce. The sharded ensemble is numerically
identical to the single-process model — verified live below — while each
rank holds only ~1/L of the parameters (the paper's memory-bound regime).

Run:  python examples/model_parallel.py
"""

from __future__ import annotations

import numpy as np

from repro.core import VQMC
from repro.core.vqmc import VQMCConfig
from repro.distributed import run_threaded
from repro.distributed.model_parallel import ShardedMADE
from repro.hamiltonians import TransverseFieldIsing
from repro.models import MADE
from repro.optim import SGD
from repro.samplers import AutoregressiveSampler

N, HIDDEN, SEED = 16, 48, 7
ITERS, BATCH = 60, 128


def worker(comm, rank):
    model = ShardedMADE(N, HIDDEN, comm, seed=SEED)
    local_params = model.num_parameters()
    ham = TransverseFieldIsing.random(N, seed=99)
    vqmc = VQMC(
        model, ham, AutoregressiveSampler(),
        SGD(model.parameters(), lr=0.1),
        seed=3,  # same stream on every rank: replicas must see the same batch
        config=VQMCConfig(gradient_mode="per_sample"),
    )
    energies = [vqmc.step(batch_size=BATCH).stats.mean for _ in range(ITERS)]
    return local_params, energies


def main() -> None:
    ham = TransverseFieldIsing.random(N, seed=99)
    reference = MADE(N, hidden=HIDDEN, rng=np.random.default_rng(SEED))
    total_params = reference.num_parameters()
    vqmc_ref = VQMC(
        reference, ham, AutoregressiveSampler(),
        SGD(reference.parameters(), lr=0.1), seed=3,
        config=VQMCConfig(gradient_mode="per_sample"),
    )
    ref_energies = [vqmc_ref.step(batch_size=BATCH).stats.mean for _ in range(ITERS)]

    print(f"TIM n={N}, MADE h={HIDDEN} — {total_params} parameters total\n")
    print(f"{'ranks':>5s} {'params/rank':>12s} {'final E':>10s} "
          f"{'max |ΔE| vs reference':>22s}")
    print(f"{1:5d} {total_params:12d} {ref_energies[-1]:10.4f} {'—':>22s}")
    for world in (2, 4):
        results = run_threaded(worker, world)
        local_params = results[0][0]
        max_dev = max(
            abs(np.asarray(e) - np.asarray(ref_energies)).max()
            for _, e in results
        )
        print(f"{world:5d} {local_params:12d} {results[0][1][-1]:10.4f} "
              f"{max_dev:22.2e}")
    print(
        "\nEvery sharded run tracks the single-process training trajectory to\n"
        "machine precision while storing ~1/L of the weights per rank."
    )


if __name__ == "__main__":
    main()
