"""Max-Cut with VQMC as a combinatorial-optimisation heuristic (paper §5.3).

Solves a random Max-Cut instance four ways and compares:

1. Random cut (0.5-approximation baseline),
2. Goemans-Williamson (SDP relaxation + hyperplane rounding, 0.878-approx),
3. Burer-Monteiro (low-rank SDP + local search — the paper's best baseline),
4. VQMC with a MADE wavefunction, exact sampling and SR — the paper's method.

At this size the true optimum is available by brute force, so each method's
approximation ratio is printed. Also shows the networkx entry point.

Run:  python examples/maxcut_solver.py
"""

from __future__ import annotations

import numpy as np

import networkx as nx

from repro import MADE, VQMC
from repro.baselines import BurerMonteiro, GoemansWilliamson, random_cut
from repro.exact import brute_force_max_cut
from repro.hamiltonians import MaxCut
from repro.optim import SGD, StochasticReconfiguration
from repro.samplers import AutoregressiveSampler


def vqmc_cut(ham: MaxCut, iterations: int = 150, batch: int = 512) -> float:
    model = MADE(ham.n, rng=np.random.default_rng(0))
    vqmc = VQMC(
        model, ham, AutoregressiveSampler(),
        SGD(model.parameters(), lr=0.1),
        sr=StochasticReconfiguration(), seed=1,
    )
    vqmc.run(iterations, batch_size=batch)
    samples = AutoregressiveSampler().sample(model, 2048, np.random.default_rng(2))
    return float(ham.cut_value(samples).max())


def main() -> None:
    n = 18
    ham = MaxCut.random(n, seed=7)
    w = ham.adjacency
    optimum, _ = brute_force_max_cut(w)
    print(f"Random Max-Cut instance: n={n}, |E|={ham.num_edges()}, optimum={optimum}")
    print()

    results = {
        "Random cut": random_cut(w, seed=0).value,
        "Goemans-Williamson": GoemansWilliamson(rounds=100).solve(w, seed=0).value,
        "Burer-Monteiro": BurerMonteiro(rounds=100, restarts=3).solve(w, seed=0).value,
        "VQMC (MADE+AUTO+SR)": vqmc_cut(ham),
    }
    for name, value in results.items():
        print(f"{name:<22s} cut = {value:6.1f}   ratio = {value / optimum:.3f}")

    # networkx entry point: any weighted graph works.
    print("\nnetworkx example — Petersen graph:")
    g = nx.petersen_graph()
    ham_g = MaxCut.from_graph(g)
    opt_g, _ = brute_force_max_cut(ham_g.adjacency)
    cut_g = vqmc_cut(ham_g, iterations=100, batch=256)
    print(f"VQMC cut {cut_g:.0f} / optimum {opt_g:.0f} "
          f"(Petersen max cut is {int(opt_g)})")


if __name__ == "__main__":
    main()
