"""Lattice TFIM beyond exact diagonalisation, validated by Jordan-Wigner.

Exact diagonalisation dies around 20 sites; the periodic 1-D transverse-
field Ising chain, however, has a free-fermion closed form at *any* size.
This example trains VQMC on a 40-site critical chain — a 2⁴⁰-dimensional
eigenproblem — and scores it against the analytic ground energy, something
none of the dense disordered models in the paper permit.

Run:  python examples/tfim_chain.py
"""

from __future__ import annotations

import numpy as np

from repro import MADE, VQMC
from repro.core import History, ProgressPrinter
from repro.hamiltonians import LatticeTFIM, tfim_chain_exact_energy
from repro.optim import Adam
from repro.samplers import AutoregressiveSampler


def main() -> None:
    n = 40
    ham = LatticeTFIM((n,), coupling=1.0, field=1.0)  # critical point
    exact = tfim_chain_exact_energy(n, 1.0, 1.0)
    print(f"Periodic TFIM chain, n={n}, critical Γ=J=1")
    print(f"Hilbert-space dimension: 2^{n} ≈ {2.0**n:.2e}")
    print(f"Jordan-Wigner exact ground energy: {exact:.6f} "
          f"(per site {exact/n:.6f}; thermodynamic limit -4/π ≈ {-4/np.pi:.6f})\n")

    model = MADE(n, hidden=[64, 64], rng=np.random.default_rng(0))  # deep MADE
    vqmc = VQMC(
        model, ham, AutoregressiveSampler(),
        Adam(model.parameters(), lr=0.01), seed=1,
    )
    history = History()
    vqmc.run(400, batch_size=256, callbacks=[history, ProgressPrinter(every=100)])

    final = vqmc.evaluate(batch_size=2048)
    rel = abs(final.mean - exact) / abs(exact)
    print()
    print(f"VQMC energy : {final.mean:.4f} ± {final.sem:.4f}")
    print(f"exact (JW)  : {exact:.4f}")
    print(f"relative err: {rel:.2%}  |  local-energy std: {final.std:.3f}")


if __name__ == "__main__":
    main()
