"""Why MCMC limits VQMC scalability — the paper's §2.2/§4 argument, measured.

Runs random-walk Metropolis-Hastings on RBM wavefunctions of growing
dimension and reports the quantities that degrade:

- integrated autocorrelation time of the chain's energy trace
  (effective sample size shrinks as 1/tau),
- Gelman-Rubin R-hat across independent chains (mixing),
- forward-pass cost per batch vs the AUTO sampler's flat n passes,
- the Eq. 14 parallel-efficiency slope b collapsing as burn-in grows.

Run:  python examples/mcmc_diagnostics.py
"""

from __future__ import annotations

import numpy as np

from repro.cluster.efficiency import mcmc_slope
from repro.core.energy import local_energies
from repro.hamiltonians import TransverseFieldIsing
from repro.models import RBM
from repro.samplers import MetropolisSampler
from repro.samplers.diagnostics import gelman_rubin, integrated_autocorr_time
from repro.tensor.tensor import no_grad


def chain_energy_trace(model, ham, steps: int, rng) -> np.ndarray:
    """Energy of a single MH chain at every step (the mixing observable)."""
    sampler = MetropolisSampler(n_chains=1, burn_in=0, thin=1, persistent=True)
    trace = np.empty(steps)
    for t in range(steps):
        x = sampler.sample(model, 1, rng)
        trace[t] = local_energies(model, ham, x)[0]
    return trace


def main() -> None:
    print(f"{'n':>5s} {'tau_int':>8s} {'ESS/1k':>7s} {'R-hat':>6s} "
          f"{'MCMC passes':>12s} {'AUTO passes':>12s}")
    for n in (8, 16, 32, 64):
        ham = TransverseFieldIsing.random(n, seed=n)
        model = RBM(n, rng=np.random.default_rng(0), init_std=0.3)

        rng = np.random.default_rng(1)
        trace = chain_energy_trace(model, ham, steps=1000, rng=rng)
        tau = integrated_autocorr_time(trace)

        # R-hat over 4 chains' energy traces.
        chains = np.stack([
            chain_energy_trace(model, ham, 300, np.random.default_rng(10 + c))
            for c in range(4)
        ])
        rhat = gelman_rubin(chains)

        sampler = MetropolisSampler(n_chains=2)  # paper defaults: k = 3n+100
        mcmc_passes = sampler.predicted_forward_passes(n, batch_size=1024)
        print(f"{n:5d} {tau:8.1f} {1000/tau:7.0f} {rhat:6.3f} "
              f"{mcmc_passes:12d} {n:12d}")

    print("\nParallel-efficiency slope b of Eq. 14 (speedup = a + bL), 64 "
          "samples per unit:")
    for k in (0, 100, 400, 1600):
        print(f"  burn-in k={k:5d}:  b = {mcmc_slope(64, k):.3f}"
              f"{'   (ideal)' if k == 0 else ''}")
    print(
        "\nTakeaway: correlations (tau) grow with n while b collapses with\n"
        "the burn-in the larger problem needs — the two walls the paper\n"
        "removes by switching to exact autoregressive sampling."
    )


if __name__ == "__main__":
    main()
