"""Multi-seed experiment sweeps with the repro.experiments framework.

Reproduces a slice of the paper's Table 2 protocol as a declarative sweep:
a grid over (problem size × optimiser × seed), aggregated to mean ± std —
then prints the winner per size. The same five lines scale to the paper's
full grid by editing the lists.

Run:  python examples/experiment_sweep.py
"""

from __future__ import annotations

from repro.experiments import Sweep, TrialSpec, aggregate
from repro.utils.tables import format_table


def main() -> None:
    sweep = Sweep(
        base=TrialSpec(
            problem="maxcut",
            arch="made",
            sampler="auto",
            iterations=60,
            batch_size=256,
        ),
        grid={
            "n": [16, 24],
            "optimizer": ["sgd", "adam", "sgd+sr"],
            "seed": [0, 1, 2],
        },
    )
    trials = sweep.trials()
    print(f"Running {len(trials)} trials "
          f"({len(sweep.grid['n'])} sizes × {len(sweep.grid['optimizer'])} "
          f"optimisers × {len(sweep.grid['seed'])} seeds)...\n")
    records = sweep.run()

    table = aggregate(records, by=("n", "optimizer"), metric="best_cut")
    rows = [[n, opt, (mean, std)] for (n, opt), (mean, std) in table.items()]
    print(format_table(
        ["n", "optimizer", "best cut (mean ± std)"],
        rows,
        title="Max-Cut sweep (MADE+AUTO)",
        precision=1,
    ))

    times = aggregate(records, by=("optimizer",), metric="train_seconds")
    print("\nMean training seconds per optimiser:")
    for (opt,), (mean, _) in times.items():
        print(f"  {opt:8s} {mean:6.2f}s")

    for n in sweep.grid["n"]:
        best = max(
            (k for k in table if k[0] == n), key=lambda k: table[k][0]
        )
        print(f"\nBest optimiser at n={n}: {best[1]} "
              f"(cut {table[best][0]:.1f} ± {table[best][1]:.1f})")


if __name__ == "__main__":
    main()
