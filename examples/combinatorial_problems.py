"""VQMC as a general combinatorial-optimisation heuristic (paper §2.4).

Max-Cut is just one member of the QUBO family the paper's framework covers.
This example solves three classic problems with the same VQMC stack —
Sherrington-Kirkpatrick spin glass, number partitioning, and maximum
independent set — and checks each against brute force. It also shows
saving/loading a problem instance as JSON for reproducible benchmarking.

Run:  python examples/combinatorial_problems.py
"""

from __future__ import annotations

import tempfile

import networkx as nx
import numpy as np

from repro import MADE, VQMC
from repro.exact import brute_force_ground_state
from repro.hamiltonians import (
    load_instance,
    max_independent_set,
    number_partitioning,
    save_instance,
    sherrington_kirkpatrick,
)
from repro.optim import SGD, StochasticReconfiguration
from repro.samplers import AutoregressiveSampler


def solve(ham, iterations=150, batch=512, seed=0):
    model = MADE(ham.n, rng=np.random.default_rng(seed))
    vqmc = VQMC(
        model, ham, AutoregressiveSampler(),
        SGD(model.parameters(), lr=0.1),
        sr=StochasticReconfiguration(), seed=seed + 1,
    )
    vqmc.run(iterations, batch_size=batch)
    x = AutoregressiveSampler().sample(model, 2048, np.random.default_rng(2))
    best = int(np.argmin(ham.diagonal(x)))
    return float(ham.diagonal(x[best : best + 1])[0]), x[best]


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. Sherrington–Kirkpatrick spin glass -----------------------------------
    sk = sherrington_kirkpatrick(14, seed=1)
    exact_e, _ = brute_force_ground_state(sk)
    vqmc_e, _ = solve(sk)
    print("Sherrington-Kirkpatrick (n=14)")
    print(f"  VQMC ground energy {vqmc_e:.4f}  |  exact {exact_e:.4f}  "
          f"|  per-spin {vqmc_e/14:.4f} (Parisi limit ≈ -0.7632)\n")

    # 2. Number partitioning ---------------------------------------------------
    # A golf-course landscape: direct optimisation stalls far from the
    # optimum. Two standard tricks fix it: normalise the weights (keeps the
    # QUBO coefficients O(1) so gradients are well-scaled) and *anneal* from
    # the transverse-field driver to the target (repro.core.annealing).
    from repro.core.annealing import AnnealingCallback, AnnealingSchedule

    weights = rng.integers(1, 50, size=16).astype(float)
    scale = weights.std()
    npart = number_partitioning(weights / scale)
    exact_e, _ = brute_force_ground_state(number_partitioning(weights))

    sched = AnnealingSchedule(npart, total_steps=200)
    model = MADE(16, hidden=32, rng=np.random.default_rng(0))
    vqmc = VQMC(
        model, sched.hamiltonian(0), AutoregressiveSampler(),
        SGD(model.parameters(), lr=0.05),
        sr=StochasticReconfiguration(), seed=1,
    )
    vqmc.run(300, batch_size=512, callbacks=[AnnealingCallback(vqmc, sched)])
    x = AutoregressiveSampler().sample(model, 4096, np.random.default_rng(2))
    best = int(np.argmin(npart.diagonal(x)))
    bits = x[best]
    s1 = weights[bits == 1].sum()
    s0 = weights[bits == 0].sum()
    print(f"Number partitioning (16 weights, total {weights.sum():.0f}; annealed)")
    print(f"  VQMC split {s1:.0f} / {s0:.0f}  (residual² = {(s1-s0)**2:.0f}; "
          f"best possible {exact_e:.0f})\n")

    # 3. Maximum independent set -----------------------------------------------
    g = nx.gnp_random_graph(16, 0.3, seed=3)
    mis = max_independent_set(g)
    exact_e, _ = brute_force_ground_state(mis)
    vqmc_e, bits = solve(mis)
    chosen = [v for v in range(16) if bits[v] == 1.0]
    valid = not any(g.has_edge(u, v) for u in chosen for v in chosen if u != v)
    print(f"Maximum independent set (G(16, 0.3), |E|={g.number_of_edges()})")
    print(f"  VQMC set size {-vqmc_e:.0f} (valid: {valid})  |  "
          f"optimum {-exact_e:.0f}\n")

    # 4. Instances as artifacts ---------------------------------------------------
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as fh:
        save_instance(sk, fh.name)
        again = load_instance(fh.name)
    x = (rng.random((4, 14)) < 0.5).astype(float)
    assert np.allclose(sk.diagonal(x), again.diagonal(x))
    print(f"Instance round-trip through JSON OK → {fh.name}")


if __name__ == "__main__":
    main()
