"""Quickstart: find the ground state of a disordered quantum spin model.

Builds a 10-spin transverse-field Ising model with random couplings,
trains a MADE autoregressive wavefunction by VQMC with exact sampling and
stochastic reconfiguration, and checks the answer against exact
diagonalisation (possible at this size — that's the point of a quickstart).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import MADE, VQMC
from repro.core import History, ProgressPrinter
from repro.exact import lanczos_ground_state
from repro.hamiltonians import TransverseFieldIsing
from repro.optim import SGD, StochasticReconfiguration
from repro.samplers import AutoregressiveSampler


def main() -> None:
    n = 10
    ham = TransverseFieldIsing.random(n, seed=42)
    print(f"Hamiltonian: {ham}")

    # The trial wavefunction: a masked autoencoder whose sigmoid outputs are
    # the autoregressive conditionals p(x_i = 1 | x_<i). Normalisation is
    # structural, so we can sample from |psi|^2 exactly — no Markov chains.
    model = MADE(n, rng=np.random.default_rng(0))
    print(f"Model: MADE with h={model.hidden}, {model.num_parameters()} parameters")

    vqmc = VQMC(
        model,
        ham,
        sampler=AutoregressiveSampler(),
        optimizer=SGD(model.parameters(), lr=0.1),
        sr=StochasticReconfiguration(diag_shift=1e-3),  # natural gradient
        seed=1,
    )
    history = History()
    vqmc.run(200, batch_size=512, callbacks=[history, ProgressPrinter(every=50)])

    final = vqmc.evaluate(batch_size=4096)
    exact = lanczos_ground_state(ham)
    print()
    print(f"VQMC energy : {final.mean:.6f} ± {final.sem:.6f}")
    print(f"exact energy: {exact.energy:.6f}  (Lanczos, {exact.iterations} iterations)")
    print(f"relative err: {abs(final.mean - exact.energy) / abs(exact.energy):.2e}")
    print(f"local-energy std (→ 0 at an eigenstate): {final.std:.4f}")

    # The zero-variance principle in action: the std of the local energy
    # (Figure 2's blue curve) collapses as training converges.
    stds = history.as_arrays()["std"]
    print(f"std over training: start {stds[:5].mean():.3f} → end {stds[-5:].mean():.3f}")


if __name__ == "__main__":
    main()
