"""Data-parallel VQMC across OS processes (the paper's §4 scheme, for real).

Each rank is a separate process with its own MADE replica. Per step every
rank draws its own mini-batch, computes local energies and gradients, and a
ring allreduce averages the gradients so all replicas apply the identical
update — the exact communication pattern of the paper's multi-GPU runs,
with processes standing in for GPUs.

Demonstrates Figure 4's effect: with the per-rank batch fixed, adding ranks
grows the effective batch and improves the converged energy.

Run:  python examples/distributed_training.py
"""

from __future__ import annotations

import numpy as np

from repro.distributed.data_parallel import run_data_parallel
from repro.hamiltonians import TransverseFieldIsing
from repro.models import MADE
from repro.optim import Adam
from repro.samplers import AutoregressiveSampler

N = 16
MBS = 8  # per-rank mini-batch ("per-GPU batch" in the paper)


def builder(rank: int):
    """Called once inside each rank to build its replica."""
    model = MADE(N, rng=np.random.default_rng(0))
    ham = TransverseFieldIsing.random(N, seed=99)
    return model, ham, AutoregressiveSampler(), Adam(model.parameters())


def main() -> None:
    print(f"TIM n={N}, mbs={MBS} per rank, 150 iterations, process backend\n")
    print(f"{'ranks':>5s} {'eff. batch':>10s} {'final E':>12s} {'E std':>8s} {'wall (s)':>9s}")
    for world_size in (1, 2, 4):
        res = run_data_parallel(
            builder,
            world_size,
            iterations=150,
            mini_batch_size=MBS,
            seed=5,
            backend="processes" if world_size > 1 else "threads",
        )
        print(
            f"{world_size:5d} {res.effective_batch_size:10d} "
            f"{res.final_energy:12.4f} {res.final_std:8.3f} {res.wall_time:9.2f}"
        )
    print(
        "\nLarger effective batches explore more of the state space per step\n"
        "(Figure 4): the converged energy improves as ranks are added."
    )


if __name__ == "__main__":
    main()
