"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP-660 editable
installs (which build a wheel) fail; ``pip install -e .`` falls back to this
``setup.py develop`` path. Metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
